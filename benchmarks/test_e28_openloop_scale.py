"""E28 — §3.4/§4.4/§5.1: million-session open-loop scale and overload.

The paper's evaluation critique has two halves.  First, closed-loop
client pools at "scaled load" cannot show overload: the pool slows down
with the system, so queues never grow.  E28 drives the cluster with an
*open-loop session arrival process* — 10^5+ sessions drawn from a
non-homogeneous Poisson process over heavy-tailed Zipf keys — where
arrivals do not care how busy the middleware is.  Second, middleware
must degrade *gracefully*: under a 2x flash crowd the gated cluster
sheds excess sessions at the door (labeled, accounted) and keeps the
admitted work inside its deadline, while the ungated cluster converts
the same arrivals into queueing and deadline misses.

Three arms:

* **steady-state** (wall-clock): >= 10^5 sessions through the full
  simulated cluster at a sustainable arrival rate; records sustained
  ops/s and asserts the run stayed healthy (goodput ~= issued, p99
  inside the deadline) at that scale.
* **hot path** (wall-clock ratio): the same Zipf statement stream
  driven straight at one engine, fast configuration (type-dispatched
  expression evaluation + auto-parameterized statement templates) vs
  the BENCH_e23-era compat engine (isinstance dispatch, parse per key
  value).  Results must be identical; the sustained-ops ratio is the
  hot-path regression floor (>= 1.3x).
* **overload** (simulated time): identical arrivals with and without
  the admission gate under a 2x flash crowd; goodput with admission
  must be >= 1.5x goodput without, and no admitted-then-acked commit
  may be shed (``acked_then_shed == 0`` — the E28 invariant).

Results land in ``BENCH_e28.json``; assertions pin the deterministic
simulated-time results and the fast/compat ratio, never absolute
wall-clock numbers.
"""

import gc
import json
import random
import time
from pathlib import Path

from repro.bench.harness import build_cluster, load_workload, Report
from repro.bench.simdriver import SessionArrivalDriver, TimedCluster
from repro.cluster.sim import Environment
from repro.core.admission import default_gate
from repro.sqlengine import Engine
from repro.sqlengine.expressions import use_compat_dispatch
from repro.workloads.openloop import (
    ConstantRate,
    FlashCrowd,
    OpenLoopWorkload,
)

SEED = 28
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_e28.json"

# steady-state arm: ~1300 sessions/s (inside the 3-replica service
# capacity) for 80 simulated seconds ≈ 104k sessions (Poisson),
# comfortably above the 10^5 floor
STEADY_RATE = 1300.0
STEADY_HORIZON = 80.0
STEADY_DEADLINE = 0.75
MIN_SESSIONS = 100_000

# engine hot-path arm: the same Zipf point statement stream, one engine;
# long enough that the distinct-key population exceeds the parse cache,
# as it does over the 2*10^5 transactions of the steady arm
HOTPATH_OPS = 20_000
MIN_SPEEDUP = 1.3

# overload arm: base rate beyond the cluster's service capacity once the
# 2x flash crowd lands; short deadline models an impatient client
OVERLOAD_RATE = 1500.0
OVERLOAD_HORIZON = 4.0
FLASH = dict(start=1.0, duration=2.0, multiplier=2.0)
OVERLOAD_DEADLINE = 0.25
MIN_GOODPUT_RATIO = 1.5


def _build(workload: OpenLoopWorkload):
    env = Environment()
    middleware = build_cluster(count=3, replication="writeset",
                               consistency="gsi", propagation="async",
                               env=env)
    load_workload(middleware, workload)
    cluster = TimedCluster(env, middleware)
    return env, middleware, cluster


def run_steady() -> dict:
    workload = OpenLoopWorkload(rows=100_000, seed_rows=1000,
                                read_fraction=0.9, skew=1.1,
                                mean_session_length=2.0,
                                mean_think_time=0.02)
    env, middleware, cluster = _build(workload)
    middleware.tracer.sample_interval = 64
    driver = SessionArrivalDriver(cluster, workload,
                                  ConstantRate(STEADY_RATE), seed=SEED,
                                  txn_deadline=STEADY_DEADLINE)
    driver.start(STEADY_HORIZON)
    begin = time.perf_counter()
    env.run()
    wall = time.perf_counter() - begin
    summary = driver.summary(STEADY_HORIZON)
    summary["wall_seconds"] = wall
    summary["sustained_ops_per_sec"] = (
        summary["txns_issued"] / wall if wall > 0 else float("inf"))
    summary["trace"] = middleware.tracer.snapshot()
    return summary


def _hotpath_statements() -> list:
    workload = OpenLoopWorkload(rows=100_000, seed_rows=1000,
                                read_fraction=0.9, skew=1.1)
    rng = random.Random(SEED + 1)
    return [workload.next_transaction(rng).statements[0][0]
            for _ in range(HOTPATH_OPS)]


def run_hotpath(statements: list, fast: bool) -> dict:
    """The E28 statement stream against one engine.  ``fast=False``
    restores the BENCH_e23-era hot path: isinstance-chain expression
    evaluation and one parse per distinct key value."""
    engine = Engine(f"e28_{int(fast)}")
    engine.auto_parameterize = fast
    engine.create_database("shop")
    conn = engine.connect(database="shop")
    conn.execute("CREATE TABLE sessions_kv "
                 "(k INT PRIMARY KEY, v INT, pad VARCHAR(40))")
    for key in range(1000):
        conn.execute(f"INSERT INTO sessions_kv (k, v, pad) "
                     f"VALUES ({key}, 0, 'pad{key}')")
    use_compat_dispatch(not fast)
    try:
        digest = 0
        begin = time.perf_counter()
        for sql in statements:
            result = conn.execute(sql)
            if result.rows:
                digest = (digest * 31 + hash(result.rows[0])) & 0xFFFFFFFF
        wall = time.perf_counter() - begin
    finally:
        use_compat_dispatch(False)
    return {
        "ops": len(statements),
        "wall_seconds": wall,
        "ops_per_sec": len(statements) / wall if wall > 0 else float("inf"),
        "digest": digest,
        "parse_cache_hits": engine.stats["parse_cache_hits"],
        "seq_scans": engine.stats["seq_scans"],
    }


def run_overload(admitted: bool) -> dict:
    workload = OpenLoopWorkload(rows=20_000, seed_rows=300,
                                read_fraction=0.9, skew=1.1,
                                mean_session_length=2.0,
                                mean_think_time=0.01)
    env, middleware, cluster = _build(workload)
    curve = FlashCrowd(ConstantRate(OVERLOAD_RATE), **FLASH)
    gate = None
    if admitted:
        gate = default_gate(lambda: env.now, read_rate=2600.0,
                            commit_rate=320.0, read_lane=64,
                            commit_lane=24, max_pending=96)
    driver = SessionArrivalDriver(cluster, workload, curve, seed=SEED,
                                  admission=gate,
                                  txn_deadline=OVERLOAD_DEADLINE)
    driver.start(OVERLOAD_HORIZON)
    env.run()
    summary = driver.summary(OVERLOAD_HORIZON)
    issued = max(summary["txns_issued"], 1)
    offered = issued + summary["shed_txns"]
    summary["shed_rate"] = summary["shed_txns"] / offered
    summary["error_rate"] = sum(summary["errors"].values()) / issued
    return summary


def test_e28_openloop_scale(benchmark):
    statements = _hotpath_statements()

    def best_of(runs: int, fast: bool) -> dict:
        """Best of ``runs`` fresh engines — damps allocator/GC noise so
        the gated ratio reflects the hot path, not heap history."""
        best = None
        for _ in range(runs):
            gc.collect()
            arm = run_hotpath(statements, fast=fast)
            if best is None or arm["ops_per_sec"] > best["ops_per_sec"]:
                best = arm
        return best

    def experiment():
        # the wall-clock-sensitive engine arms run first, before the
        # 10^5-session arm fills the heap with simulation state
        results = {
            "hotpath_fast": best_of(2, fast=True),
            "hotpath_compat": best_of(2, fast=False),
        }
        gc.collect()
        results["steady"] = run_steady()
        gc.collect()
        results["overload_bare"] = run_overload(admitted=False)
        gc.collect()
        results["overload_admission"] = run_overload(admitted=True)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    steady = results["steady"]
    fast = results["hotpath_fast"]
    compat = results["hotpath_compat"]
    bare = results["overload_bare"]
    gated = results["overload_admission"]
    speedup = fast["ops_per_sec"] / compat["ops_per_sec"]
    goodput_ratio = gated["goodput_txns"] / max(bare["goodput_txns"], 1)

    report = Report(
        "E28  Open-loop session scale and overload (sections 3.4, 4.4, 5.1)",
        ["arm", "sessions", "txns", "goodput", "p99 (s)", "shed", "note"])
    report.add_row(
        "steady", steady["sessions_arrived"], steady["txns_issued"],
        steady["goodput_txns"], round(steady["p99_latency"], 4),
        steady["shed_txns"],
        f"{steady['sustained_ops_per_sec']:.0f} ops/s wall")
    for name, arm in (("hotpath/fast", fast), ("hotpath/compat", compat)):
        report.add_row(name, "", arm["ops"], "", "", "",
                       f"{arm['ops_per_sec']:.0f} engine ops/s")
    for name, arm in (("overload/bare", bare),
                      ("overload/admission", gated)):
        report.add_row(
            name, arm["sessions_arrived"], arm["txns_issued"],
            arm["goodput_txns"], round(arm["p99_latency"], 4),
            arm["shed_txns"],
            f"shed {arm['shed_rate']:.0%}, err {arm['error_rate']:.2%}")
    report.note(f"hot-path speedup {speedup:.2f}x (floor {MIN_SPEEDUP}x); "
                f"overload goodput ratio {goodput_ratio:.2f}x "
                f"(floor {MIN_GOODPUT_RATIO}x)")
    report.show()

    # -- scale: the open-loop tier really ran 10^5+ sessions ------------
    assert steady["sessions_arrived"] >= MIN_SESSIONS, \
        f"only {steady['sessions_arrived']} sessions arrived"
    # at a sustainable rate the run stays healthy at that scale
    assert steady["goodput_txns"] >= steady["txns_issued"] * 0.99
    assert steady["p99_latency"] <= STEADY_DEADLINE
    # sampled tracing kept bookkeeping bounded without losing coverage
    assert steady["trace"]["spans_sampled_out"] > 0
    assert steady["trace"]["retained_traces"] > 0

    # -- hot path: fast engine clears the e23-era ceiling ---------------
    assert fast["digest"] == compat["digest"], \
        "fast and compat engines disagree on query results"
    assert speedup >= MIN_SPEEDUP, \
        f"hot-path speedup {speedup:.2f}x under the {MIN_SPEEDUP}x floor"
    # the speedup is structural, not noise: templates hit the parse
    # cache and index probes survived parameterization
    assert fast["parse_cache_hits"] > HOTPATH_OPS * 0.9
    assert fast["seq_scans"] == 0

    # -- overload: graceful degradation under the 2x flash crowd --------
    assert bare["sessions_arrived"] == gated["sessions_arrived"], \
        "admission arms must see identical arrivals"
    assert goodput_ratio >= MIN_GOODPUT_RATIO, \
        (f"admission goodput {gated['goodput_txns']} vs bare "
         f"{bare['goodput_txns']} — ratio {goodput_ratio:.2f}x under "
         f"{MIN_GOODPUT_RATIO}x")
    # shedding happened, was labeled, and the books balance
    snapshot = gated["admission"]
    assert gated["shed_txns"] > 0
    labeled = sum(count
                  for reasons in snapshot["rejected"].values()
                  for count in reasons.values())
    assert labeled == gated["shed_txns"]
    # the E28 invariant: no admitted-then-acked commit was ever shed
    assert snapshot["acked_then_shed"] == 0
    assert snapshot["acked"]["commit"] == gated["acked_commits"]
    # gated p99 stays inside the client deadline; bare p99 blows past it
    assert gated["p99_latency"] <= OVERLOAD_DEADLINE
    assert bare["p99_latency"] > OVERLOAD_DEADLINE

    payload = {
        "experiment": "e28_openloop_scale",
        "seed": SEED,
        "steady": {
            "rate": STEADY_RATE,
            "horizon": STEADY_HORIZON,
            "deadline": STEADY_DEADLINE,
            "summary": steady,
        },
        "hotpath": {
            "ops": HOTPATH_OPS,
            "fast": fast,
            "compat": compat,
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
        },
        "overload": {
            "rate": OVERLOAD_RATE,
            "horizon": OVERLOAD_HORIZON,
            "flash": FLASH,
            "deadline": OVERLOAD_DEADLINE,
            "bare": bare,
            "admission": gated,
            "goodput_ratio": goodput_ratio,
            "min_goodput_ratio": MIN_GOODPUT_RATIO,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info["sessions"] = steady["sessions_arrived"]
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["goodput_ratio"] = round(goodput_ratio, 3)
    benchmark.extra_info["acked_then_shed"] = snapshot["acked_then_shed"]
