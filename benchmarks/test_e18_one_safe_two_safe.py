"""E18 — section 2.2: 1-safe vs 2-safe commit.

Claim: "2-safe database replication forces the master to commit only when
the backup has also confirmed receipt of the update ... This avoids
transaction loss, but increases latency."

We measure both sides of the trade: commit latency under normal operation
(1-safe acks locally; 2-safe waits for the standby) and the transaction
loss window when the master dies mid-stream.
"""

from repro.bench import ClosedLoopDriver, Report, TimedCluster, build_cluster, load_workload
from repro.cluster import Environment
from repro.core import FailoverManager
from repro.workloads import MicroWorkload

DURATION = 3.0
CRASH_AT = 2.0


def run_safety(safety: str) -> dict:
    env = Environment()
    middleware = build_cluster(
        2, replication="writeset",
        propagation="sync" if safety == "2-safe" else "async",
        consistency="rsi-pc", env=env, name=safety,
        speed_factors=[1.0, 0.4])
    workload = MicroWorkload(rows=100, read_fraction=0.0)
    load_workload(middleware, workload)
    from repro.core import CostModel
    # standby application is random-IO bound and the standby is the
    # weaker box: under 2-safe every commit waits for it
    cluster = TimedCluster(env, middleware,
                           cost_model=CostModel(writeset_apply=0.004))
    driver = ClosedLoopDriver(cluster, workload, clients=4)
    master, slave = middleware.replicas
    failover = FailoverManager(middleware)
    outcome = {}

    def fault():
        yield env.timeout(CRASH_AT)
        master.node.crash()
        master.engine.crash()
        if safety == "1-safe":
            outcome["window"] = slave.lag_items
            slave.apply_queue.clear()    # shipping died with the master
        report = failover.handle_replica_failure(
            master.name, discard_pending=(safety == "1-safe"))
        outcome["lost"] = report.lost_transactions

    env.process(fault(), name="fault")
    driver.start(duration=DURATION)
    env.run(until=DURATION)
    cluster.stop()
    return {
        "commit_mean_ms": driver.metrics.write_latency.mean() * 1000,
        "commit_p95_ms": driver.metrics.write_latency.percentile(95) * 1000,
        "throughput": driver.metrics.rate(CRASH_AT),
        "lost": outcome.get("lost", 0),
    }


def test_e18_one_safe_vs_two_safe(benchmark):
    def experiment():
        return {
            "1-safe": run_safety("1-safe"),
            "2-safe": run_safety("2-safe"),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    one, two = results["1-safe"], results["2-safe"]

    report = Report(
        "E18  1-safe vs 2-safe commit (section 2.2, slow standby)",
        ["safety", "commit mean (ms)", "commit p95 (ms)",
         "pre-crash tps", "committed txns lost at master crash"])
    report.add_row("1-safe", one["commit_mean_ms"], one["commit_p95_ms"],
                   one["throughput"], one["lost"])
    report.add_row("2-safe", two["commit_mean_ms"], two["commit_p95_ms"],
                   two["throughput"], two["lost"])
    report.note("the paper's trade: 2-safe 'avoids transaction loss, but "
                "increases latency'")
    report.show()

    # 2-safe pays commit latency...
    assert two["commit_mean_ms"] > one["commit_mean_ms"] * 1.05
    assert two["throughput"] < one["throughput"]
    # ...and loses nothing; 1-safe loses its shipping window
    assert two["lost"] == 0
    assert one["lost"] > 0
    benchmark.extra_info["latency_cost"] = round(
        two["commit_mean_ms"] / one["commit_mean_ms"], 2)
    benchmark.extra_info["one_safe_loss"] = one["lost"]
