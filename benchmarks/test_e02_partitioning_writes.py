"""E02 — Figure 2 / section 2.1: partitioning lifts write throughput.

Claim: "The benefits of this approach are similar to RAID-0 for disks:
updates can be done in parallel to partitioned data segments."

Full replication makes every replica execute every update; partitioning
sends each update to one partition group only.  We drive a write-heavy
workload at (a) one fully-replicated 3-node cluster and (b) three
partition groups (one node each) splitting the same load, and compare
aggregate write throughput.
"""

from repro.bench import (
    ClosedLoopDriver, Report, TimedCluster, build_cluster, load_workload,
)
from repro.cluster import Environment
from repro.workloads import MicroWorkload

from common import ratio

DURATION = 2.5
CLIENTS = 9


def run_full_replication() -> float:
    env = Environment()
    middleware = build_cluster(3, replication="statement", env=env)
    workload = MicroWorkload(rows=300, read_fraction=0.0)
    load_workload(middleware, workload)
    cluster = TimedCluster(env, middleware)
    driver = ClosedLoopDriver(cluster, workload, clients=CLIENTS)
    driver.start(duration=DURATION)
    env.run(until=DURATION)
    cluster.stop()
    return driver.metrics.rate(DURATION)


def run_partitioned(groups: int = 3) -> float:
    """Partitions are independent replica groups; we simulate each group
    with its share of the clients and sum the throughput (partition
    routing itself is exercised functionally in tests/)."""
    total = 0.0
    for index in range(groups):
        env = Environment()
        middleware = build_cluster(1, replication="statement", env=env,
                                   name=f"part{index}")
        workload = MicroWorkload(rows=100, read_fraction=0.0,
                                 table=f"kv")
        load_workload(middleware, workload)
        cluster = TimedCluster(env, middleware)
        driver = ClosedLoopDriver(cluster, workload,
                                  clients=CLIENTS // groups,
                                  seed=100 + index)
        driver.start(duration=DURATION)
        env.run(until=DURATION)
        cluster.stop()
        total += driver.metrics.rate(DURATION)
    return total


def test_e02_partitioning_write_scalability(benchmark):
    def experiment():
        return {
            "replicated": run_full_replication(),
            "partitioned": run_partitioned(3),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    speedup = ratio(results["partitioned"], results["replicated"])

    report = Report(
        "E02  Write throughput: full replication vs 3-way partitioning "
        "(Fig. 2, 100% writes)",
        ["configuration", "write throughput (tps)"])
    report.add_row("3-node full replication", results["replicated"])
    report.add_row("3 partitions (1 node each)", results["partitioned"])
    report.note(f"partitioning speedup: {speedup:.2f}x "
                "(RAID-0 analogy: updates proceed in parallel)")
    report.show()

    # shape: partitioning must clearly beat full replication on writes
    assert speedup > 1.5
    benchmark.extra_info["speedup"] = round(speedup, 2)
