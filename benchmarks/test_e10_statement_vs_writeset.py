"""E10 — section 4.3.2: statement vs writeset (transaction) replication.

Claims:
* statement replication broadcasts non-deterministic statements; RAND()
  or LIMIT-without-ORDER updates silently diverge the cluster unless the
  middleware rewrites or rejects them;
* writeset replication handles non-determinism (the writeset is computed
  once) but misses auto-increment/sequence state — divergence from the
  other direction;
* performance: statement replication makes every replica execute every
  update (expensive writes, no certification aborts); writeset replication
  executes once and applies cheaply elsewhere (wins write-heavy) but pays
  certification aborts on hot keys.
"""

from repro.bench import Report
from repro.core import (
    MiddlewareConfig, ReplicationMiddleware, Replica, protocol_by_name,
)
from repro.sqlengine import Engine, postgresql
from repro.workloads import MicroWorkload

from common import ratio, run_closed_loop


def make_cluster(replication, nondeterminism="rewrite",
                 compensate=True, consistency=None):
    replicas = []
    for index in range(2):
        engine = Engine(f"x{index}", dialect=postgresql(), seed=100 + index)
        engine.create_database("shop")
        c = engine.connect(database="shop")
        c.execute("CREATE TABLE kv (k INT PRIMARY KEY, v FLOAT)")
        c.execute("CREATE TABLE auto_t (id INT PRIMARY KEY AUTO_INCREMENT, "
                  "x VARCHAR(8))")
        for key in range(10):
            c.execute(f"INSERT INTO kv VALUES ({key}, 0)")
        c.close()
        replicas.append(Replica(f"x{index}", engine))
    config = MiddlewareConfig(
        replication=replication, propagation="async",
        nondeterminism=nondeterminism, compensate_counters=compensate,
        consistency=(protocol_by_name(consistency) if consistency else None))
    return ReplicationMiddleware(replicas, config)


def divergence_matrix() -> dict:
    outcomes = {}

    # statement mode + broadcast policy: RAND() diverges
    mw = make_cluster("statement", nondeterminism="broadcast")
    session = mw.connect(database="shop")
    session.execute("UPDATE kv SET v = RAND() WHERE k < 5")
    session.close()
    outcomes["statement/RAND broadcast"] = not mw.check_convergence()

    # statement mode + rewrite policy: refuses the statement -> safe
    mw = make_cluster("statement", nondeterminism="rewrite")
    session = mw.connect(database="shop")
    try:
        session.execute("UPDATE kv SET v = RAND() WHERE k < 5")
        refused = False
    except Exception:
        refused = True
    session.close()
    outcomes["statement/RAND rewrite-policy refused"] = (
        refused and mw.check_convergence())

    # writeset mode: RAND computed once -> converges
    mw = make_cluster("writeset")
    session = mw.connect(database="shop")
    session.execute("UPDATE kv SET v = RAND() WHERE k < 5")
    mw.pump()
    session.close()
    outcomes["writeset/RAND converges"] = mw.check_convergence()

    # writeset mode without counter compensation under read-committed:
    # generated keys collide (4.3.2's endless-convergence hazard)
    mw = make_cluster("writeset", compensate=False,
                      consistency="read-committed")
    session = mw.connect(database="shop")
    session.execute("INSERT INTO auto_t (x) VALUES ('a')")
    session.execute("INSERT INTO auto_t (x) VALUES ('b')")
    mw.pump()
    session.close()
    outcomes["writeset/auto-increment diverges"] = not mw.check_convergence()

    # statement mode updates counters in the same order everywhere
    mw = make_cluster("statement")
    session = mw.connect(database="shop")
    session.execute("INSERT INTO auto_t (x) VALUES ('a')")
    session.execute("INSERT INTO auto_t (x) VALUES ('b')")
    session.close()
    outcomes["statement/auto-increment converges"] = mw.check_convergence()
    return outcomes


def throughput_comparison() -> dict:
    results = {}
    for mode in ("statement", "writeset"):
        for name, read_fraction in (("read-heavy", 0.95),
                                    ("write-heavy", 0.05)):
            workload = MicroWorkload(rows=150, read_fraction=read_fraction)
            consistency = None if mode == "statement" else "gsi"
            _mw, metrics, _c, _e = run_closed_loop(
                replicas=3, replication=mode, propagation="sync",
                consistency=consistency, workload=workload,
                clients=6, duration=2.0)
            results[(mode, name)] = metrics.rate(2.0)
    return results


def test_e10_statement_vs_writeset(benchmark):
    def experiment():
        return divergence_matrix(), throughput_comparison()

    matrix, throughput = benchmark.pedantic(experiment, rounds=1,
                                            iterations=1)

    report = Report(
        "E10  Statement vs writeset replication (section 4.3.2)",
        ["scenario", "as the paper predicts?"])
    for scenario, value in matrix.items():
        report.add_row(scenario, value)
    perf = Report(
        "E10b Throughput by replication mode",
        ["mode", "read-heavy tps", "write-heavy tps"])
    for mode in ("statement", "writeset"):
        perf.add_row(mode, throughput[(mode, "read-heavy")],
                     throughput[(mode, "write-heavy")])
    writeset_edge = ratio(throughput[("writeset", "write-heavy")],
                          throughput[("statement", "write-heavy")])
    perf.note(f"write-heavy: writeset/statement = {writeset_edge:.2f}x "
              "(apply is cheaper than re-execution)")
    report.show()
    perf.show()

    assert all(matrix.values()), matrix
    # writeset replication wins the write-heavy workload
    assert writeset_edge > 1.15
    benchmark.extra_info["writeset_write_edge"] = round(writeset_edge, 2)
