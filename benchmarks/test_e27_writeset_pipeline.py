"""E27 — section 2.2: writeset-pipeline throughput (group commit,
batched certification, dependency-parallel apply).

The certifier is a serial total-order point: per transaction it costs an
ordering round, a certification check, a log append and one propagation
enqueue per replica.  Batching amortizes all four — and the same conflict
footprints certification already computes let a replica apply
non-overlapping writesets on parallel lanes.  Three scenarios:

* **saturation** — write-only closed loop, 64 clients, the certifier's
  ordering round modeled as a held mutex (``certifier_serial``).  The
  serial pipeline caps at ~1/ordering_delay commits/sec; group commit
  pays the round once per batch.  Asserts a >=2x throughput multiple
  and convergence on both arms.
* **bounded_lag** — E07's master/slave asymmetry at an update rate where
  the serial applier's lag grows without bound; dependency-parallel
  apply of batched frames keeps the slave's lag bounded.
* **equivalence** — every certification decision made through group
  commit (random interleaved sessions, conflicting and disjoint, across
  many batches) is replayed per-transaction on a fresh certifier: the
  ok/abort decisions and assigned seqs must match exactly, final values
  must match a serial oracle, and the cluster must converge.  Zero
  violations tolerated.

Results land in ``BENCH_e27.json``.
"""

import json
import random
from pathlib import Path

from repro.bench import (
    ClosedLoopDriver, LagProbe, Report, TimedCluster, build_cluster,
    load_workload,
)
from repro.cluster import Environment
from repro.core import CostModel
from repro.core.certifier import Certifier
from repro.sqlengine import SerializationError
from repro.sqlengine.locks import LockConflict
from repro.workloads import MicroWorkload

from benchmarks.common import ratio, run_closed_loop

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_e27.json"
SEED = 27
MIN_MULTIPLE = 2.0
DURATION = 2.0
LAG_DURATION = 6.0


# ---------------------------------------------------------------------------
# scenario A: saturation throughput, serial vs batched pipeline
# ---------------------------------------------------------------------------

def run_saturation(group_commit_window: float, dependency_apply: bool) -> dict:
    # write-only, near-uniform keys: saturates the ordering point, not
    # the conflict rate (skewed keys measure aborts, not the pipeline)
    workload = MicroWorkload(rows=4000, read_fraction=0.0, skew=0.2,
                             write_statements=1)
    middleware, metrics, cluster, _env = run_closed_loop(
        replicas=3, replication="writeset", propagation="sync",
        consistency="gsi", workload=workload, clients=64,
        duration=DURATION, ordering_delay=0.003,
        group_commit_window=group_commit_window,
        dependency_apply=dependency_apply,
        apply_parallelism=8 if dependency_apply else 1,
        certifier_serial=True)
    middleware.pump()
    return {
        "tps": metrics.rate(DURATION),
        "p95_ms": metrics.write_latency.percentile(95) * 1000,
        "aborts": metrics.errors.get("SerializationError", 0),
        "max_batch": middleware.certifier.max_batch,
        "batches": middleware.group_commit.stats["batches"],
        "frames": middleware.group_commit.stats["frames"],
        "frame_units": middleware.group_commit.stats["frame_units"],
        "converged": middleware.check_convergence(),
    }


# ---------------------------------------------------------------------------
# scenario B: slave lag bounded by dependency-parallel apply (E07 shape)
# ---------------------------------------------------------------------------

def run_lag_point(group_commit_window: float, dependency_apply: bool,
                  apply_parallelism: int) -> dict:
    env = Environment()
    middleware = build_cluster(
        2, replication="writeset", propagation="async",
        consistency="rsi-pc", env=env)
    workload = MicroWorkload(rows=2000, read_fraction=0.0, skew=0.2,
                             write_statements=1)
    load_workload(middleware, workload)
    for replica in middleware.replicas:
        middleware.drain_replica(replica.name)  # setup backlog out of band
    # slave applies are random-IO bound (the section 2.2 asymmetry)
    cluster = TimedCluster(env, middleware,
                           cost_model=CostModel(writeset_apply=0.004),
                           group_commit_window=group_commit_window,
                           dependency_apply=dependency_apply,
                           apply_parallelism=apply_parallelism,
                           certifier_serial=True)
    probe = LagProbe(env, middleware, interval=0.25)
    driver = ClosedLoopDriver(cluster, workload, clients=8)
    driver.start(duration=LAG_DURATION)
    env.run(until=LAG_DURATION)
    cluster.stop()
    probe.stop()
    slave = middleware.replicas[1]
    series = probe.series[slave.name]
    half = len(series.points) // 2
    first_half = max((v for _t, v in series.points[:half]), default=0)
    second_half = max((v for _t, v in series.points[half:]), default=0)
    return {
        "tps": driver.metrics.rate(LAG_DURATION),
        "max_lag": series.max(),
        "final_lag": series.last(),
        "growing": second_half > first_half * 1.3,
    }


# ---------------------------------------------------------------------------
# scenario C: batched certification decisions replay identically
# ---------------------------------------------------------------------------

KEYSPACE = 32


def run_equivalence(rounds: int = 40, sessions_per_round: int = 4) -> dict:
    middleware = build_cluster(
        count=3, replication="writeset", consistency="gsi",
        propagation="sync", name="e27_equivalence")
    setup = middleware.connect(database="shop")
    setup.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
    for key in range(KEYSPACE):
        setup.execute(f"INSERT INTO kv (k, v) VALUES ({key}, 0)")
    setup.close()

    base_seq = middleware.certifier.current_seq
    middleware.group_commit.equivalence_log = []
    rng = random.Random(SEED)
    model = {key: 0 for key in range(KEYSPACE)}
    version = 0
    committed = aborted = 0

    for _round in range(rounds):
        group = [middleware.connect(database="shop")
                 for _ in range(sessions_per_round)]
        staged = []
        for session in group:
            session.begin()
            key = rng.randrange(KEYSPACE)  # collisions intended
            version += 1
            try:
                session.execute("UPDATE kv SET v = ? WHERE k = ?",
                                [version, key])
            except LockConflict:
                # two sessions on the same origin replica hit the same
                # row: a local write-write conflict, before certification
                session.rollback()
                continue
            staged.append((session, key, version))
        with middleware.group_commit.batch():
            for session, key, value in staged:
                try:
                    session.commit()
                except SerializationError:
                    aborted += 1
                else:
                    model[key] = value
                    committed += 1
        for session in group:
            session.close()

    decisions = middleware.group_commit.equivalence_log
    replay = Certifier()
    replay.import_log([], seq=base_seq)  # same seq floor, empty history
    violations = []
    for decision in decisions:
        outcome = replay.certify(decision["start_seq"], decision["keys"])
        if outcome.ok != decision["ok"]:
            violations.append(
                f"decision at start_seq={decision['start_seq']}: batched "
                f"ok={decision['ok']}, per-txn ok={outcome.ok}")
        elif outcome.ok and outcome.seq != decision["seq"]:
            violations.append(
                f"seq mismatch: batched {decision['seq']}, "
                f"per-txn {outcome.seq}")

    # the committed values must equal the serial oracle on every replica
    check = middleware.connect(database="shop")
    stale = 0
    for key in range(KEYSPACE):
        value = check.execute("SELECT v FROM kv WHERE k = ?",
                              [key]).scalar()
        if value != model[key]:
            stale += 1
    check.close()

    return {
        "decisions": len(decisions),
        "committed": committed,
        "aborted": aborted,
        "max_batch": middleware.certifier.max_batch,
        "violations": violations,
        "stale_values": stale,
        "converged": middleware.check_convergence(),
    }


# ---------------------------------------------------------------------------


def test_e27_writeset_pipeline(benchmark):
    def experiment():
        return {
            "saturation": {
                "serial": run_saturation(0.0, dependency_apply=False),
                "batched": run_saturation(0.004, dependency_apply=True),
            },
            "bounded_lag": {
                "serial": run_lag_point(0.0, False, apply_parallelism=1),
                "batched": run_lag_point(0.004, True, apply_parallelism=8),
            },
            "equivalence": run_equivalence(),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    saturation = results["saturation"]
    multiple = ratio(saturation["batched"]["tps"],
                     saturation["serial"]["tps"])
    lag = results["bounded_lag"]
    equivalence = results["equivalence"]

    report = Report(
        "E27  Writeset-pipeline throughput (section 2.2)",
        ["scenario", "metric", "serial", "batched"])
    report.add_row("saturation", "write tps",
                   round(saturation["serial"]["tps"], 1),
                   round(saturation["batched"]["tps"], 1))
    report.add_row("saturation", "p95 latency (ms)",
                   round(saturation["serial"]["p95_ms"], 1),
                   round(saturation["batched"]["p95_ms"], 1))
    report.add_row("saturation", "max certifier batch",
                   saturation["serial"]["max_batch"],
                   saturation["batched"]["max_batch"])
    report.add_row("saturation", "certification aborts",
                   saturation["serial"]["aborts"],
                   saturation["batched"]["aborts"])
    report.add_row("bounded_lag", "slave lag growing?",
                   lag["serial"]["growing"], lag["batched"]["growing"])
    report.add_row("bounded_lag", "final lag (txns)",
                   lag["serial"]["final_lag"], lag["batched"]["final_lag"])
    report.add_row("bounded_lag", "master tps",
                   round(lag["serial"]["tps"], 1),
                   round(lag["batched"]["tps"], 1))
    report.add_row("equivalence", "decisions replayed",
                   equivalence["decisions"], "")
    report.add_row("equivalence", "violations",
                   len(equivalence["violations"]), "")
    report.note(f"throughput multiple {multiple:.2f}x; the batched arm "
                "pays the 3ms ordering round once per batch, not once "
                "per transaction")
    report.show()

    # scenario A: the tentpole claim — and batching must not break
    # convergence or inflate the abort rate pathologically
    assert multiple >= MIN_MULTIPLE, \
        f"batched pipeline only {multiple:.2f}x serial (need {MIN_MULTIPLE}x)"
    assert saturation["serial"]["converged"]
    assert saturation["batched"]["converged"]
    assert saturation["batched"]["max_batch"] >= 4, \
        "group commit never formed a real batch"
    # one frame per destination replica per batch, not one per txn
    assert saturation["batched"]["frames"] < \
        saturation["batched"]["frame_units"]

    # scenario B: serial apply diverges, dependency-parallel apply doesn't
    assert lag["serial"]["growing"], \
        "serial applier kept up — raise the update rate"
    assert not lag["batched"]["growing"]
    assert lag["batched"]["final_lag"] < lag["serial"]["final_lag"] / 5

    # scenario C: zero certification-equivalence violations
    assert equivalence["violations"] == [], equivalence["violations"][:5]
    assert equivalence["stale_values"] == 0
    assert equivalence["converged"]
    assert equivalence["max_batch"] >= 2
    assert equivalence["decisions"] == \
        equivalence["committed"] + equivalence["aborted"]

    payload = {
        "experiment": "e27_writeset_pipeline",
        "min_multiple": MIN_MULTIPLE,
        "throughput_multiple": multiple,
        "saturation": saturation,
        "bounded_lag": lag,
        "equivalence": {
            "decisions": equivalence["decisions"],
            "committed": equivalence["committed"],
            "aborted": equivalence["aborted"],
            "max_batch": equivalence["max_batch"],
            "violations": len(equivalence["violations"]),
            "stale_values": equivalence["stale_values"],
            "converged": equivalence["converged"],
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info["throughput_multiple"] = multiple
    benchmark.extra_info["max_batch"] = saturation["batched"]["max_batch"]
    benchmark.extra_info["equivalence_violations"] = \
        len(equivalence["violations"])
