"""E05 — Figures 5-7 / sections 3.1, 4.3.1: query interception designs.

Regenerates the comparison the paper makes qualitatively: per-statement
overhead, client impact and deployment constraints of engine-level
interception (Fig. 5), DBMS-protocol proxying (Fig. 6) and driver-based
remapping (Fig. 7), plus the 500-client driver-rollout cost.
"""


from repro.bench import Report, build_cluster
from repro.core import (
    CostModel, DriverInterception, EngineInterception,
    ProtocolProxyInterception,
)
from repro.sqlengine import UnsupportedFeatureError, mysql, postgresql
from repro.workloads import MicroWorkload

from common import run_closed_loop

DESIGNS = [EngineInterception, DriverInterception, ProtocolProxyInterception]


def run_design(design_class) -> dict:
    # measure mean statement latency with the design's overhead plugged in
    cost = CostModel()
    middleware = build_cluster(2, replication="statement")
    design = design_class(middleware)
    design.apply_overhead(cost)
    _mw, metrics, _cluster, _env = run_closed_loop(
        replicas=2, replication="statement", propagation="sync",
        consistency=None,
        workload=MicroWorkload(rows=100, read_fraction=0.9),
        clients=2, duration=2.0, cost_model=cost)
    properties = design.properties()
    properties["mean_latency_ms"] = metrics.latency.mean() * 1000
    properties["throughput"] = metrics.rate(2.0)
    return properties


def heterogeneous_cluster():
    from repro.core import MiddlewareConfig, Replica, ReplicationMiddleware
    from repro.sqlengine import Engine

    replicas = []
    for index, dialect in enumerate((postgresql(), mysql())):
        engine = Engine(f"h{index}", dialect=dialect)
        engine.create_database("shop")
        replicas.append(Replica(f"h{index}", engine))
    return ReplicationMiddleware(replicas,
                                 MiddlewareConfig(replication="statement"))


def test_e05_interception_designs(benchmark):
    def experiment():
        rows = {cls.name: run_design(cls) for cls in DESIGNS}
        # constraint checks on a heterogeneous cluster
        constraints = {}
        for cls in DESIGNS:
            try:
                cls(heterogeneous_cluster())
                constraints[cls.name] = "ok"
            except UnsupportedFeatureError:
                constraints[cls.name] = "refused"
        return rows, constraints

    rows, constraints = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report = Report(
        "E05  Interception designs (Figs. 5-7): overhead and constraints",
        ["design", "mean latency (ms)", "throughput (tps)",
         "client change", "heterogeneous engines", "coupled to engine"])
    for name, row in rows.items():
        report.add_row(name, row["mean_latency_ms"], row["throughput"],
                       row["requires_client_change"],
                       constraints[name] == "ok",
                       row["coupled_to_engine"])
    report.note("driver rollout for 500 clients: "
                f"{DriverInterception.deployment_cost(500):.0f} minutes "
                "(vs upgrading 4 server nodes — section 4.3.1)")
    report.show()

    # shape: engine-level is fastest but most constrained; the proxy pays
    # the full protocol parse; the driver design is the balanced default
    assert (rows["engine-level"]["mean_latency_ms"]
            < rows["driver-based"]["mean_latency_ms"]
            < rows["protocol-proxy"]["mean_latency_ms"])
    assert constraints["engine-level"] == "refused"
    assert constraints["protocol-proxy"] == "refused"
    assert constraints["driver-based"] == "ok"
    assert not rows["engine-level"]["requires_client_change"]
    assert rows["driver-based"]["requires_client_change"]
