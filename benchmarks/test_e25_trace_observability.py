"""E25 — section 5.1: end-to-end request tracing under chaos.

The paper's gray-failure discussion (section 5.1) argues that aggregate
percentiles cannot explain *why* a request was slow during a partial
failure — was it retried, backed off, bounced off an ejected replica,
served stale?  E25 drives the E22 chaos configuration (seeded fault
schedule, open-loop Poisson load, resilience enabled) and validates
that the span traces collected by ``repro.obs`` are a faithful,
exportable explanation of what happened:

* **fidelity** — for every client request, the per-stage latency
  breakdown derived from its trace sums to within 5% of the measured
  end-to-end latency (and aggregate stage coverage is >= 95%);
* **fault timeline** — retry / failover / backoff span events only
  occur inside injected fault windows, so the fault schedule can be
  reconstructed from the traces alone;
* **degraded modes** — deterministic scenarios confirm circuit-breaker
  ejections (``circuit_open``) and bounded-staleness degraded reads
  (``degraded_read``) surface as span events;
* **export** — the whole run round-trips through the JSON-lines
  exporter without loss.

Results land in ``BENCH_e25.json``.
"""

import io
import json
from pathlib import Path

from repro.bench import Report, build_cluster
from repro.bench.chaos import (
    ChaosConfig, default_resilience_policy, run_chaos,
)
from repro.core import ResiliencePolicy, RetryPolicy, RetryExhausted
from repro.metrics.breakdown import (
    BreakdownAggregator, explain_trace, trace_breakdown, trace_root,
)
from repro.obs import group_by_trace, read_jsonl, write_jsonl

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_e25.json"

SEED = 1
DURATION = 30.0
RATE_TPS = 30.0
N_FAULTS = 5

#: error names that only a down / recovering replica can produce —
#: serialization conflicts and shedding are excluded so the timeline
#: reconstruction below is built from fault evidence alone
FAULT_ERRORS = {"NodeDown", "ConnectionError", "ReplicaUnavailable",
                "NoReplicaAvailable", "CircuitOpen"}
#: slack appended to each fault window: detection + failback delays plus
#: one in-flight backoff that straddles the repair instant
WINDOW_PAD = 3.0


# ---------------------------------------------------------------------------
# trace-side reconstruction helpers
# ---------------------------------------------------------------------------

def fault_windows(result):
    """[(start, end)] downtime intervals per target, from the injected
    schedule (crash/flap opens a window, repair closes it)."""
    open_at = {}
    windows = []
    for event in sorted(result.fault_events, key=lambda e: e.time):
        if event.kind in ("crash", "flap"):
            open_at.setdefault(event.target, event.time)
        elif event.kind == "repair" and event.target in open_at:
            windows.append((open_at.pop(event.target), event.time))
    horizon = result.elapsed + result.config.drain_grace
    windows.extend((start, horizon) for start in open_at.values())
    return sorted(windows)


def fault_evidence(traces):
    """Timestamps of span events that only a fault can produce."""
    times = []
    for spans in traces:
        for span in spans:
            for time, name, attrs in span.events:
                if name == "failover_retry":
                    times.append(time)
                elif name in ("retry", "backoff", "retry_exhausted",
                              "circuit_open"):
                    error = attrs.get("error", "")
                    if any(error.startswith(e) for e in FAULT_ERRORS):
                        times.append(time)
    return sorted(times)


def within_windows(times, windows, pad):
    hits = sum(1 for t in times
               if any(s <= t <= e + pad for s, e in windows))
    return hits / len(times) if times else 1.0


# ---------------------------------------------------------------------------
# scenario A: chaos run — breakdown fidelity + timeline reconstruction
# ---------------------------------------------------------------------------

def run_chaos_fidelity():
    result = run_chaos(ChaosConfig(
        seed=SEED, duration=DURATION, rate_tps=RATE_TPS,
        n_faults=N_FAULTS, resilience=default_resilience_policy(seed=SEED)))
    assert result.all_invariants_hold, result.violations

    by_trace = {}
    for spans in result.traces:
        root = trace_root(spans)
        if root is not None:
            by_trace[root.trace_id] = spans

    aggregator = BreakdownAggregator()
    checked = 0
    worst_rel = 0.0
    for record in result.records:
        if record.trace_id is None or record.end is None:
            continue
        spans = by_trace.get(record.trace_id)
        assert spans is not None, \
            f"request {record.id} has no retained trace"
        aggregator.add_trace(spans)
        latency = record.end - record.start
        staged = sum(trace_breakdown(spans).values())
        checked += 1
        if latency > 1e-9:
            rel = abs(staged - latency) / latency
            worst_rel = max(worst_rel, rel)
        else:
            assert staged <= 1e-9

    windows = fault_windows(result)
    evidence = fault_evidence(result.traces)
    return {
        "result": result,
        "aggregator": aggregator,
        "checked": checked,
        "worst_rel_error": worst_rel,
        "windows": windows,
        "evidence": evidence,
        "evidence_in_windows": within_windows(evidence, windows,
                                              WINDOW_PAD),
    }


# ---------------------------------------------------------------------------
# scenarios B + C: deterministic degraded-mode events
# ---------------------------------------------------------------------------

def _seeded_cluster(**kwargs):
    middleware = build_cluster(2, replication="writeset", **kwargs)
    session = middleware.connect(database="shop")
    session.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
    session.execute("INSERT INTO kv (k, v) VALUES (0, 0)")
    session.close()
    middleware.pump()
    return middleware


def _kill(replica):
    replica.engine.crash()
    replica.mark_failed()


def _events(middleware, name):
    return [(span, time, attrs)
            for span in middleware.tracer.finished_spans()
            for time, event, attrs in span.events if event == name]


def run_degraded_read():
    """Master down + lagging slave: the bounded-staleness read carries a
    ``degraded_read`` span event (paper section 5.1 degraded modes)."""
    middleware = _seeded_cluster(
        consistency="rsi-pc", propagation="async",
        resilience=ResiliencePolicy(retry=RetryPolicy(jitter=0.0)))
    session = middleware.connect(database="shop")
    session.execute("UPDATE kv SET v = 7 WHERE k = 0")
    _kill(middleware.replicas[0])  # master dies before the slave applies
    value = session.execute("SELECT v FROM kv WHERE k = 0").scalar()
    session.close()
    assert value == 0  # stale by design
    events = _events(middleware, "degraded_read")
    assert events, "no degraded_read span event was recorded"
    span = events[0][0]
    return {
        "stale_value": value,
        "events": len(events),
        "lag": events[0][2].get("lag"),
        "explain": explain_trace(
            middleware.tracer.trace(span.trace_id)),
    }


def run_circuit_open():
    """Every breaker forced open: the rejection surfaces as a
    ``circuit_open`` span event before the request fails."""
    middleware = _seeded_cluster(
        consistency="gsi", propagation="sync",
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=2, jitter=0.0)))
    for replica in middleware.replicas:
        middleware.resilience.breaker(replica.name).force_open()
    session = middleware.connect(database="shop")
    failed = False
    try:
        session.execute("SELECT v FROM kv WHERE k = 0")
    except RetryExhausted:
        failed = True
    session.close()
    assert failed, "request succeeded with every breaker open"
    events = _events(middleware, "circuit_open")
    assert events, "no circuit_open span event was recorded"
    return {"events": len(events)}


# ---------------------------------------------------------------------------
# the experiment
# ---------------------------------------------------------------------------

def test_e25_trace_observability(benchmark):
    def experiment():
        return {
            "chaos": run_chaos_fidelity(),
            "degraded": run_degraded_read(),
            "breaker": run_circuit_open(),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    chaos = results["chaos"]
    result = chaos["result"]
    summary = chaos["aggregator"].summary()

    report = Report(
        "E25  Trace observability under chaos (section 5.1)",
        ["metric", "value"])
    report.add_row("requests traced", chaos["checked"])
    report.add_row("stage coverage", f"{summary['coverage']:.4f}")
    report.add_row("worst breakdown error",
                   f"{chaos['worst_rel_error']:.4%}")
    report.add_row("fault windows", len(chaos["windows"]))
    report.add_row("fault evidence events", len(chaos["evidence"]))
    report.add_row("evidence inside windows",
                   f"{chaos['evidence_in_windows']:.2%}")
    report.add_row("degraded_read events", results["degraded"]["events"])
    report.add_row("circuit_open events", results["breaker"]["events"])
    report.note(f"E22 chaos config: seed {SEED}, {RATE_TPS} tps for "
                f"{DURATION}s, {N_FAULTS} faults, resilience on")
    report.note("breakdown: per-request stage sum vs measured latency")
    report.show()

    # -- acceptance: breakdown fidelity (the 5% bar) ------------------------
    assert chaos["checked"] == len(result.records), \
        "some requests were not traced"
    assert chaos["worst_rel_error"] <= 0.05, \
        f"worst per-request breakdown error {chaos['worst_rel_error']:.2%}"
    assert summary["coverage"] >= 0.95, \
        f"stages explain only {summary['coverage']:.2%} of latency"

    # -- acceptance: resilience machinery visible as span events ------------
    all_events = {name for spans in result.traces for span in spans
                  for _t, name, _a in span.events}
    assert "retry" in all_events, "no retry span events under chaos"
    assert "backoff" in all_events, "no backoff span events under chaos"

    # -- acceptance: the fault timeline is reconstructible from traces ------
    assert chaos["windows"], "the fault schedule injected nothing"
    assert chaos["evidence"], "no fault evidence in any trace"
    first_fault = min(start for start, _end in chaos["windows"])
    assert chaos["evidence"][0] >= first_fault, \
        "trace shows fault evidence before the first injected fault"
    assert chaos["evidence_in_windows"] >= 0.9, \
        (f"only {chaos['evidence_in_windows']:.0%} of fault evidence "
         f"falls inside injected fault windows")

    # -- acceptance: lossless JSON-lines export -----------------------------
    flat = [span for spans in result.traces for span in spans]
    buffer = io.StringIO()
    written = write_jsonl(flat, buffer)
    restored = read_jsonl(io.StringIO(buffer.getvalue()))
    assert written == len(flat) == len(restored)
    assert len(group_by_trace(restored)) == len(result.traces)
    sample = restored[0]
    assert sample.to_dict() == flat[0].to_dict()

    # -- acceptance: degraded-mode events -----------------------------------
    assert results["degraded"]["events"] >= 1
    assert "degraded_read" in results["degraded"]["explain"]
    assert results["breaker"]["events"] >= 1

    payload = {
        "experiment": "e25_trace_observability",
        "seed": SEED,
        "duration_s": DURATION,
        "rate_tps": RATE_TPS,
        "n_faults": N_FAULTS,
        "requests_traced": chaos["checked"],
        "stage_coverage": summary["coverage"],
        "worst_breakdown_rel_error": chaos["worst_rel_error"],
        "stage_seconds": summary["stage_seconds"],
        "trace_stats": result.trace_stats,
        "fault_windows": len(chaos["windows"]),
        "fault_evidence_events": len(chaos["evidence"]),
        "evidence_in_windows": chaos["evidence_in_windows"],
        "degraded_read_events": results["degraded"]["events"],
        "circuit_open_events": results["breaker"]["events"],
        "exported_spans": written,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info["stage_coverage"] = summary["coverage"]
    benchmark.extra_info["worst_breakdown_rel_error"] = \
        chaos["worst_rel_error"]
    benchmark.extra_info["evidence_in_windows"] = \
        chaos["evidence_in_windows"]
