"""E04 — Figure 4 / sections 2.2, 4.3.4.1: WAN replication.

Claims:
* synchronous (total-order) replication across WAN latency is impractical
  — commit latency is dominated by the inter-site round trips;
* asynchronous per-site masters keep local latency LAN-grade;
* geo-routing sends each region's updates to its owning site.
"""

from repro.bench import Report
from repro.core import Site, WanSystem
from repro.bench import build_cluster
from repro.workloads import MicroWorkload

from common import ratio

WAN_RTT = 0.160     # transcontinental round trip (seconds)
LAN_RTT = 0.0006


def run_latency(ordering_delay: float) -> dict:
    from repro.bench import ClosedLoopDriver, TimedCluster, load_workload
    from repro.cluster import Environment

    env = Environment()
    middleware = build_cluster(3, replication="statement", env=env)
    workload = MicroWorkload(rows=100, read_fraction=0.5)
    load_workload(middleware, workload)
    cluster = TimedCluster(env, middleware, ordering_delay=ordering_delay)
    driver = ClosedLoopDriver(cluster, workload, clients=4)
    driver.start(duration=3.0)
    env.run(until=3.0)
    cluster.stop()
    return {
        "write_p50_ms": driver.metrics.write_latency.percentile(50) * 1000,
        "read_p50_ms": driver.metrics.read_latency.percentile(50) * 1000,
        "throughput": driver.metrics.rate(3.0),
    }


def run_geo_routing() -> dict:
    sites = []
    for name in ("eu", "us", "asia"):
        middleware = build_cluster(2, replication="statement", name=name)
        session = middleware.connect(database="shop")
        session.execute("CREATE TABLE c (id INT PRIMARY KEY, "
                        "region VARCHAR(8), v INT)")
        session.close()
        sites.append(Site(name, middleware, [name]))
    wan = WanSystem(sites, region_column="region")
    client = wan.connect("eu", database="shop")
    for index in range(30):
        region = ("eu", "us", "asia")[index % 3]
        client.execute(
            f"INSERT INTO c (id, region, v) VALUES ({index}, '{region}', 1)")
    shipped = wan.ship_updates()
    client.close()
    return {"stats": dict(wan.stats), "shipped": shipped}


def test_e04_wan_vs_lan_replication(benchmark):
    def experiment():
        return {
            "lan_sync": run_latency(ordering_delay=LAN_RTT),
            "wan_sync": run_latency(ordering_delay=WAN_RTT),
            "geo": run_geo_routing(),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lan, wan = results["lan_sync"], results["wan_sync"]

    report = Report(
        "E04  WAN replication (Fig. 4): sync over WAN vs LAN; "
        "async geo-partitioned masters",
        ["configuration", "write p50 (ms)", "read p50 (ms)",
         "throughput (tps)"])
    report.add_row("sync total-order, LAN (0.6ms RTT)",
                   lan["write_p50_ms"], lan["read_p50_ms"],
                   lan["throughput"])
    report.add_row("sync total-order, WAN (160ms RTT)",
                   wan["write_p50_ms"], wan["read_p50_ms"],
                   wan["throughput"])
    geo = results["geo"]["stats"]
    report.note(f"geo-routing: {geo['local_writes']} local / "
                f"{geo['remote_writes']} remote writes, "
                f"{results['geo']['shipped']} entries shipped async "
                "(per-site masters keep writes local)")
    report.show()

    # shape: WAN sync writes are ~2 orders of magnitude slower
    slowdown = ratio(wan["write_p50_ms"], lan["write_p50_ms"])
    assert slowdown > 10
    assert wan["write_p50_ms"] > 150  # at least one WAN round per write
    # reads stay local in both cases
    assert wan["read_p50_ms"] < 10
    # throughput collapses under WAN ordering
    assert wan["throughput"] < lan["throughput"] / 3
    benchmark.extra_info["wan_write_slowdown"] = round(slowdown, 1)
