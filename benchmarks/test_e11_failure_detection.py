"""E11 — section 4.3.4.2: failure detection latency and false positives.

Claims:
* TCP keep-alive defaults detect failures in "30 seconds to 2 hours";
* application heartbeats detect in seconds;
* "A shorter TCP KeepAlive value generates false positives under heavy
  load by classifying slow connections as failed."
"""

from repro.bench import Report
from repro.cluster import (
    Environment, FaultInjector, HeartbeatDetector, Network, Node,
    TcpKeepaliveDetector, TCP_KEEPALIVE_DEFAULT,
)

CRASH_AT = 20.0


def run_tcp(keepalive: float) -> float:
    env = Environment()
    node = Node(env, "db")
    detector = TcpKeepaliveDetector(env, keepalive_timeout=keepalive)
    detector.watch(node)

    def traffic():
        # the connection carries traffic until the peer dies; only then
        # does the keep-alive idle clock start running out
        while node.up:
            detector.note_traffic(node.name)
            yield env.timeout(1.0)

    env.process(traffic(), name="traffic")
    injector = FaultInjector(env)
    injector.crash_at(node, time=CRASH_AT)
    env.run(until=CRASH_AT + keepalive + 60)
    detector.stop()
    real = [d for d in detector.detections if d.failed_at is not None]
    return real[0].detection_latency if real else float("inf")


def run_heartbeat(interval: float, misses: int,
                  load: float = 0.0) -> dict:
    env = Environment()
    network = Network(env)
    node = Node(env, "db")
    detector = HeartbeatDetector(env, network, "mon", interval=interval,
                                 timeout=interval, miss_threshold=misses,
                                 ping_service_time=0.002)
    detector.watch(node)
    detector.start()
    if load > 0:
        def hog():
            from repro.cluster import NodeDown
            try:
                while env.now < CRASH_AT + 30:
                    yield from node.execute(load)
            except NodeDown:
                return
        env.process(hog(), name="load")
    injector = FaultInjector(env, network=network)
    injector.crash_at(node, time=CRASH_AT)
    env.run(until=CRASH_AT + 30)
    detector.stop()
    real = [d for d in detector.detections if not d.false_positive]
    false = [d for d in detector.detections if d.false_positive]
    return {
        "latency": real[0].detection_latency if real else float("inf"),
        "false_positives": len(false),
    }


def test_e11_failure_detection(benchmark):
    def experiment():
        return {
            "tcp_default": run_tcp(TCP_KEEPALIVE_DEFAULT),
            "tcp_30s": run_tcp(30.0),
            "hb_1s": run_heartbeat(1.0, 3),
            "hb_aggressive_idle": run_heartbeat(0.05, 2, load=0.0),
            "hb_aggressive_loaded": run_heartbeat(0.05, 2, load=0.5),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report = Report(
        "E11  Failure detection (section 4.3.4.2)",
        ["detector", "detection latency (s)", "false positives"])
    report.add_row("TCP keep-alive (OS default 2h)",
                   results["tcp_default"], 0)
    report.add_row("TCP keep-alive (tuned 30s)", results["tcp_30s"], 0)
    report.add_row("heartbeat 1s x 3", results["hb_1s"]["latency"],
                   results["hb_1s"]["false_positives"])
    report.add_row("heartbeat 50ms x 2 (idle node)",
                   results["hb_aggressive_idle"]["latency"],
                   results["hb_aggressive_idle"]["false_positives"])
    report.add_row("heartbeat 50ms x 2 (loaded node)",
                   results["hb_aggressive_loaded"]["latency"],
                   results["hb_aggressive_loaded"]["false_positives"])
    report.note("the paper's range: '30 seconds to 2 hours, depending on "
                "the system defaults'")
    report.show()

    # the paper's 30s..2h window for TCP defaults
    assert results["tcp_default"] > 3600
    assert 25 <= results["tcp_30s"] <= 35
    # heartbeats detect in seconds
    assert results["hb_1s"]["latency"] < 10
    assert results["hb_1s"]["false_positives"] == 0
    # aggressive timeouts misfire only under load
    assert results["hb_aggressive_idle"]["false_positives"] == 0
    assert results["hb_aggressive_loaded"]["false_positives"] > 0
    benchmark.extra_info["tcp_default_s"] = results["tcp_default"]
    benchmark.extra_info["hb_latency_s"] = results["hb_1s"]["latency"]
