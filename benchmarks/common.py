"""Shared helpers for the experiment suite (E01-E21).

Each ``benchmarks/test_eXX_*.py`` regenerates one figure or quantitative
claim of the paper (see DESIGN.md's per-experiment index).  Experiments run
the real middleware inside the discrete-event simulator, print a
:class:`repro.bench.Report` with the rows the paper's narrative implies,
and assert the claim's *shape* (who wins, roughly by how much, where the
crossover falls).
"""

from __future__ import annotations

from typing import Optional

from repro.bench import (
    ClosedLoopDriver, OpenLoopDriver, TimedCluster, build_cluster,
    load_workload,
)
from repro.cluster import Environment
from repro.core import CostModel
from repro.workloads import MicroWorkload, Workload


def run_closed_loop(replicas: int = 3,
                    replication: str = "writeset",
                    propagation: str = "async",
                    consistency: Optional[str] = "gsi",
                    workload: Optional[Workload] = None,
                    clients: int = 8,
                    duration: float = 3.0,
                    think_time: float = 0.0,
                    apply_parallelism: int = 1,
                    cost_model: Optional[CostModel] = None,
                    cold_read_penalty: float = 0.0,
                    ordering_delay: Optional[float] = None,
                    group_commit_window: float = 0.0,
                    dependency_apply: bool = False,
                    certifier_serial: bool = False,
                    drain_setup: bool = False,
                    policy=None,
                    level=None,
                    seed: int = 31,
                    fault=None):
    """Build cluster + timed driver, run, return (middleware, metrics,
    cluster, env).  ``fault(env, middleware)`` may return a generator to
    schedule as a fault process."""
    env = Environment()
    kwargs = {}
    if policy is not None:
        kwargs["policy"] = policy
    if level is not None:
        kwargs["level"] = level
    middleware = build_cluster(
        replicas, replication=replication, propagation=propagation,
        consistency=consistency, env=env, **kwargs)
    workload = workload or MicroWorkload(rows=200, read_fraction=0.8)
    load_workload(middleware, workload)
    if drain_setup:
        # apply the setup inserts everywhere before the clock starts, so
        # lag series measure steady-state behaviour, not the load backlog
        for replica in middleware.replicas:
            middleware.drain_replica(replica.name)
    cluster = TimedCluster(env, middleware,
                           cost_model=cost_model,
                           apply_parallelism=apply_parallelism,
                           cold_read_penalty=cold_read_penalty,
                           ordering_delay=ordering_delay,
                           group_commit_window=group_commit_window,
                           dependency_apply=dependency_apply,
                           certifier_serial=certifier_serial)
    driver = ClosedLoopDriver(cluster, workload, clients=clients,
                              think_time=think_time, seed=seed)
    if fault is not None:
        process = fault(env, middleware)
        if process is not None:
            env.process(process, name="fault")
    driver.start(duration=duration)
    env.run(until=duration)
    cluster.stop()
    return middleware, driver.metrics, cluster, env


def run_open_loop(replicas: int = 3,
                  replication: str = "writeset",
                  propagation: str = "async",
                  consistency: Optional[str] = "gsi",
                  workload: Optional[Workload] = None,
                  rate_tps: float = 200.0,
                  duration: float = 3.0,
                  drain: float = 0.5,
                  cost_model: Optional[CostModel] = None,
                  seed: int = 37,
                  fault=None):
    env = Environment()
    middleware = build_cluster(
        replicas, replication=replication, propagation=propagation,
        consistency=consistency, env=env)
    workload = workload or MicroWorkload(rows=200, read_fraction=0.8)
    load_workload(middleware, workload)
    cluster = TimedCluster(env, middleware, cost_model=cost_model)
    driver = OpenLoopDriver(cluster, workload, rate_tps=rate_tps, seed=seed)
    if fault is not None:
        process = fault(env, middleware)
        if process is not None:
            env.process(process, name="fault")
    driver.start(duration=duration)
    env.run(until=duration + drain)
    cluster.stop()
    return middleware, driver.metrics, cluster, env


def ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else float("inf")
