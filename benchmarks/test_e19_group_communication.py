"""E19 — section 4.3.4.1: group communication as a scalability limit.

Claims:
* "the group communication layer is an intrinsic scalability limit" —
  total-order delivery latency grows with group size;
* protocol structure matters (fixed sequencer vs token ring trade
  ordering latency differently);
* "it is inefficient to perform state transfers when a new replica joins
  a cluster using group communication, because of the large amount of
  state to transfer".
"""

from repro.bench import Report
from repro.cluster import Environment, Network, TotalOrderChannel

GROUP_SIZES = [2, 4, 8, 16]
MESSAGES = 60


def run_protocol(protocol: str, members: int) -> dict:
    env = Environment()
    network = Network(env)
    channel = TotalOrderChannel(env, network, "grp", protocol=protocol)
    delivered = {f"m{i}": [] for i in range(members)}
    for name in delivered:
        channel.join(name, lambda d, name=name: delivered[name].append(d.seq))

    def senders():
        for index in range(MESSAGES):
            channel.multicast(f"m{index % members}", f"msg{index}")
            yield env.timeout(0.004)

    env.process(senders(), name="senders")
    env.run(until=10.0)
    channel.stop()
    sequences = list(delivered.values())
    total_order_holds = all(s == sequences[0] for s in sequences)
    return {
        "mean_latency_ms": channel.mean_delivery_latency() * 1000,
        "messages": channel.messages_ordered,
        "control_messages": channel.control_messages,
        "total_order": total_order_holds,
    }


def state_transfer_times() -> dict:
    env = Environment()
    network = Network(env)
    channel = TotalOrderChannel(env, network, "grp")
    times = {}
    for size in (100, 10000, 1000000):
        start = env.now
        done = channel.state_transfer("donor", "joiner", state_size=size)
        env.run_until(done)
        times[size] = env.now - start
    return times


def test_e19_group_communication_limits(benchmark):
    def experiment():
        results = {}
        for protocol in ("sequencer", "token"):
            results[protocol] = {
                n: run_protocol(protocol, n) for n in GROUP_SIZES
            }
        return results, state_transfer_times()

    results, transfers = benchmark.pedantic(experiment, rounds=1,
                                            iterations=1)

    report = Report(
        "E19  Total-order multicast latency vs group size "
        "(section 4.3.4.1)",
        ["members", "sequencer latency (ms)", "token latency (ms)",
         "total order holds"])
    for n in GROUP_SIZES:
        seq_row = results["sequencer"][n]
        token_row = results["token"][n]
        report.add_row(n, seq_row["mean_latency_ms"],
                       token_row["mean_latency_ms"],
                       seq_row["total_order"] and token_row["total_order"])
    report.note("state transfer over the GC channel: "
                + ", ".join(f"{size} units -> {t*1000:.1f}ms"
                            for size, t in transfers.items()))
    report.show()

    # safety: total order held everywhere
    for protocol in ("sequencer", "token"):
        assert all(results[protocol][n]["total_order"]
                   for n in GROUP_SIZES)
    # latency grows with group size for both protocols
    for protocol in ("sequencer", "token"):
        latencies = [results[protocol][n]["mean_latency_ms"]
                     for n in GROUP_SIZES]
        assert latencies[-1] > latencies[0]
    # the token ring waits for the token: worse ordering latency than a
    # sequencer at larger group sizes
    assert (results["token"][16]["mean_latency_ms"]
            > results["sequencer"][16]["mean_latency_ms"])
    # state transfer cost scales with state size (the join inefficiency)
    assert transfers[1000000] > transfers[100] * 100
