"""E29 — horizontal shard tier: write scale-out, live resharding, and
2PC/certification equivalence.

The paper's section 2.2 bottleneck is the per-cluster serial point
(total order + certification); its section 5.1 agenda asks for systems
that grow *past* one replication group.  The shard tier answers with
middleware-owned shard maps in front of N groups, and E29 measures the
three claims that make it real:

* **scaleout** (simulated time): closed-loop clients updating
  shard-local keys at 1, 2 and 4 shards.  Each shard is an independent
  ordering point, so write throughput must scale: >= 1.5x at 4 shards
  vs 1 (it lands near linear) — and none of it may have paid 2PC.
* **live_split** (simulated time): E28's open-loop session tier drives
  a range-sharded table while an :class:`OnlineReshard` snapshots,
  copies, catches up, dual-writes and flips half the keyspace to a new
  shard — no quiesce.  Gates: **zero acked-commit loss** (the final
  sum over the table equals exactly the number of acknowledged update
  transactions — every key is pre-seeded so every acked update changed
  exactly one row) and **zero stale reads** (a monotonic probe on
  moving keys never observes a value going backwards — the map-version
  cache salt and the dual-write window make that structural), with the
  flip retried until the pre-flip write epoch drains.
* **equivalence** (state only): a seeded cross-shard 2PC mix with the
  coordinator's equivalence log enabled; every per-group prepare
  decision is replayed on a fresh certifier (same seq floor, aborts
  rescinded exactly as the coordinator resolved them) and must match
  bit-for-bit — 2PC changes *where* commits coordinate, never *what*
  certification decides.

Results land in ``BENCH_e29.json``; assertions pin deterministic
simulated-time results, never wall-clock numbers.
"""

import json
import random
from pathlib import Path

from repro.bench.harness import Report, build_sharded_cluster
from repro.bench.simdriver import (
    ClosedLoopDriver, SessionArrivalDriver, TimedShardedCluster,
)
from repro.cluster.sim import Environment
from repro.core.certifier import Certifier
from repro.shard import HashSharder, OnlineReshard, RangeSharder, ReshardError
from repro.sqlengine import LockConflict, SerializationError
from repro.workloads.generator import TxnSpec, Workload
from repro.workloads.openloop import ConstantRate, OpenLoopWorkload

SEED = 29
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_e29.json"

# scaleout arm
SCALE_SHARDS = (1, 2, 4)
SCALE_KEYS = 256
SCALE_CLIENTS = 16
SCALE_HORIZON = 5.0
MIN_SCALEOUT = 1.5

# live-split arm
SPLIT_KEYS = 400           # all seeded, so every acked update hits a row
SPLIT_BOUND = 199          # keys 0..199 move to the new shard
SPLIT_RATE = 250.0         # sessions/s of sustained open-loop load
SPLIT_HORIZON = 6.0
SPLIT_DEADLINE = 0.75
RESHARD_AT = 1.0           # sim-time when the reshard starts
PROBE_KEYS = (0, 5, SPLIT_BOUND)
PROBE_INTERVAL = 0.02

# equivalence arm
EQ_ROUNDS = 40
EQ_KEYS = 16


def _create_kv(cluster):
    for group in cluster.groups:
        session = group.connect(database="shop")
        session.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        session.close()


def _seed_kv(cluster, keys):
    """Seed through the tier (table already registered), so every row
    lands on its owning shard."""
    session = cluster.connect(database="shop")
    for key in range(keys):
        session.execute(f"INSERT INTO kv (k, v) VALUES ({key}, 0)")
    session.close()


# ---------------------------------------------------------------------------
# scenario A: shard-local write scale-out
# ---------------------------------------------------------------------------

class PointUpdates(Workload):
    """Uniform single-key updates: shard-local by construction, so the
    only serialization is each shard's own ordering point."""

    name = "point-updates"

    def next_transaction(self, rng: random.Random) -> TxnSpec:
        key = rng.randrange(SCALE_KEYS)
        return TxnSpec([(f"UPDATE kv SET v = v + 1 WHERE k = {key}", [])],
                       is_read_only=False, tables=["kv"],
                       kind="point_write")


def run_scale_point(shards: int) -> dict:
    env = Environment()
    cluster = build_sharded_cluster(shards=shards, replicas=2, env=env,
                                    name=f"e29s{shards}")
    _create_kv(cluster)
    cluster.register_table("kv", "k", HashSharder(shards))
    _seed_kv(cluster, SCALE_KEYS)
    timed = TimedShardedCluster(env, cluster)
    driver = ClosedLoopDriver(timed, PointUpdates(),
                              clients=SCALE_CLIENTS, seed=SEED)
    driver.start(SCALE_HORIZON)
    env.run(until=SCALE_HORIZON)
    assert cluster.check_convergence()
    return {
        "shards": shards,
        "tps": driver.metrics.rate(SCALE_HORIZON),
        "p99": driver.metrics.latency.percentile(99),
        "errors": dict(driver.metrics.errors),
        "twopc_commits": cluster.stats["twopc_commits"],
    }


# ---------------------------------------------------------------------------
# scenario B: online split under sustained open-loop load
# ---------------------------------------------------------------------------

class SplitWorkload(OpenLoopWorkload):
    """Uniform point reads/updates over a fully seeded keyspace, so
    every acknowledged update changed exactly one row (the accounting
    the zero-loss gate relies on)."""

    def __init__(self):
        super().__init__(rows=SPLIT_KEYS, seed_rows=SPLIT_KEYS,
                         read_fraction=0.5, table="kv",
                         mean_session_length=2.0, mean_think_time=0.01)

    def next_transaction(self, rng: random.Random) -> TxnSpec:
        key = rng.randrange(SPLIT_KEYS)
        if rng.random() < self.read_fraction:
            return TxnSpec(
                [(f"SELECT v FROM kv WHERE k = {key}", [])],
                True, ["kv"], kind="point_read")
        return TxnSpec(
            [(f"UPDATE kv SET v = v + 1 WHERE k = {key}", [])],
            False, ["kv"], kind="point_write")


def _reshard_process(env, cluster, log):
    """Drive the reshard phase by phase with simulated pauses, retrying
    the flip until the pre-flip write epoch drains."""
    yield env.timeout(RESHARD_AT)
    move = OnlineReshard.split_range(cluster, "kv", SPLIT_BOUND, dst=1,
                                     database="shop")
    move.start()
    log["reshard_started_at"] = env.now
    while move.state == "copying":
        move.copy_chunk(64)
        yield env.timeout(0.01)    # copy runs in bounded chunks
    while move.catch_up() > 2:     # repeat until the tail is small
        yield env.timeout(0.005)
    move.enter_dual_write()
    log["dual_write_at"] = env.now
    yield env.timeout(0.25)        # a real window: load keeps hitting it
    flip_retries = 0
    while True:
        try:
            move.flip()
            break
        except ReshardError:
            flip_retries += 1
            yield env.timeout(0.005)
    log["flip_at"] = env.now
    log["flip_retries"] = flip_retries
    log["stats"] = dict(move.stats)


def _probe_process(env, cluster, log):
    """Monotonic freshness probe: v only ever increments, so a read
    that goes backwards is a stale read of a moved key."""
    session = cluster.connect(database="shop")
    last = {}
    while True:
        for key in PROBE_KEYS:
            rows = session.execute(
                f"SELECT v FROM kv WHERE k = {key}").rows
            value = rows[0][0] if rows else None
            if value is None:
                log["missing_rows"] += 1
            elif value < last.get(key, 0):
                log["stale_reads"] += 1
            if value is not None:
                last[key] = value
            log["probes"] += 1
        yield env.timeout(PROBE_INTERVAL)


def run_live_split() -> dict:
    env = Environment()
    cluster = build_sharded_cluster(shards=2, replicas=2, env=env,
                                    name="e29split")
    _create_kv(cluster)
    # one live range segment, all keys on shard 0; the split moves
    # keys <= SPLIT_BOUND to shard 1
    cluster.register_table("kv", "k",
                           RangeSharder([SPLIT_KEYS * 10], [0, 1]))
    _seed_kv(cluster, SPLIT_KEYS)
    timed = TimedShardedCluster(env, cluster)
    driver = SessionArrivalDriver(timed, SplitWorkload(),
                                  ConstantRate(SPLIT_RATE), seed=SEED,
                                  txn_deadline=SPLIT_DEADLINE)
    log = {"stale_reads": 0, "missing_rows": 0, "probes": 0}
    driver.start(SPLIT_HORIZON)
    env.process(_reshard_process(env, cluster, log), name="reshard")
    env.process(_probe_process(env, cluster, log), name="probe")
    env.run(until=SPLIT_HORIZON + 0.5)

    acked_updates = driver.metrics.write_latency.count()
    session = cluster.connect(database="shop")
    total = session.execute("SELECT SUM(v) FROM kv").rows[0][0] or 0
    count = session.execute("SELECT COUNT(*) FROM kv").rows[0][0]
    per_group = []
    for group in cluster.groups:
        direct = group.connect(database="shop")
        per_group.append(
            direct.execute("SELECT COUNT(*) FROM kv").rows[0][0])
        direct.close()
    summary = driver.summary(SPLIT_HORIZON)
    summary.update({
        "acked_update_txns": acked_updates,
        "sum_v": total,
        "rows": count,
        "rows_per_group": per_group,
        "map_version": cluster.map.version,
        "converged": cluster.check_convergence(),
        "dual_writes": cluster.stats["dual_writes"],
        "twopc_commits": cluster.stats["twopc_commits"],
        "probe": {k: log[k]
                  for k in ("stale_reads", "missing_rows", "probes")},
        "reshard": {k: log.get(k)
                    for k in ("reshard_started_at", "dual_write_at",
                              "flip_at", "flip_retries", "stats")},
    })
    return summary


# ---------------------------------------------------------------------------
# scenario C: per-group 2PC decisions replay identically
# ---------------------------------------------------------------------------

def run_equivalence() -> dict:
    cluster = build_sharded_cluster(shards=2, replicas=2, name="e29eq")
    _create_kv(cluster)
    cluster.register_table("kv", "k", HashSharder(2))
    _seed_kv(cluster, EQ_KEYS)
    cluster.twopc.equivalence_log = []
    base_seq = {group.name: group.certifier.current_seq
                for group in cluster.groups}

    rng = random.Random(SEED)
    committed = aborted = statement_aborts = 0
    for _round in range(EQ_ROUNDS):
        sessions = [cluster.connect(database="shop") for _ in range(3)]
        plans = []
        for session in sessions:
            even = rng.randrange(0, EQ_KEYS, 2)
            odd = rng.randrange(1, EQ_KEYS, 2)
            plans.append((session, even, odd))
            session.execute("BEGIN")
        dead = set()
        for session, even, odd in plans:
            try:
                session.execute(f"UPDATE kv SET v = v + 1 WHERE k = {even}")
                session.execute(f"UPDATE kv SET v = v + 1 WHERE k = {odd}")
            except (LockConflict, SerializationError):
                session.rollback()
                dead.add(id(session))
                statement_aborts += 1
        for session, _, _ in plans:
            if id(session) in dead:
                continue
            try:
                session.execute("COMMIT")
                committed += 1
            except SerializationError:
                aborted += 1
        for session in sessions:
            session.close()

    decisions = cluster.twopc.equivalence_log
    # which coordinator transactions ultimately aborted (their prepares
    # were rescinded, which the replay must mirror)
    aborted_txns = {
        record.payload["txn"]
        for record in cluster.map_log.of_kind("2pc_decision")
        if record.payload["decision"] == "abort"
    }
    replayers = {}
    for group in cluster.groups:
        replay = Certifier()
        replay.import_log([], seq=base_seq[group.name])
        replayers[group.name] = replay
    violations = []
    for decision in decisions:
        replay = replayers[decision["shard"]]
        outcome = replay.certify(decision["start_seq"], decision["keys"])
        if outcome.ok != decision["ok"] or (
                outcome.ok and outcome.seq != decision["seq"]):
            violations.append(
                f"shard {decision['shard']} txn {decision['txn']}: live "
                f"(ok={decision['ok']}, seq={decision['seq']}) vs replay "
                f"(ok={outcome.ok}, seq={outcome.seq})")
        if outcome.ok and decision["txn"] in aborted_txns:
            replay.rescind(outcome.seq)
    return {
        "rounds": EQ_ROUNDS,
        "committed": committed,
        "aborted": aborted,
        "statement_aborts": statement_aborts,
        "decisions": len(decisions),
        "violations": violations,
        "rescinds": cluster.twopc.stats["rescinds"],
        "converged": cluster.check_convergence(),
    }


# ---------------------------------------------------------------------------
# the experiment
# ---------------------------------------------------------------------------

def test_e29_shard_tier(benchmark):
    def experiment():
        return {
            "scaleout": [run_scale_point(s) for s in SCALE_SHARDS],
            "live_split": run_live_split(),
            "equivalence": run_equivalence(),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    points = results["scaleout"]
    split = results["live_split"]
    equivalence = results["equivalence"]
    by_shards = {p["shards"]: p for p in points}
    scaleout = by_shards[4]["tps"] / by_shards[1]["tps"]

    report = Report(
        "E29  Horizontal shard tier (sections 2.2, 5.1)",
        ["scenario", "metric", "value", "note"])
    for point in points:
        report.add_row(
            "scaleout", f"write tps @ {point['shards']} shard(s)",
            round(point["tps"], 1),
            f"p99 {point['p99'] * 1000:.1f} ms")
    report.add_row("scaleout", "4-shard multiple",
                   f"{scaleout:.2f}x", f"floor {MIN_SCALEOUT}x")
    report.add_row("live_split", "acked update txns",
                   split["acked_update_txns"],
                   f"goodput {split['goodput_txns']}")
    report.add_row("live_split", "sum(v) after flip", split["sum_v"],
                   "zero acked-commit loss" if
                   split["sum_v"] == split["acked_update_txns"]
                   else "LOSS DETECTED")
    report.add_row("live_split", "stale probe reads",
                   split["probe"]["stale_reads"],
                   f"{split['probe']['probes']} probes")
    report.add_row("live_split", "p99 latency (s)",
                   round(split["p99_latency"], 4),
                   f"deadline {SPLIT_DEADLINE}s")
    report.add_row("live_split", "rows per group",
                   "/".join(str(n) for n in split["rows_per_group"]),
                   f"map v{split['map_version']}, "
                   f"{split['dual_writes']} dual writes")
    report.add_row("equivalence", "2PC prepare decisions",
                   equivalence["decisions"],
                   f"{equivalence['committed']} commit / "
                   f"{equivalence['aborted']} abort")
    report.add_row("equivalence", "replay violations",
                   len(equivalence["violations"]), "must be 0")
    report.show()

    # -- scenario A: shard-local writes scale out -----------------------
    assert scaleout >= MIN_SCALEOUT, \
        f"4-shard scaleout {scaleout:.2f}x under the {MIN_SCALEOUT}x floor"
    assert by_shards[2]["tps"] > by_shards[1]["tps"]
    # shard-local traffic must never have paid 2PC
    assert all(p["twopc_commits"] == 0 for p in points)

    # -- scenario B: the live split kept every promise ------------------
    # zero acked-commit loss: every acknowledged update is in the table
    assert split["sum_v"] == split["acked_update_txns"], \
        (f"acked {split['acked_update_txns']} updates but the table "
         f"sums to {split['sum_v']}")
    # zero stale reads of moved keys, and no probe ever missed a row
    assert split["probe"]["stale_reads"] == 0
    assert split["probe"]["missing_rows"] == 0
    assert split["probe"]["probes"] > 100
    # the split really happened under load and landed where it should
    assert split["map_version"] == 2
    assert split["rows"] == SPLIT_KEYS
    assert split["rows_per_group"] == [SPLIT_KEYS - SPLIT_BOUND - 1,
                                       SPLIT_BOUND + 1]
    assert split["reshard"]["stats"]["rows_copied"] == SPLIT_BOUND + 1
    assert split["dual_writes"] > 0, "no write ever hit the window"
    assert split["converged"]
    assert split["p99_latency"] <= SPLIT_DEADLINE

    # -- scenario C: zero equivalence violations ------------------------
    assert equivalence["violations"] == [], equivalence["violations"][:5]
    assert equivalence["decisions"] > 0
    assert equivalence["aborted"] > 0, \
        "the seeded mix never conflicted — raise the contention"
    assert equivalence["rescinds"] > 0
    assert equivalence["converged"]

    payload = {
        "experiment": "e29_shard_tier",
        "seed": SEED,
        "min_scaleout": MIN_SCALEOUT,
        "scaleout": {
            "points": points,
            "multiple_4v1": scaleout,
        },
        "live_split": split,
        "equivalence": {
            **{k: v for k, v in equivalence.items() if k != "violations"},
            "violations": len(equivalence["violations"]),
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info["scaleout_4v1"] = round(scaleout, 3)
    benchmark.extra_info["acked_commit_loss"] = (
        split["acked_update_txns"] - split["sum_v"])
    benchmark.extra_info["stale_reads"] = split["probe"]["stale_reads"]
    benchmark.extra_info["equivalence_violations"] = \
        len(equivalence["violations"])
