"""E08 — section 3.2 / Tashkent+ [13]: memory-aware load balancing.

Claim: transaction-level balancing that "exploits knowledge of the working
sets of transactions to allow in-main-memory execution at every replica"
improves throughput "more than 50% over previous techniques".

We run a multi-tenant workload whose aggregate working set exceeds one
replica's buffer pool but whose per-tenant sets fit.  A locality-blind
balancer spreads every tenant over every replica (all reads are cold); the
memory-aware policy partitions tenants across replicas (reads stay hot).
"""

from repro.bench import Report
from repro.core import LeastPendingPolicy, MemoryAwarePolicy, RoundRobinPolicy
from repro.core.loadbalancer import BalancingLevel
from repro.workloads import MultiTableWorkload

from common import ratio, run_closed_loop

COLD_PENALTY = 5.0       # a cold read costs 6x a hot one (disk vs memory)
TENANTS = 9
WORKING_SET = 4          # tables one replica keeps hot


def run_policy(policy) -> float:
    workload = MultiTableWorkload(tables=TENANTS, rows_per_table=50,
                                  read_fraction=0.9)
    middleware, metrics, _cluster, _env = run_closed_loop(
        replicas=3, replication="writeset", propagation="sync",
        consistency="gsi", workload=workload, clients=9, duration=2.5,
        cold_read_penalty=COLD_PENALTY, policy=policy,
        level=BalancingLevel.QUERY)
    for replica in middleware.replicas:
        replica.hot_tables._items.clear()
    return metrics.rate(2.5)


def test_e08_memory_aware_balancing(benchmark):
    def experiment():
        return {
            "round_robin": run_policy(RoundRobinPolicy()),
            "lprf": run_policy(LeastPendingPolicy()),
            "memory_aware": run_policy(MemoryAwarePolicy(
                working_set_capacity=WORKING_SET)),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report = Report(
        "E08  Memory-aware (Tashkent+-style) load balancing, "
        f"{TENANTS} tenants, working set {WORKING_SET} tables/replica",
        ["policy", "throughput (tps)"])
    for name, tps in results.items():
        report.add_row(name, tps)
    gain = ratio(results["memory_aware"], results["round_robin"])
    gain_vs_lprf = ratio(results["memory_aware"], results["lprf"])
    report.note(f"memory-aware vs round-robin: {gain:.2f}x, vs LPRF: "
                f"{gain_vs_lprf:.2f}x (paper reports >1.5x for Tashkent+ "
                "over locality-blind balancing)")
    report.show()

    # the paper's >50% claim (over the memory-oblivious baseline)
    assert gain > 1.5
    assert gain_vs_lprf > 1.2
    benchmark.extra_info["gain"] = round(gain, 2)
