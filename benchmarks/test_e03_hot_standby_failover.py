"""E03 — Figure 3 / section 2.2: hot-standby failover.

Claims reproduced:
* MTTR = detection (heartbeat interval x miss threshold) + promotion;
* 1-safe replication loses a bounded window of committed transactions,
  2-safe loses none;
* the ticket-broker 30s-vs-60s business cliff is a detector-tuning choice.
"""

from repro.bench import Report, TimedCluster, ClosedLoopDriver, build_cluster, load_workload
from repro.cluster import Environment, HeartbeatDetector, Network
from repro.core import FailoverManager, VirtualIP
from repro.metrics import AvailabilityTracker
from repro.workloads import MicroWorkload


CRASH_AT = 1.0
DURATION = 8.0


def run_failover(safety: str, interval: float, misses: int = 3) -> dict:
    env = Environment()
    # the standby is a slightly weaker machine (heterogeneity, 4.1.3),
    # and applies serially — so under 1-safe it trails the master
    middleware = build_cluster(
        2, replication="writeset",
        propagation="sync" if safety == "2-safe" else "async",
        consistency="rsi-pc", env=env, name=f"hs_{safety}",
        speed_factors=[1.0, 0.35])
    # Figure 3 topology: the application talks to the master; the standby
    # only applies the update stream (reads would go to the master too)
    workload = MicroWorkload(rows=100, read_fraction=0.0)
    load_workload(middleware, workload)
    from repro.core import CostModel
    # standby application is random-IO bound and the standby is weak:
    # the serial apply stream cannot match the master's commit rate
    cluster = TimedCluster(env, middleware,
                           cost_model=CostModel(writeset_apply=0.004))
    driver = ClosedLoopDriver(cluster, workload, clients=4)
    master, slave = middleware.replicas

    vip = VirtualIP("db", master.name)
    failover = FailoverManager(middleware, vip)
    network = Network(env)
    heartbeat = HeartbeatDetector(env, network, "mon", interval=interval,
                                  timeout=interval, miss_threshold=misses)
    heartbeat.watch(master.node)
    heartbeat.start()
    availability = AvailabilityTracker()
    outcome = {}

    def on_failure(name):
        report = failover.handle_replica_failure(
            name, discard_pending=(safety == "1-safe"))
        availability.service_up(env.now)
        outcome["detected_at"] = env.now
        outcome["lost"] = report.lost_transactions
        outcome["new_master"] = report.new_master

    heartbeat.on_failure(on_failure)

    def fault():
        yield env.timeout(CRASH_AT)
        availability.service_down(env.now)
        master.node.crash()
        master.engine.crash()
        if safety == "1-safe":
            # master-driven log shipping: the pipeline dies with the
            # master — whatever the slave had not applied is gone NOW
            outcome["window_at_crash"] = slave.lag_items
            slave.apply_queue.clear()

    env.process(fault(), name="fault")
    driver.start(duration=DURATION)
    env.run(until=DURATION)
    cluster.stop()
    heartbeat.stop()
    availability.finish(DURATION)
    summary = availability.summary()
    return {
        "safety": safety,
        "detection_s": outcome.get("detected_at", DURATION) - CRASH_AT,
        "mttr_s": summary["mttr"],
        "lost_txns": outcome.get("lost", -1),
        "availability": summary["availability"],
        "completed": driver.metrics.throughput.completed,
        "failures": driver.metrics.throughput.failed,
    }


def test_e03_hot_standby_failover(benchmark):
    def experiment():
        return {
            "1-safe": run_failover("1-safe", interval=0.5),
            "2-safe": run_failover("2-safe", interval=0.5),
            "slow-detector": run_failover("1-safe", interval=2.0, misses=3),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report = Report(
        "E03  Hot standby failover (Fig. 3): detection, MTTR, loss window",
        ["config", "detection (s)", "MTTR (s)", "lost committed txns",
         "availability", "txns ok", "txns failed"])
    for key, row in results.items():
        report.add_row(key, row["detection_s"], row["mttr_s"],
                       row["lost_txns"], row["availability"],
                       row["completed"], row["failures"])
    report.note("1-safe commits at the master only: the unshipped window "
                "dies with it; 2-safe ships before acking (section 2.2)")
    report.show()

    fast, safe, slow = (results["1-safe"], results["2-safe"],
                        results["slow-detector"])
    # detection latency is governed by the heartbeat settings
    assert 1.0 <= fast["detection_s"] <= 3.5      # 0.5s x 3 misses (+jitter)
    assert slow["detection_s"] > fast["detection_s"] * 2
    # the loss-window claim
    assert fast["lost_txns"] > 0
    assert safe["lost_txns"] == 0
    # service resumed: work completed after the outage
    assert fast["completed"] > 0
    benchmark.extra_info["detection_1safe_s"] = round(fast["detection_s"], 2)
    benchmark.extra_info["lost_1safe"] = fast["lost_txns"]
