"""E12 — section 4.4.2: adding/resynchronizing replicas.

Claims:
* full-stop (MySQL-cluster-style) sync = total outage; donor-based
  (m/cluster-style) = capacity loss, or total outage with one replica
  left; recovery-log (Sequoia-style) = neither;
* "replaying the recovery log ... requires the extraction of parallelism
  ... to prevent reapplying updates serially, in which case a new replica
  may never catch up if the workload is update-heavy."
"""

from repro.bench import Report, build_cluster, load_workload
from repro.core import ClusterManager, CostModel, Replica
from repro.sqlengine import Engine, postgresql
from repro.workloads import MicroWorkload



def fresh_replica(name="new"):
    return Replica(name, Engine(name, dialect=postgresql(), seed=5))


def run_strategies() -> dict:
    outcomes = {}
    for strategy in ("full_stop", "donor", "recovery_log"):
        middleware = build_cluster(3, replication="writeset",
                                   propagation="sync", consistency="gsi")
        workload = MicroWorkload(rows=300, read_fraction=0.5)
        load_workload(middleware, workload)
        # some post-setup traffic so the recovery log has a tail
        session = middleware.connect(database="shop")
        for key in range(40):
            session.execute(f"UPDATE kv SET v = 1 WHERE k = {key}")
        session.close()
        manager = ClusterManager(middleware)
        report = manager.add_replica(fresh_replica(f"new_{strategy}"),
                                     strategy=strategy)
        outcomes[strategy] = {
            "write_outage": report.write_outage,
            "donor_offline": report.donor_offline is not None,
            "rows_transferred": report.rows_transferred,
            "entries_replayed": report.entries_replayed,
            "converged": middleware.check_convergence(),
        }
    return outcomes


def catch_up_analysis(cost: CostModel = None) -> dict:
    """Serial vs parallel replay feasibility: a recovering replica catches
    up only when its apply rate exceeds the cluster's update rate."""
    cost = cost or CostModel(writeset_apply=0.002)
    serial_rate = 1.0 / cost.writeset_apply            # entries/s
    update_rates = [200, 400, 800, 1600]
    rows = []
    for update_rate in update_rates:
        # parallel apply overlaps the IO-bound fraction across 8 appliers
        io = cost.apply_io_fraction
        parallel_cost = cost.writeset_apply * (1 - io) \
            + cost.writeset_apply * io / 8
        parallel_rate = 1.0 / parallel_cost
        rows.append({
            "update_rate": update_rate,
            "serial_feasible": serial_rate > update_rate,
            "parallel_feasible": parallel_rate > update_rate,
            "serial_rate": serial_rate,
            "parallel_rate": parallel_rate,
        })
    return {"rows": rows, "serial_rate": serial_rate}


def test_e12_replica_add_and_resync(benchmark):
    def experiment():
        return run_strategies(), catch_up_analysis()

    strategies, catchup = benchmark.pedantic(experiment, rounds=1,
                                             iterations=1)

    report = Report(
        "E12  Add-replica strategies (section 4.4.2)",
        ["strategy", "total write outage", "donor offline",
         "rows copied", "log entries replayed", "converged"])
    for name, row in strategies.items():
        report.add_row(name, row["write_outage"], row["donor_offline"],
                       row["rows_transferred"], row["entries_replayed"],
                       row["converged"])
    report.show()

    catch = Report(
        "E12b Catch-up feasibility: serial vs 8-way parallel replay",
        ["cluster update rate (tps)", "serial applier keeps up",
         "parallel applier keeps up"])
    for row in catchup["rows"]:
        catch.add_row(row["update_rate"], row["serial_feasible"],
                      row["parallel_feasible"])
    catch.note("'a new replica may never catch up if the workload is "
               "update-heavy' — unless replay extracts parallelism")
    catch.show()

    # strategy cost ordering, as the paper describes
    assert strategies["full_stop"]["write_outage"]
    assert not strategies["donor"]["write_outage"]
    assert strategies["donor"]["donor_offline"]
    assert not strategies["recovery_log"]["write_outage"]
    assert not strategies["recovery_log"]["donor_offline"]
    assert all(row["converged"] for row in strategies.values())
    # the catch-up cliff: at high update rates only parallel replay works
    high = catchup["rows"][-1]
    assert not high["serial_feasible"] and high["parallel_feasible"]
