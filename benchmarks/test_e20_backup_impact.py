"""E20 — section 4.4.1: backup impact on a replicated cluster.

Claims:
* hot backup degrades performance while it runs ("database performance is
  typically degraded during backup" — the donor slows down);
* cold backup costs a replica of capacity and the donor must replay what
  it missed ("the backup time is not only the time it takes for the data
  to be dumped, but also the time needed to resynchronize the replica");
* the middleware checkpoint makes restore + replay exact.
"""

from repro.bench import ClosedLoopDriver, Report, TimedCluster, build_cluster, load_workload
from repro.cluster import Environment
from repro.core import BackupCoordinator
from repro.workloads import MicroWorkload

DURATION = 6.0
BACKUP_START = 2.0
BACKUP_WINDOW = 2.0


def run_scenario(mode: str) -> dict:
    """mode: 'none' | 'hot' | 'cold'."""
    env = Environment()
    middleware = build_cluster(3, replication="writeset",
                               propagation="async", consistency="gsi",
                               env=env)
    workload = MicroWorkload(rows=300, read_fraction=0.8)
    load_workload(middleware, workload)
    cluster = TimedCluster(env, middleware, apply_parallelism=4)
    driver = ClosedLoopDriver(cluster, workload, clients=9)
    coordinator = BackupCoordinator(middleware)
    samples = {"before": [], "during": [], "after": []}
    outcome = {"resync_entries": 0}

    def backup():
        if mode == "none":
            return
            yield  # pragma: no cover
        yield env.timeout(BACKUP_START)
        donor = middleware.replicas[0]
        if mode == "hot":
            # redo-log amplification: the donor runs slower while dumping
            donor.node.degrade_disk(3.0)
            backup_obj = coordinator.hot_backup(donor.name)
            yield env.timeout(BACKUP_WINDOW)
            donor.node.disk_factor = 1.0
        else:
            backup_obj = coordinator.cold_backup(donor.name)
            yield env.timeout(BACKUP_WINDOW)
            outcome["resync_entries"] = coordinator.resume_offline_donor(
                backup_obj)
        outcome["backup_rows"] = backup_obj.dump.size_rows()

    env.process(backup(), name="backup")

    def sampler():
        last = 0
        while env.now < DURATION:
            yield env.timeout(0.5)
            done = driver.metrics.throughput.completed
            rate = (done - last) * 2.0
            last = done
            if env.now <= BACKUP_START:
                samples["before"].append(rate)
            elif env.now <= BACKUP_START + BACKUP_WINDOW:
                samples["during"].append(rate)
            else:
                samples["after"].append(rate)

    env.process(sampler(), name="sampler")
    driver.start(duration=DURATION)
    env.run(until=DURATION)
    cluster.stop()
    middleware.pump()

    def mean(values):
        return sum(values) / len(values) if values else 0.0

    return {
        "before_tps": mean(samples["before"]),
        "during_tps": mean(samples["during"]),
        "after_tps": mean(samples["after"]),
        "resync_entries": outcome.get("resync_entries", 0),
        "converged": middleware.check_convergence(online_only=False),
    }


def test_e20_backup_impact(benchmark):
    def experiment():
        return {
            "no backup": run_scenario("none"),
            "hot backup": run_scenario("hot"),
            "cold backup": run_scenario("cold"),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report = Report(
        "E20  Backup impact on cluster throughput (section 4.4.1)",
        ["scenario", "tps before", "tps during backup", "tps after",
         "donor resync entries", "converged"])
    for name, row in results.items():
        report.add_row(name, row["before_tps"], row["during_tps"],
                       row["after_tps"], row["resync_entries"],
                       row["converged"])
    report.note("hot backup: donor slows (redo amplification); "
                "cold backup: capacity loss + resynchronization debt")
    report.show()

    baseline = results["no backup"]
    hot, cold = results["hot backup"], results["cold backup"]
    # throughput dips during either backup relative to no-backup
    assert hot["during_tps"] < baseline["during_tps"] * 0.95
    assert cold["during_tps"] < baseline["during_tps"] * 0.95
    # the cold donor missed updates and had to replay them
    assert cold["resync_entries"] > 0
    # everything converges afterwards
    assert all(row["converged"] for row in results.values())
    benchmark.extra_info["hot_dip"] = round(
        1 - hot["during_tps"] / max(1e-9, baseline["during_tps"]), 3)
