"""E17 — section 4.3.4.3: network partitions, quorums and split brain.

Claims:
* a replicated database must favour C and A over P: the quorum side keeps
  serving, the minority side refuses updates ("the system must shut down
  and make the customer unhappy");
* without quorum enforcement, "updating each partition independently
  leads to replica divergence" and reconciliation "remains largely
  manual" (ETL-style tooling [7]).
"""

from repro.bench import Report
from repro.core import (
    MiddlewareConfig, QuorumGuard, QuorumLost, Reconciler, Replica,
    ReplicationMiddleware,
)
from repro.sqlengine import Engine, postgresql


def make_side(names):
    """One partition side: its own middleware over its replicas (after a
    split, each side believes it owns the cluster)."""
    replicas = []
    for name in names:
        engine = Engine(name, dialect=postgresql(), seed=11)
        engine.create_database("shop")
        c = engine.connect(database="shop")
        c.execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)")
        for account in range(5):
            c.execute(f"INSERT INTO accounts VALUES ({account}, 100)")
        c.close()
        replicas.append(Replica(name, engine))
    return ReplicationMiddleware(
        replicas, MiddlewareConfig(replication="statement"),
        name="+".join(names))


def run_quorum_scenario() -> dict:
    middleware = make_side(["a", "b", "c"])
    guard = QuorumGuard(middleware)
    # partition: {a, b} | {c}
    majority_reachable = ["a", "b"]
    minority_reachable = ["c"]

    guard.set_reachable(majority_reachable)
    majority_ok = True
    try:
        guard.check_write_allowed()
        session = middleware.connect(database="shop")
        session.execute("UPDATE accounts SET balance = 150 WHERE id = 0")
        session.close()
    except QuorumLost:
        majority_ok = False

    guard.set_reachable(minority_reachable)
    minority_refused = False
    try:
        guard.check_write_allowed()
    except QuorumLost:
        minority_refused = True
    return {
        "majority_serves": majority_ok,
        "minority_refused": minority_refused,
        "refused_writes": guard.refused_writes,
    }


def run_split_brain() -> dict:
    # no quorum enforcement: both sides accept writes independently
    side_a = make_side(["a1", "a2"])
    side_b = make_side(["b1"])
    session_a = side_a.connect(database="shop")
    session_b = side_b.connect(database="shop")
    session_a.execute("UPDATE accounts SET balance = 10 WHERE id = 0")
    session_a.execute("INSERT INTO accounts VALUES (100, 1)")
    session_b.execute("UPDATE accounts SET balance = 99 WHERE id = 0")
    session_b.execute("INSERT INTO accounts VALUES (200, 2)")
    session_a.close()
    session_b.close()

    reconciler = Reconciler()
    engine_a = side_a.replicas[0].engine
    engine_b = side_b.replicas[0].engine
    before = reconciler.compare(engine_a, engine_b)
    divergence = {
        "conflicts": before.count("conflict"),
        "only_left": before.count("only_left"),
        "only_right": before.count("only_right"),
    }
    # heal: operator picks a policy (application-dependent, manual)
    reconciler.merge(engine_a, engine_b, policy="prefer_left")
    after = reconciler.compare(engine_a, engine_b)
    divergence["resolved"] = not after.divergent
    return divergence


def test_e17_partitions_and_split_brain(benchmark):
    def experiment():
        return run_quorum_scenario(), run_split_brain()

    quorum, split = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report = Report(
        "E17  Partitions: quorum behaviour and split-brain divergence "
        "(section 4.3.4.3)",
        ["scenario", "outcome"])
    report.add_row("majority side keeps serving", quorum["majority_serves"])
    report.add_row("minority side refuses writes (unhappy customer)",
                   quorum["minority_refused"])
    report.add_row("split-brain: conflicting rows",
                   split["conflicts"])
    report.add_row("split-brain: rows only on side A", split["only_left"])
    report.add_row("split-brain: rows only on side B", split["only_right"])
    report.add_row("reconciliation (prefer_left) converged",
                   split["resolved"])
    report.show()

    assert quorum["majority_serves"]
    assert quorum["minority_refused"]
    assert split["conflicts"] == 1           # balance of account 0
    assert split["only_left"] == 1 and split["only_right"] == 1
    assert split["resolved"]
