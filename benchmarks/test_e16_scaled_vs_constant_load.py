"""E16 — section 3.4: scaled-load evaluation hides middleware overhead.

Claim: "Scalability measurements almost always use a scaled load to find
the best achievable performance ... This usually hides the system overhead
at low or constant load.  As most production systems operate at less than
50% load, it would be interesting to know how the proposed prototypes
perform when under-loaded."

We measure the same clusters two ways: the flattering scaled-load curve
(clients grow with replicas) and the honest constant-low-load view (one
lightly-loaded client), where adding replicas only adds write latency.
"""

from repro.bench import Report
from repro.workloads import MicroWorkload

from common import ratio, run_closed_loop

SIZES = [1, 2, 4]


def scaled_load(replicas: int) -> float:
    workload = MicroWorkload(rows=200, read_fraction=0.9)
    _mw, metrics, _c, _e = run_closed_loop(
        replicas=replicas, replication="statement", propagation="sync",
        consistency=None, workload=workload,
        clients=6 * replicas, duration=2.0)
    return metrics.rate(2.0)


def constant_low_load(replicas: int) -> dict:
    workload = MicroWorkload(rows=200, read_fraction=0.5)
    _mw, metrics, _c, _e = run_closed_loop(
        replicas=replicas, replication="statement", propagation="sync",
        consistency=None, workload=workload,
        clients=1, duration=2.0, think_time=0.01)   # far below capacity
    return {
        "write_p50_ms": metrics.write_latency.percentile(50) * 1000,
        "throughput": metrics.rate(2.0),
    }


def test_e16_scaled_vs_constant_load(benchmark):
    def experiment():
        return (
            {n: scaled_load(n) for n in SIZES},
            {n: constant_low_load(n) for n in SIZES},
        )

    scaled, constant = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report = Report(
        "E16  Scaled load vs constant low load (section 3.4)",
        ["replicas", "scaled-load tps (flattering)",
         "low-load write p50 ms (honest)", "low-load tps"])
    for n in SIZES:
        report.add_row(n, scaled[n], constant[n]["write_p50_ms"],
                       constant[n]["throughput"])
    scale_gain = ratio(scaled[4], scaled[1])
    latency_growth = ratio(constant[4]["write_p50_ms"],
                           constant[1]["write_p50_ms"])
    report.note(f"scaled load shows {scale_gain:.2f}x 'scalability' while "
                f"the under-loaded client sees writes get "
                f"{latency_growth:.2f}x slower")
    report.show()

    # the scaled curve looks great (read-heavy workload scales)
    assert scale_gain > 2.0
    # ...while the constant-load client's write latency strictly grows
    # with cluster size and its throughput does NOT improve
    assert (constant[4]["write_p50_ms"]
            > constant[2]["write_p50_ms"]
            > constant[1]["write_p50_ms"])
    assert constant[4]["throughput"] <= constant[1]["throughput"] * 1.05
    benchmark.extra_info["scaled_gain"] = round(scale_gain, 2)
    benchmark.extra_info["lowload_latency_growth"] = round(latency_growth, 2)
