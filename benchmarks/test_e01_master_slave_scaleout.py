"""E01 — Figure 1 / section 2.1: master-slave read scale-out.

Claim: "As long as the master node can handle all updates, the system can
scale linearly by merely adding more slave nodes" for a read-mostly
workload.  We run the RSI-PC (primary-copy) configuration with 1, 2, 4 and
8 satellites under a 95%-read workload with load scaled to the replica
count, and check that read throughput grows with the slave count while the
single master absorbs the writes.
"""

from repro.bench import Report
from repro.workloads import TicketBrokerWorkload

from common import ratio, run_closed_loop


def run_point(slaves: int) -> dict:
    workload = TicketBrokerWorkload(offers=100, agencies=20,
                                    read_fraction=0.95)
    middleware, metrics, _cluster, _env = run_closed_loop(
        replicas=1 + slaves, replication="writeset", propagation="async",
        consistency="rsi-pc", workload=workload,
        clients=4 * (1 + slaves),        # scaled load (section 3.4 style)
        duration=3.0, apply_parallelism=4)
    reads_by_satellite = [
        r.stats["served_reads"] for r in middleware.replicas
        if r.name != middleware.master.name
    ]
    return {
        "throughput": metrics.rate(3.0),
        "read_p95_ms": metrics.read_latency.percentile(95) * 1000,
        "master_writes": middleware.master.stats["served_writes"],
        "satellite_reads": sum(reads_by_satellite),
    }


def test_e01_master_slave_read_scaleout(benchmark):
    slave_counts = [1, 2, 4, 8]
    results = benchmark.pedantic(
        lambda: {n: run_point(n) for n in slave_counts},
        rounds=1, iterations=1)

    report = Report(
        "E01  Master-slave read scale-out (Fig. 1, 95% reads, scaled load)",
        ["slaves", "throughput (tps)", "read p95 (ms)", "master writes",
         "satellite reads"])
    for n in slave_counts:
        row = results[n]
        report.add_row(n, row["throughput"], row["read_p95_ms"],
                       row["master_writes"], row["satellite_reads"])
    gain = ratio(results[8]["throughput"], results[1]["throughput"])
    report.note(f"throughput gain 1->8 slaves: {gain:.2f}x "
                "(paper: ~linear while the master keeps up)")
    report.show()

    # shape assertions: throughput grows with slaves, substantially
    assert results[2]["throughput"] > results[1]["throughput"] * 1.2
    assert results[4]["throughput"] > results[2]["throughput"] * 1.2
    assert gain > 2.5
    # all writes stayed on the master
    for n in slave_counts:
        assert results[n]["master_writes"] > 0
    benchmark.extra_info["gain_1_to_8"] = round(gain, 2)
