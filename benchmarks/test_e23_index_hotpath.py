"""E23 — §3.4/§5: the index-backed execution hot path.

The paper's critique of middleware evaluations is that they measure toy
workloads at peak throughput, where any O(n) cost hides inside the noise.
Before this experiment, every equality lookup, uniqueness check and
writeset apply in this engine was a full table scan — so the scale-out
numbers of E01/E06/E10 partly measured scan cost, not replication cost.
E23 pins the fix: with maintained hash indexes and predicate pushdown,
point lookups, update-heavy traffic and replica-side writeset apply touch
O(1) rows per operation while the sequential baseline touches O(n).

Three microbenchmarks, each run index-backed and scan-baseline at two
table sizes:

* **point-lookup** — ``SELECT ... WHERE pk = ?``;
* **update-heavy** — ``UPDATE ... WHERE pk = ?`` (autocommit, the E06
  multi-master per-statement shape);
* **writeset-apply** — :func:`repro.core.writesets.apply_writeset` of
  binlog-captured UPDATE entries at a replica (the hot path every
  replica pays for every committed transaction in the cluster).

Results land in ``BENCH_e23.json`` (ops/sec and rows-scanned-per-op) for
regression tracking; the assertions pin only the deterministic
rows-scanned shape, never wall-clock time.
"""

import json
import random
import time
from pathlib import Path

from repro.bench import Report
from repro.core.writesets import apply_writeset
from repro.sqlengine import Engine

SIZES = (1_000, 10_000)
OPS = 300
SEED = 23
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_e23.json"

# "index-backed point lookups scan O(1)-O(log n) rows per op": with short
# version chains a probe should touch a handful of versions at most.
MAX_INDEXED_ROWS_PER_OP = 4.0


def build_engine(rows: int, use_indexes: bool) -> Engine:
    engine = Engine(f"e23_{rows}_{int(use_indexes)}")
    engine.use_indexes = use_indexes
    engine.create_database("shop")
    conn = engine.connect(database="shop")
    conn.execute(
        "CREATE TABLE items (id INT PRIMARY KEY AUTO_INCREMENT, "
        "sku VARCHAR NOT NULL, qty INT)")
    for i in range(rows):
        conn.execute("INSERT INTO items (sku, qty) VALUES (?, ?)",
                     [f"sku{i}", i])
    conn.close()
    return engine


def _measure(engine: Engine, op, count: int):
    """Run ``op`` ``count`` times; return (ops/sec, rows scanned per op)."""
    before = engine.stats["rows_scanned"]
    start = time.perf_counter()
    for index in range(count):
        op(index)
    elapsed = time.perf_counter() - start
    scanned = engine.stats["rows_scanned"] - before
    return count / elapsed if elapsed > 0 else float("inf"), scanned / count


def run_point_lookup(rows: int, use_indexes: bool):
    engine = build_engine(rows, use_indexes)
    conn = engine.connect(database="shop")
    rng = random.Random(SEED)
    ids = [rng.randrange(1, rows + 1) for _ in range(OPS)]

    def op(index):
        result = conn.execute("SELECT qty FROM items WHERE id = ?",
                              [ids[index]])
        assert result.rows, "point lookup missed an existing row"

    return _measure(engine, op, OPS)


def run_update_heavy(rows: int, use_indexes: bool):
    engine = build_engine(rows, use_indexes)
    conn = engine.connect(database="shop")
    rng = random.Random(SEED + 1)
    ids = [rng.randrange(1, rows + 1) for _ in range(OPS)]

    def op(index):
        result = conn.execute(
            "UPDATE items SET qty = qty + 1 WHERE id = ?", [ids[index]])
        assert result.rowcount == 1

    return _measure(engine, op, OPS)


def run_writeset_apply(rows: int, use_indexes: bool):
    # Capture real writesets from a master, then measure replica-side apply.
    master = build_engine(rows, True)
    conn = master.connect(database="shop")
    rng = random.Random(SEED + 2)
    head = master.binlog.head_sequence
    for i in range(OPS):
        conn.execute("UPDATE items SET qty = ? WHERE id = ?",
                     [1000 + i, rng.randrange(1, rows + 1)])
    entries = [
        entry
        for record in master.binlog.records if record.sequence > head
        for entry in record.writeset
    ]
    assert len(entries) == OPS

    replica = build_engine(rows, use_indexes)
    # apply_writeset probes the PK index directly; mimic the scan baseline
    # by hiding the index from the keyless fallback path.
    if not use_indexes:
        entries = [dict(entry, primary_key=None) for entry in entries]
    before = replica.stats["rows_scanned"]
    start = time.perf_counter()
    report = apply_writeset(replica, entries)
    elapsed = time.perf_counter() - start
    assert report.clean, f"replica diverged: {report.conflicts}"
    scanned = replica.stats["rows_scanned"] - before
    return (len(entries) / elapsed if elapsed > 0 else float("inf"),
            scanned / len(entries))


SCENARIOS = {
    "point_lookup": run_point_lookup,
    "update_heavy": run_update_heavy,
    "writeset_apply": run_writeset_apply,
}


def test_e23_index_hotpath(benchmark):
    def experiment():
        results = {}
        for scenario, runner in SCENARIOS.items():
            for rows in SIZES:
                for variant, use_indexes in (("indexed", True),
                                             ("scan", False)):
                    ops_per_sec, rows_per_op = runner(rows, use_indexes)
                    results[(scenario, rows, variant)] = {
                        "ops_per_sec": ops_per_sec,
                        "rows_scanned_per_op": rows_per_op,
                    }
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report = Report(
        "E23  Index-backed execution hot path (sections 3.4, 5)",
        ["scenario", "rows", "variant", "ops/sec", "rows scanned/op",
         "speedup"])
    for scenario in SCENARIOS:
        for rows in SIZES:
            indexed = results[(scenario, rows, "indexed")]
            scan = results[(scenario, rows, "scan")]
            for variant, metrics in (("indexed", indexed), ("scan", scan)):
                report.add_row(
                    scenario, rows, variant,
                    round(metrics["ops_per_sec"], 1),
                    round(metrics["rows_scanned_per_op"], 2),
                    round(indexed["ops_per_sec"] / scan["ops_per_sec"], 2)
                    if variant == "indexed" else "")
    report.note(f"{OPS} seeded operations per cell; rows-scanned is "
                "deterministic, ops/sec is wall-clock")
    report.show()

    for scenario in SCENARIOS:
        small, large = SIZES
        for rows in SIZES:
            indexed = results[(scenario, rows, "indexed")]
            scan = results[(scenario, rows, "scan")]
            # index-backed: O(1)-ish rows per op, independent of table size
            assert indexed["rows_scanned_per_op"] <= MAX_INDEXED_ROWS_PER_OP, \
                (f"{scenario}@{rows}: index path scans "
                 f"{indexed['rows_scanned_per_op']} rows/op — regressed "
                 "toward O(n)")
            # sequential baseline: O(n) rows per op
            assert scan["rows_scanned_per_op"] >= rows * 0.9, \
                f"{scenario}@{rows}: scan baseline unexpectedly cheap"
        growth = (results[(scenario, large, "indexed")]["rows_scanned_per_op"]
                  / max(results[(scenario, small, "indexed")]
                        ["rows_scanned_per_op"], 1e-9))
        assert growth <= 2.0, \
            f"{scenario}: indexed rows/op grew {growth:.1f}x with table size"

    payload = {
        "experiment": "e23_index_hotpath",
        "ops": OPS,
        "sizes": list(SIZES),
        "results": {
            f"{scenario}/{rows}/{variant}": metrics
            for (scenario, rows, variant), metrics in results.items()
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    large = SIZES[-1]
    for scenario in SCENARIOS:
        benchmark.extra_info[f"{scenario}_indexed_rows_per_op"] = \
            results[(scenario, large, "indexed")]["rows_scanned_per_op"]
        benchmark.extra_info[f"{scenario}_scan_rows_per_op"] = \
            results[(scenario, large, "scan")]["rows_scanned_per_op"]
