"""E14 — section 5.1's proposed evaluation methodology, executed.

"It is necessary to assess performance in the presence of failures, in
degraded modes, as well as under low loads ... researchers need new
benchmarks that are not necessarily closed-loop systems, that could
integrate fault injection" — with MTTF/MTTR and availability reported.

We run an open-loop (non-closed) load against a 3-replica cluster for a
long simulated window, inject crash/repair faults, failback recovered
replicas through the recovery log, and report exactly the metrics the
paper asks for.
"""

from repro.bench import OpenLoopDriver, Report, TimedCluster, build_cluster, load_workload
from repro.cluster import Environment
from repro.core import FailoverManager
from repro.metrics import AvailabilityTracker
from repro.workloads import MicroWorkload

DURATION = 60.0
FAULTS = [(10.0, 6.0), (30.0, 4.0)]      # (crash_at, repair_after)


def run_campaign() -> dict:
    env = Environment()
    middleware = build_cluster(3, replication="writeset",
                               propagation="async", consistency="gsi",
                               env=env)
    workload = MicroWorkload(rows=200, read_fraction=0.8)
    load_workload(middleware, workload)
    cluster = TimedCluster(env, middleware, apply_parallelism=4)
    driver = OpenLoopDriver(cluster, workload, rate_tps=300.0)
    failover = FailoverManager(middleware)
    # full-service availability: all replicas healthy
    tracker = AvailabilityTracker()
    window_rates = {}

    def fault(crash_at, repair_after, victim_index):
        def scenario():
            yield env.timeout(crash_at)
            victim = middleware.replicas[victim_index]
            tracker.service_down(env.now)   # degraded window opens
            victim.node.crash()
            victim.engine.crash()
            victim.mark_failed()
            yield env.timeout(repair_after)
            victim.node.recover()
            failover.failback(victim.name)
            tracker.service_up(env.now)
        return scenario

    for index, (crash_at, repair_after) in enumerate(FAULTS):
        env.process(fault(crash_at, repair_after, index % 3)(),
                    name=f"fault{index}")

    # sample throughput in healthy vs degraded windows
    samples = {"healthy": [], "degraded": []}

    def sampler():
        last_completed = 0
        while env.now < DURATION:
            yield env.timeout(1.0)
            done = driver.metrics.throughput.completed
            rate = done - last_completed
            last_completed = done
            degraded = any(not r.is_online for r in middleware.replicas)
            samples["degraded" if degraded else "healthy"].append(rate)

    env.process(sampler(), name="sampler")
    driver.start(duration=DURATION)
    env.run(until=DURATION)
    cluster.stop()
    tracker.finish(DURATION)
    summary = tracker.summary()
    return {
        "summary": summary,
        "healthy_tps": (sum(samples["healthy"]) / len(samples["healthy"])
                        if samples["healthy"] else 0),
        "degraded_tps": (sum(samples["degraded"]) / len(samples["degraded"])
                         if samples["degraded"] else 0),
        "failed_txns": driver.metrics.throughput.failed,
        "completed": driver.metrics.throughput.completed,
        "converged": middleware.check_convergence(online_only=False),
    }


def test_e14_availability_evaluation(benchmark):
    results = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
    summary = results["summary"]

    report = Report(
        "E14  The paper's evaluation agenda: open-loop load + fault "
        "injection (section 5.1)",
        ["metric", "value"])
    report.add_row("full-health availability", summary["availability"])
    report.add_row("nines", summary["nines"])
    report.add_row("MTTF (s)", summary["mttf"])
    report.add_row("MTTR (s)", summary["mttr"])
    report.add_row("outages", summary["outages"])
    report.add_row("throughput healthy (tps)", results["healthy_tps"])
    report.add_row("throughput degraded (tps)", results["degraded_tps"])
    report.add_row("failed transactions", results["failed_txns"])
    report.add_row("cluster converged after campaign",
                   results["converged"])
    report.show()

    assert summary["outages"] == len(FAULTS)
    assert summary["mttr"] == (sum(r for _c, r in FAULTS) / len(FAULTS))
    assert 0.7 < summary["availability"] < 1.0
    # the open-loop generator kept offering load during degradation, and
    # the surviving replicas carried it (degraded throughput > 0)
    assert results["degraded_tps"] > 0
    assert results["completed"] > 10000
    # failback restored byte-identical replicas
    assert results["converged"]
    benchmark.extra_info.update(
        {k: round(v, 3) if isinstance(v, float) else v
         for k, v in summary.items()})
