"""E15 — section 2.2: field failure rates and the sync challenge.

Claim: "on average, one fatal failure (software or hardware) occurs per
day per 200 processors" — we calibrate the Poisson fault injector to that
rate, verify it statistically, and show its consequence: the probability
that *every* replica of a cluster is healthy at once drops as the cluster
grows ("keeping replicas in sync can be challenging when failures are
frequent").
"""

from repro.bench import Report
from repro.cluster import (
    Environment, FaultInjector, Node, PAPER_FAILURES_PER_CPU_DAY,
    SECONDS_PER_DAY,
)


def measure_rate(nodes_count: int, days: float, seed: int = 3) -> dict:
    env = Environment()
    nodes = [Node(env, f"n{i}") for i in range(nodes_count)]
    injector = FaultInjector(env, seed=seed)
    injector.poisson_crashes(nodes, mean_repair_time=3600.0)
    env.run(until=days * SECONDS_PER_DAY)
    injector.stop()
    crashes = injector.count("crash")
    return {
        "crashes": crashes,
        "per_day_per_200": crashes / days / (nodes_count / 200.0),
    }


def all_healthy_fraction(cluster_size: int, days: float = 30.0,
                         seed: int = 7) -> float:
    env = Environment()
    nodes = [Node(env, f"n{i}") for i in range(cluster_size)]
    injector = FaultInjector(env, seed=seed)
    # a denser, more failure-prone environment (hosting-center reality)
    injector.poisson_crashes(nodes,
                             failures_per_node_day=0.05,
                             mean_repair_time=4 * 3600.0)
    healthy_time = [0.0]

    def sampler():
        step = 600.0
        while True:
            if all(node.up for node in nodes):
                healthy_time[0] += step
            yield env.timeout(step)

    env.process(sampler(), name="sampler")
    horizon = days * SECONDS_PER_DAY
    env.run(until=horizon)
    injector.stop()
    return healthy_time[0] / horizon


def test_e15_failure_rates(benchmark):
    def experiment():
        grid_rate = measure_rate(nodes_count=600, days=20.0)
        fractions = {n: all_healthy_fraction(n) for n in (2, 4, 8, 16)}
        return grid_rate, fractions

    grid_rate, fractions = benchmark.pedantic(experiment, rounds=1,
                                              iterations=1)

    report = Report(
        "E15  Field failure rates (section 2.2: 1 fatal failure/day/200 "
        "CPUs, measured on a 600-CPU grid)",
        ["metric", "value"])
    report.add_row("crashes in 20 days (600 nodes)", grid_rate["crashes"])
    report.add_row("failures/day/200 CPUs (measured)",
                   grid_rate["per_day_per_200"])
    report.add_row("failures/day/200 CPUs (paper)",
                   PAPER_FAILURES_PER_CPU_DAY * 200)
    report.show()

    healthy = Report(
        "E15b Fraction of time the WHOLE cluster is healthy "
        "(failure-dense environment)",
        ["cluster size", "all-replicas-healthy fraction"])
    for n, fraction in fractions.items():
        healthy.add_row(n, fraction)
    healthy.note("larger clusters are almost never fully healthy — "
                 "resynchronization becomes a steady-state activity")
    healthy.show()

    # calibration within statistical tolerance (~60 expected crashes)
    assert 0.5 < grid_rate["per_day_per_200"] < 1.6
    # monotone decay of the all-healthy fraction
    assert fractions[2] > fractions[8] > fractions[16]
    assert fractions[16] < 0.95
    benchmark.extra_info["measured_rate"] = round(
        grid_rate["per_day_per_200"], 3)
