"""E07 — section 2.2: hot-standby slave lag.

Claims:
* "the trailing updates are applied serially at the slave, whereas the
  master processes them in parallel" — under heavy update load the slave's
  lag grows without bound (customers report hours of catch-up);
* parallel apply bounds the lag;
* the field '"solution" is usually to slow down the master' — throttling
  (think time) keeps the serial slave synchronized.
"""

from repro.bench import ClosedLoopDriver, LagProbe, Report, TimedCluster, build_cluster, load_workload
from repro.cluster import Environment
from repro.core import CostModel
from repro.workloads import MicroWorkload

DURATION = 4.0


def run_point(apply_parallelism: int, think_time: float = 0.0) -> dict:
    env = Environment()
    middleware = build_cluster(
        2, replication="writeset", propagation="async",
        consistency="rsi-pc", env=env)
    workload = MicroWorkload(rows=200, read_fraction=0.0)
    load_workload(middleware, workload)
    # slave applies are random-IO bound: noticeably dearer than the
    # master's in-memory execution (the section 2.2 asymmetry)
    cluster = TimedCluster(env, middleware,
                           cost_model=CostModel(writeset_apply=0.004),
                           apply_parallelism=apply_parallelism)
    driver = ClosedLoopDriver(cluster, workload, clients=8,
                              think_time=think_time)
    probe = LagProbe(env, middleware, interval=0.25)
    driver.start(duration=DURATION)
    env.run(until=DURATION)
    cluster.stop()
    probe.stop()
    slave = middleware.replicas[1]
    series = probe.series[slave.name]
    half = len(series.points) // 2
    first_half = max((v for _t, v in series.points[:half]), default=0)
    second_half = max((v for _t, v in series.points[half:]), default=0)
    return {
        "max_lag": series.max(),
        "final_lag": series.last(),
        "growing": second_half > first_half * 1.3,
        "master_tps": driver.metrics.rate(DURATION),
    }


def test_e07_slave_lag_serial_vs_parallel(benchmark):
    def experiment():
        return {
            "serial": run_point(1),
            "parallel-8": run_point(8),
            "serial+throttled": run_point(1, think_time=0.035),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report = Report(
        "E07  Slave apply lag under heavy updates (section 2.2)",
        ["configuration", "max lag (txns)", "final lag", "lag growing?",
         "master tps"])
    for name, row in results.items():
        report.add_row(name, row["max_lag"], row["final_lag"],
                       row["growing"], row["master_tps"])
    report.note("the field fix — 'slow down the master' — trades "
                "throughput for a bounded window")
    report.show()

    serial = results["serial"]
    parallel = results["parallel-8"]
    throttled = results["serial+throttled"]
    # serial apply cannot keep up: lag keeps growing
    assert serial["growing"]
    assert serial["final_lag"] > parallel["final_lag"] * 3
    # parallel apply bounds the lag
    assert not parallel["growing"] or parallel["final_lag"] < serial["final_lag"] / 3
    # throttling the master bounds the lag at a throughput cost
    assert throttled["final_lag"] < serial["final_lag"] / 2
    assert throttled["master_tps"] < serial["master_tps"]
    benchmark.extra_info["serial_final_lag"] = serial["final_lag"]
    benchmark.extra_info["parallel_final_lag"] = parallel["final_lag"]
