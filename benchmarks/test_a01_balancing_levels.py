"""A01 (ablation) — section 3.2: load-balancing granularity.

Claim: connection-level balancing "is simple, but offers poor balancing
when clients use connection pools or persistent connections" — one
long-lived connection pins all its traffic to one replica, while
transaction- and query-level balancing spread it.

Setup: few persistent client connections (a connection pool's worth),
read-heavy load, more replicas than connections — exactly the situation
where connection stickiness strands capacity.
"""

from repro.bench import Report
from repro.core import RoundRobinPolicy
from repro.core.loadbalancer import BalancingLevel
from repro.workloads import MicroWorkload

from common import run_closed_loop

CLIENTS = 2          # a small persistent pool
REPLICAS = 4         # more capacity than connections


def run_level(level: BalancingLevel) -> dict:
    workload = MicroWorkload(rows=150, read_fraction=1.0)
    middleware, metrics, _cluster, _env = run_closed_loop(
        replicas=REPLICAS, replication="statement", propagation="sync",
        consistency=None, workload=workload, clients=CLIENTS,
        duration=2.0, policy=RoundRobinPolicy(), level=level)
    served = [r.stats["served_reads"] for r in middleware.replicas]
    used = sum(1 for count in served if count > 0)
    return {
        "throughput": metrics.rate(2.0),
        "replicas_used": used,
        "spread": served,
    }


def test_a01_balancing_levels(benchmark):
    def experiment():
        return {
            "connection": run_level(BalancingLevel.CONNECTION),
            "transaction": run_level(BalancingLevel.TRANSACTION),
            "query": run_level(BalancingLevel.QUERY),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report = Report(
        "A01  Balancing granularity with persistent connections "
        "(section 3.2 ablation)",
        ["level", "throughput (tps)", "replicas actually used"])
    for name, row in results.items():
        report.add_row(name, row["throughput"], row["replicas_used"])
    report.note(f"{CLIENTS} pooled connections over {REPLICAS} replicas: "
                "connection-level stickiness strands capacity")
    report.show()

    connection = results["connection"]
    query = results["query"]
    # connection-level pins each client to one replica
    assert connection["replicas_used"] <= CLIENTS
    # finer granularity reaches every replica
    assert query["replicas_used"] == REPLICAS
    # each autocommit statement is its own transaction, so transaction-
    # level balancing also reaches every replica here
    assert results["transaction"]["replicas_used"] == REPLICAS
    benchmark.extra_info["connection_replicas"] = connection["replicas_used"]
