"""E13 — section 4.4.5: latency overhead at low load.

Claims:
* "when faced with workloads that have little parallelism, replicated
  databases usually perform poorly when load is low" — a single-client
  sequential batch runs much slower through the middleware than against a
  single database;
* "OLTP-style sub-millisecond queries suffer the most from latency
  overheads ... more so than heavyweight queries that take seconds".
"""

from repro.bench import ClosedLoopDriver, Report, TimedCluster, build_cluster, load_workload
from repro.cluster import Environment
from repro.core import CostModel
from repro.workloads import SequentialBatchWorkload, TxnSpec, Workload

from common import ratio

DURATION = 2.0


class HeavyQueryWorkload(Workload):
    """Analytical scans — seconds-per-query class (here: 40ms)."""

    name = "heavy"

    def setup_sql(self):
        statements = ["CREATE TABLE big (k INT PRIMARY KEY, v INT)"]
        statements += [f"INSERT INTO big VALUES ({k}, {k})"
                       for k in range(50)]
        return statements

    def read_fraction_estimate(self):
        return 1.0

    def next_transaction(self, rng):
        sql = "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM big"
        return TxnSpec([(sql, [])], True, ["big"], kind="scan")


def run_config(replicas: int, workload, direct: bool = False,
               cost: CostModel = None) -> float:
    """Mean per-statement latency (ms) for ONE sequential client."""
    cost = cost or CostModel()
    env = Environment()
    if direct:
        # "single database": same statement costs, but no middleware hop,
        # no ordering round, no per-statement middleware processing
        import copy
        cost = copy.copy(cost)
        cost.middleware_overhead = 0.0
        cost.interception_overhead = 0.0
        middleware = build_cluster(1, replication="statement", env=env)
        cluster = TimedCluster(env, middleware, cost_model=cost,
                               client_latency=0.0001, ordering_delay=0.0)
    else:
        middleware = build_cluster(replicas, replication="statement",
                                   env=env)
        cluster = TimedCluster(env, middleware, cost_model=cost)
    load_workload(middleware, workload)
    driver = ClosedLoopDriver(cluster, workload, clients=1)
    driver.start(duration=DURATION)
    env.run(until=DURATION)
    cluster.stop()
    return driver.metrics.latency.mean() * 1000


def test_e13_low_load_latency_overhead(benchmark):
    heavy_cost = CostModel(scan_read=0.040)

    def experiment():
        batch = lambda: SequentialBatchWorkload(rows=100)
        return {
            "batch_direct": run_config(1, batch(), direct=True),
            "batch_1replica": run_config(1, batch()),
            "batch_3replicas": run_config(3, batch()),
            "heavy_direct": run_config(1, HeavyQueryWorkload(),
                                       direct=True, cost=heavy_cost),
            "heavy_3replicas": run_config(3, HeavyQueryWorkload(),
                                          cost=heavy_cost),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    batch_overhead = ratio(results["batch_3replicas"],
                           results["batch_direct"])
    heavy_overhead = ratio(results["heavy_3replicas"],
                           results["heavy_direct"])

    report = Report(
        "E13  Low-load latency: sequential batch through the middleware "
        "(section 4.4.5)",
        ["configuration", "mean statement latency (ms)"])
    report.add_row("single DB, direct (batch updates)",
                   results["batch_direct"])
    report.add_row("middleware, 1 replica (batch updates)",
                   results["batch_1replica"])
    report.add_row("middleware, 3 replicas (batch updates)",
                   results["batch_3replicas"])
    report.add_row("single DB, direct (40ms scans)",
                   results["heavy_direct"])
    report.add_row("middleware, 3 replicas (40ms scans)",
                   results["heavy_3replicas"])
    report.note(f"relative overhead: {batch_overhead:.2f}x on sub-ms "
                f"updates vs {heavy_overhead:.2f}x on heavy scans")
    report.show()

    # the batch script runs much slower replicated than direct
    assert batch_overhead > 1.3
    assert results["batch_3replicas"] > results["batch_1replica"]
    # sub-millisecond statements suffer relatively more than heavy ones
    assert batch_overhead > heavy_overhead * 1.2
    benchmark.extra_info["batch_overhead"] = round(batch_overhead, 2)
    benchmark.extra_info["heavy_overhead"] = round(heavy_overhead, 2)
