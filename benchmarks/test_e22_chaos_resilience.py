"""E22 — section 5.1: end-to-end request resilience under randomized
chaos.

The paper's evaluation agenda asks for benchmarks that "integrate fault
injection" and measure "performance in the presence of failures,
performance of degraded modes".  E22 drives the same seeded fault
schedule (node crashes with repair, flapping nodes) against the same
cluster twice — once bare, once with the resilience layer (deadlines,
safe retries, per-replica circuit breakers, admission control) — under
identical open-loop Poisson load.

Claims regenerated:
* resilient middleware achieves **strictly higher goodput** and a
  **strictly lower client-visible error rate** than the bare middleware
  under the identical fault schedule, for every seed;
* under 2-safe (synchronous) propagation **no acknowledged commit is
  ever lost**, with or without resilience (section 2.2: the 1-safe loss
  window is a propagation property, not a retry property);
* all chaos invariants hold: replicas converge (no divergence) and
  every request resolves within its deadline + ε.
"""

from repro.bench import Report
from repro.bench.chaos import (
    ChaosConfig, default_resilience_policy, run_chaos,
)

SEEDS = (1, 2, 5)
DURATION = 30.0
RATE_TPS = 30.0
N_FAULTS = 5


def run_pair(seed: int):
    base = run_chaos(ChaosConfig(
        seed=seed, duration=DURATION, rate_tps=RATE_TPS, n_faults=N_FAULTS))
    resilient = run_chaos(ChaosConfig(
        seed=seed, duration=DURATION, rate_tps=RATE_TPS, n_faults=N_FAULTS,
        resilience=default_resilience_policy(seed=seed)))
    # identical adversity: both runs drew the same fault schedule
    assert base.fault_spec == resilient.fault_spec
    return base, resilient


def test_e22_chaos_resilience(benchmark):
    def experiment():
        return {seed: run_pair(seed) for seed in SEEDS}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report = Report(
        "E22  Chaos resilience (section 5.1)",
        ["seed", "variant", "goodput (txn/s)", "error rate",
         "MTTR (s)", "retries", "replays", "invariants"])
    for seed, (base, resilient) in results.items():
        report.add_row(seed, "baseline", base.goodput(),
                       base.error_rate(), base.mttr, 0, 0,
                       "ok" if base.all_invariants_hold else "VIOLATED")
        report.add_row(seed, "resilient", resilient.goodput(),
                       resilient.error_rate(), resilient.mttr,
                       resilient.resilience_stats.get("retries", 0),
                       resilient.resilience_stats.get("replays", 0),
                       "ok" if resilient.all_invariants_hold
                       else "VIOLATED")
    report.note("identical seeded fault schedule per pair; open-loop "
                f"Poisson load at {RATE_TPS} tps for {DURATION}s")
    report.note("2-safe propagation: zero acked-commit loss by "
                "construction, verified per run")
    report.show()

    for seed, (base, resilient) in results.items():
        # both runs faced real adversity
        assert any(e.kind in ("crash", "flap") for e in base.fault_events), \
            f"seed {seed}: no faults fired"
        assert base.total_requests == resilient.total_requests, \
            f"seed {seed}: arrival schedules diverged"
        # acceptance: strictly higher goodput, strictly lower error rate
        assert resilient.goodput() > base.goodput(), \
            f"seed {seed}: resilience did not improve goodput"
        assert resilient.error_rate() < base.error_rate(), \
            f"seed {seed}: resilience did not reduce the error rate"
        # zero acked-commit loss under 2-safe, both variants
        assert base.invariants["no_lost_acked_commits"], \
            f"seed {seed}: baseline lost acked commits: {base.violations}"
        assert resilient.invariants["no_lost_acked_commits"], \
            f"seed {seed}: resilient lost acked commits: " \
            f"{resilient.violations}"
        # every invariant checker green
        assert base.all_invariants_hold, \
            f"seed {seed}: baseline violations {base.violations}"
        assert resilient.all_invariants_hold, \
            f"seed {seed}: resilient violations {resilient.violations}"
        # the resilience machinery actually did work
        assert resilient.resilience_stats.get("retries", 0) > 0, \
            f"seed {seed}: no retries — the fault schedule was too gentle"
        # every request produced an exportable trace (E25 digs deeper)
        for run in (base, resilient):
            assert all(r.trace_id is not None for r in run.records), \
                f"seed {seed}: a request resolved without a trace"
            assert run.trace_stats.get("spans_finished", 0) > 0

    first_base, first_res = results[SEEDS[0]]
    benchmark.extra_info["baseline_goodput"] = first_base.goodput()
    benchmark.extra_info["resilient_goodput"] = first_res.goodput()
    benchmark.extra_info["baseline_error_rate"] = first_base.error_rate()
    benchmark.extra_info["resilient_error_rate"] = first_res.error_rate()
