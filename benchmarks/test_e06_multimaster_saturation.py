"""E06 — sections 1, 2.1 and Gray's "dangers of replication" [18].

Claims:
* multi-master write throughput does not scale: "as every replica has to
  perform all updates, there is a point beyond which adding more replicas
  does not increase throughput, because every replica is saturated
  applying updates";
* read throughput *does* scale on the same cluster;
* conflicts/aborts grow with the number of concurrent writers on hot rows
  (Gray: reconciliation/deadlock rate grows super-linearly).
"""

from repro.bench import Report
from repro.workloads import MicroWorkload

from common import ratio, run_closed_loop

SIZES = [1, 2, 4, 8]


def run_point(replicas: int, read_fraction: float) -> dict:
    workload = MicroWorkload(rows=100, read_fraction=read_fraction,
                             skew=1.4, write_statements=2)
    middleware, metrics, _cluster, _env = run_closed_loop(
        replicas=replicas, replication="writeset", propagation="sync",
        consistency="gsi", workload=workload,
        clients=4 * replicas, duration=2.0)
    total = metrics.throughput.completed + metrics.throughput.failed
    return {
        "throughput": metrics.rate(2.0),
        "abort_rate": metrics.throughput.abort_rate(),
        "conflicts": metrics.errors.get("SerializationError", 0)
                     + metrics.errors.get("LockConflict", 0),
        "total": total,
    }


def test_e06_multimaster_update_saturation(benchmark):
    def experiment():
        return {
            "writes": {n: run_point(n, read_fraction=0.0) for n in SIZES},
            "reads": {n: run_point(n, read_fraction=1.0) for n in SIZES},
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    writes, reads = results["writes"], results["reads"]

    report = Report(
        "E06  Multi-master scaling: Gray's update saturation "
        "(scaled load, hot-key skew)",
        ["replicas", "write tps", "write abort rate", "read tps"])
    for n in SIZES:
        report.add_row(n, writes[n]["throughput"],
                       writes[n]["abort_rate"], reads[n]["throughput"])
    write_gain = ratio(writes[8]["throughput"], writes[1]["throughput"])
    read_gain = ratio(reads[8]["throughput"], reads[1]["throughput"])
    report.note(f"1->8 replicas: write gain {write_gain:.2f}x vs read gain "
                f"{read_gain:.2f}x (every replica applies every update)")
    report.show()

    # shape: reads scale far better than writes
    assert read_gain > 3.0
    assert write_gain < read_gain / 2
    # writes plateau: 8 replicas buy little over 4
    assert writes[8]["throughput"] < writes[4]["throughput"] * 1.35
    # conflict aborts exist under multi-writer hot keys and grow
    assert writes[8]["abort_rate"] >= writes[1]["abort_rate"]
    assert writes[8]["conflicts"] > 0
    benchmark.extra_info["write_gain_1_to_8"] = round(write_gain, 2)
    benchmark.extra_info["read_gain_1_to_8"] = round(read_gain, 2)
