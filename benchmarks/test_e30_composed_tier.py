"""E30 — the composed tier: sharded + HA + open-loop at full scale.

Every prior tier ran alone: E26 failed over one HA pair, E28 shed an
open-loop flash crowd at one group's door, E29 split a range under load.
The paper's section 5 complaint is precisely that evaluations stop
there — components proven in isolation, never the composition an
operator actually runs.  E30 is that composition: N shard groups, each
an active/standby pair behind its virtual IP, registered with one shard
router, driven by the E28 session-arrival tier through its admission
gate — while the E22-style chaos harness kills one group's middleware
*in the middle of* a live range split on another.

* **drill** (simulated time): 3 groups x 2 replicas; a flash crowd
  rides a constant arrival base; at t=1.0 an :class:`OnlineReshard`
  starts moving half of group 0's keyspace to group 1; at t=1.2 — with
  the split mid-flight — group 2's active middleware is killed and its
  standby promoted through the fenced path (E26's cycle, per-group via
  :class:`GroupKillTrack`).  Gates: **zero acked-commit loss** (final
  ``SUM(v)`` equals acked update transactions exactly), **zero stale
  reads** and **zero missing rows** on a monotonic probe that spans
  moving keys *and* the killed group's keys, p99 within the E28
  deadline, and the outage window provably overlapping the reshard.
* **hotpath** (wall clock): the composed per-statement path — router
  route-plan memo + compiled key plans (PR 10), ``analyze`` memo, and
  the engine's compiled access-plan shapes — against the same stack
  with every cache toggled off.  Best-of-N per arm (noise floors, the
  E28 convention); results must be bit-identical and the fast arm
  >= MIN_HOTPATH x.
* **trace** (state only): one traced pass over the composed stack —
  point ops, a cross-shard 2PC commit, a live split, a kill+promote —
  and the union of span names it emits, pinned against the vocabulary
  documented in ``docs/TOPOLOGY.md`` so trace-driven diagnosis and the
  docs cannot drift apart.

Results land in ``BENCH_e30.json``; simulated-time gates are
deterministic, the wall-clock arm gates only on the fast/compat ratio.
"""

import json
import random
import time
from pathlib import Path

from repro.bench.chaos import GroupKillTrack
from repro.bench.harness import Report, build_composed_cluster
from repro.bench.simdriver import SessionArrivalDriver, TimedShardedCluster
from repro.cluster.sim import Environment
from repro.core import analysis
from repro.core.admission import default_gate
from repro.core.errors import MiddlewareDown
from repro.shard import HashSharder, OnlineReshard, RangeSharder, ReshardError
from repro.sqlengine import planner
from repro.sqlengine.parser import parse_script
from repro.workloads.generator import TxnSpec
from repro.workloads.openloop import ConstantRate, FlashCrowd, OpenLoopWorkload

SEED = 30
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_e30.json"

# drill arm
GROUPS = 3
KEYS = 600                 # 0..399 on group 0, 400..599 on group 2
SPLIT_BOUND = 199          # keys 0..199 move from group 0 to group 1
RESHARD_AT = 1.0
DUAL_WINDOW = 0.4
KILL_AT = 1.2              # inside the split: copy/dual-write window
DETECTION_DELAY = 0.3
BASE_RATE = 200.0          # sessions/s
CROWD_AT = 2.5             # flash crowd after the overlap clears
CROWD_LEN = 1.0
CROWD_MULTIPLIER = 2.0
HORIZON = 6.0
DEADLINE = 0.75            # the E28 impatience deadline
PROBE_KEYS = (0, SPLIT_BOUND, 300, 500)   # moving, staying, killed-group
PROBE_INTERVAL = 0.02

# hotpath arm
HOTPATH_OPS = 12000
HOTPATH_WARMUP = 500
HOTPATH_TRIALS = 4
HOTPATH_KEYS = 64
MIN_HOTPATH = 1.2

# the composed span vocabulary (docs/TOPOLOGY.md) that one traced pass
# over the full stack must cover
EXPECTED_SPANS = {
    "shard.route", "shard.2pc", "shard.2pc.prepare", "shard.2pc.decide",
    "shard.2pc.commit", "reshard.begin", "reshard.copy", "reshard.catchup",
    "reshard.dualwrite", "reshard.flip", "ha.promote",
    "mw.statement", "balancer.choose", "certify", "replica.execute",
    "replica.commit",
}


def _create_kv(cluster):
    for group in cluster.groups:
        session = group.connect(database="shop")
        session.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        session.close()


def _seed_kv(cluster, keys):
    """Seed v=0 through the tier: the zero-loss gate counts on every
    acked update incrementing exactly one row from that floor."""
    session = cluster.connect(database="shop")
    for key in range(keys):
        session.execute(f"INSERT INTO kv (k, v) VALUES ({key}, 0)")
    session.close()


# ---------------------------------------------------------------------------
# scenario A: failover during a live split, under an admitted flash crowd
# ---------------------------------------------------------------------------

class DrillWorkload(OpenLoopWorkload):
    """Uniform point reads/updates over a fully seeded keyspace spanning
    all three groups, so every acked update changed exactly one row (the
    accounting the zero-loss gate relies on) and the killed group is
    never idle."""

    def __init__(self):
        super().__init__(rows=KEYS, seed_rows=KEYS, read_fraction=0.5,
                         table="kv", mean_session_length=2.0,
                         mean_think_time=0.01)

    def next_transaction(self, rng: random.Random) -> TxnSpec:
        key = rng.randrange(KEYS)
        if rng.random() < self.read_fraction:
            return TxnSpec([(f"SELECT v FROM kv WHERE k = {key}", [])],
                           True, ["kv"], kind="point_read")
        return TxnSpec([(f"UPDATE kv SET v = v + 1 WHERE k = {key}", [])],
                       False, ["kv"], kind="point_write")


def _reshard_process(env, cluster, log):
    """E29's phase-by-phase split, with a dual-write window wide enough
    that the kill on the *other* group lands strictly inside the move."""
    yield env.timeout(RESHARD_AT)
    move = OnlineReshard.split_range(cluster, "kv", SPLIT_BOUND, dst=1,
                                     database="shop")
    move.start()
    log["reshard_started_at"] = env.now
    while move.state == "copying":
        move.copy_chunk(64)
        yield env.timeout(0.01)
    while move.catch_up() > 2:
        yield env.timeout(0.005)
    move.enter_dual_write()
    log["dual_write_at"] = env.now
    yield env.timeout(DUAL_WINDOW)
    flip_retries = 0
    while True:
        try:
            move.flip()
            break
        except ReshardError:
            flip_retries += 1
            yield env.timeout(0.005)
    log["flip_at"] = env.now
    log["flip_retries"] = flip_retries
    log["stats"] = dict(move.stats)


def _probe_process(env, cluster, log):
    """Monotonic freshness probe across all three groups: v only ever
    increments, so a read going backwards is a stale read.  During the
    killed group's outage window the probe records the unavailability
    instead of failing — exactly what an external prober sees through
    the virtual IP."""
    session = cluster.connect(database="shop")
    last = {}
    while True:
        for key in PROBE_KEYS:
            try:
                rows = session.execute(
                    f"SELECT v FROM kv WHERE k = {key}").rows
            except MiddlewareDown:
                log["unavailable_probes"] += 1
                continue
            value = rows[0][0] if rows else None
            if value is None:
                log["missing_rows"] += 1
            elif value < last.get(key, 0):
                log["stale_reads"] += 1
            if value is not None:
                last[key] = value
            log["probes"] += 1
        yield env.timeout(PROBE_INTERVAL)


def run_drill() -> dict:
    env = Environment()
    cluster = build_composed_cluster(shards=GROUPS, replicas=2, env=env,
                                     name="e30")
    _create_kv(cluster)
    # three live segments: 0..399 on group 0, 400..599 on group 2,
    # group 1 empty until the split assigns it keys <= SPLIT_BOUND
    cluster.register_table("kv", "k",
                           RangeSharder([399, KEYS * 10], [0, 2, 1]))
    _seed_kv(cluster, KEYS)
    timed = TimedShardedCluster(env, cluster)
    curve = FlashCrowd(ConstantRate(BASE_RATE), start=CROWD_AT,
                       duration=CROWD_LEN, multiplier=CROWD_MULTIPLIER,
                       ramp=0.2)
    gate = default_gate(clock=lambda: env.now)
    driver = SessionArrivalDriver(timed, DrillWorkload(), curve, seed=SEED,
                                  admission=gate, txn_deadline=DEADLINE)
    track = GroupKillTrack(env, cluster, index=2, kill_times=[KILL_AT],
                           detection_delay=DETECTION_DELAY)
    log = {"stale_reads": 0, "missing_rows": 0, "probes": 0,
           "unavailable_probes": 0}
    driver.start(HORIZON)
    env.process(_reshard_process(env, cluster, log), name="reshard")
    env.process(_probe_process(env, cluster, log), name="probe")
    env.process(track.process(), name="kill-track")
    env.run(until=HORIZON + 0.5)

    acked_updates = driver.metrics.write_latency.count()
    session = cluster.connect(database="shop")
    total = session.execute("SELECT SUM(v) FROM kv").rows[0][0] or 0
    count = session.execute("SELECT COUNT(*) FROM kv").rows[0][0]
    per_group = []
    for group in cluster.groups:
        direct = group.connect(database="shop")
        per_group.append(
            direct.execute("SELECT COUNT(*) FROM kv").rows[0][0])
        direct.close()
    summary = driver.summary(HORIZON)
    summary.update({
        "acked_update_txns": acked_updates,
        "sum_v": total,
        "rows": count,
        "rows_per_group": per_group,
        "map_version": cluster.map.version,
        "converged": cluster.check_convergence(),
        "dual_writes": cluster.stats["dual_writes"],
        "group_promotions": cluster.stats["group_promotions"],
        "failover_reroutes": cluster.stats["failover_reroutes"],
        "kills": track.kills,
        "promotions": track.promotions,
        "sessions_lost": track.sessions_lost,
        "probe": {k: log[k] for k in ("stale_reads", "missing_rows",
                                      "probes", "unavailable_probes")},
        "reshard": {k: log.get(k)
                    for k in ("reshard_started_at", "dual_write_at",
                              "flip_at", "flip_retries", "stats")},
    })
    return summary


# ---------------------------------------------------------------------------
# scenario B: the composed hot path, caches on vs off
# ---------------------------------------------------------------------------

def _set_hotpath_caches(cluster, fast: bool) -> None:
    analysis.CACHE_ENABLED = fast
    planner.PLAN_CACHE_ENABLED = fast
    cluster.route_caching = fast


def run_hotpath(fast: bool) -> dict:
    """Point reads through the full composed stack (router -> pair ->
    middleware -> engine), wall clock.  ``fast=False`` switches every
    PR-10 cache off: per-call ``analyze`` in router and middleware,
    interpreted shard-key extraction, per-call access planning."""
    cluster = build_composed_cluster(shards=2, replicas=1, name="e30hp")
    cluster.tracer.enabled = False
    for pair in cluster.pairs:
        pair.leader.tracer.enabled = False
        pair.standby.tracer.enabled = False
    _create_kv(cluster)
    cluster.register_table("kv", "k", HashSharder(2))
    session = cluster.connect(database="shop")
    for key in range(HOTPATH_KEYS):
        session.execute(f"INSERT INTO kv (k, v) VALUES ({key}, {key})")
    sql = "SELECT v FROM kv WHERE k = ?"
    statement = parse_script(sql)[0]

    def one_run() -> float:
        for i in range(HOTPATH_WARMUP):
            session.execute_one_parsed(statement, sql, [i % HOTPATH_KEYS])
        start = time.perf_counter()
        for i in range(HOTPATH_OPS):
            session.execute_one_parsed(statement, sql, [i % HOTPATH_KEYS])
        return HOTPATH_OPS / (time.perf_counter() - start)

    try:
        _set_hotpath_caches(cluster, fast)
        best = max(one_run() for _ in range(HOTPATH_TRIALS))
        digest = 0
        for i in range(HOTPATH_KEYS):
            digest += session.execute_one_parsed(
                statement, sql, [i]).rows[0][0]
    finally:
        _set_hotpath_caches(cluster, True)
    return {"ops_per_sec": best, "digest": digest,
            "trials": HOTPATH_TRIALS, "ops": HOTPATH_OPS}


# ---------------------------------------------------------------------------
# scenario C: one traced pass covers the documented span vocabulary
# ---------------------------------------------------------------------------

def run_trace() -> dict:
    """Exercise every composed layer once with tracing on and collect
    the union of span names — the vocabulary docs/TOPOLOGY.md documents
    for trace-driven diagnosis."""
    cluster = build_composed_cluster(shards=2, replicas=2, name="e30tr")
    _create_kv(cluster)
    cluster.register_table("kv", "k",
                           RangeSharder([7, 1000], [0, 1, 1]))
    _seed_kv(cluster, 16)
    session = cluster.connect(database="shop")
    session.execute("SELECT v FROM kv WHERE k = 3")
    session.execute("UPDATE kv SET v = v + 1 WHERE k = 3")
    # cross-shard transaction -> 2PC spans
    session.execute("BEGIN")
    session.execute("UPDATE kv SET v = v + 1 WHERE k = 2")
    session.execute("UPDATE kv SET v = v + 1 WHERE k = 12")
    session.execute("COMMIT")
    # live split -> reshard spans
    move = OnlineReshard.split_range(cluster, "kv", 3, dst=1,
                                     database="shop")
    move.start()
    while move.state == "copying":
        move.copy_chunk(8)
    # a write behind the join point so catch-up has a tail to replay
    session.execute("UPDATE kv SET v = v + 1 WHERE k = 1")
    move.catch_up()
    move.enter_dual_write()
    move.flip()
    # kill + fenced promotion -> ha spans (on the standby's tracer)
    pair = cluster.pairs[0]
    standby = pair.standby
    pair.kill_active()
    pair.promote()
    session = cluster.connect(database="shop")
    session.execute("SELECT v FROM kv WHERE k = 9")

    tracers = [cluster.tracer, standby.tracer]
    for group in cluster.groups:
        tracers.append(group.tracer)
    for p in cluster.pairs:
        tracers.append(p.leader.tracer)
    names = set()
    for tracer in tracers:
        names.update(span.name for span in tracer.finished_spans())
    return {"span_names": sorted(names),
            "missing": sorted(EXPECTED_SPANS - names)}


# ---------------------------------------------------------------------------
# the experiment
# ---------------------------------------------------------------------------

def test_e30_composed_tier(benchmark):
    def experiment():
        return {
            "drill": run_drill(),
            "hotpath_fast": run_hotpath(fast=True),
            "hotpath_compat": run_hotpath(fast=False),
            "trace": run_trace(),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    drill = results["drill"]
    fast = results["hotpath_fast"]
    compat = results["hotpath_compat"]
    trace = results["trace"]
    speedup = fast["ops_per_sec"] / compat["ops_per_sec"]
    probe = drill["probe"]
    reshard = drill["reshard"]

    report = Report(
        "E30  Composed tier: sharded + HA + open-loop (section 5)",
        ["scenario", "metric", "value", "note"])
    report.add_row("drill", "acked update txns",
                   drill["acked_update_txns"],
                   f"goodput {drill['goodput_txns']}")
    report.add_row("drill", "sum(v) after drill", drill["sum_v"],
                   "zero acked-commit loss"
                   if drill["sum_v"] == drill["acked_update_txns"]
                   else "LOSS DETECTED")
    report.add_row("drill", "stale / missing reads",
                   f"{probe['stale_reads']} / {probe['missing_rows']}",
                   f"{probe['probes']} probes, "
                   f"{probe['unavailable_probes']} during outage")
    report.add_row("drill", "p99 latency (s)",
                   round(drill["p99_latency"], 4),
                   f"deadline {DEADLINE}s")
    report.add_row("drill", "kill inside split",
                   f"kill@{drill['kills'][0]:.2f}",
                   f"split {reshard['reshard_started_at']:.2f}"
                   f"..{reshard['flip_at']:.2f}, "
                   f"promoted@{drill['promotions'][0]:.2f}")
    report.add_row("drill", "rows per group",
                   "/".join(str(n) for n in drill["rows_per_group"]),
                   f"map v{drill['map_version']}, "
                   f"{drill['dual_writes']} dual writes")
    report.add_row("hotpath", "fast ops/s", round(fast["ops_per_sec"]),
                   f"best of {HOTPATH_TRIALS}")
    report.add_row("hotpath", "compat ops/s", round(compat["ops_per_sec"]),
                   "all caches off")
    report.add_row("hotpath", "speedup", f"{speedup:.2f}x",
                   f"floor {MIN_HOTPATH}x")
    report.add_row("trace", "span names", len(trace["span_names"]),
                   "missing: " + (", ".join(trace["missing"]) or "none"))
    report.show()

    # -- scenario A: the composition kept every tier's promise ----------
    # zero acked-commit loss with a kill and a live split overlapping
    assert drill["sum_v"] == drill["acked_update_txns"], \
        (f"acked {drill['acked_update_txns']} updates but the table "
         f"sums to {drill['sum_v']}")
    assert probe["stale_reads"] == 0
    assert probe["missing_rows"] == 0
    assert probe["probes"] > 100
    # the probe really spanned the outage window
    assert probe["unavailable_probes"] > 0
    # the kill landed strictly inside the live split
    assert len(drill["kills"]) == 1 and len(drill["promotions"]) == 1
    assert reshard["reshard_started_at"] < drill["kills"][0] \
        < reshard["flip_at"]
    assert drill["group_promotions"] == 1
    # live traffic hit the dead group (autocommit point ops hold no open
    # transaction at the kill instant, so the driver's failed sessions —
    # not the pair's in-flight count — prove the outage was not idle)
    assert any("MiddlewareDown" in kind for kind in drill["errors"]), \
        f"no session ever saw the outage: {drill['errors']}"
    # the split landed where it should despite the concurrent failover
    assert drill["map_version"] == 2
    assert drill["rows"] == KEYS
    assert drill["rows_per_group"] == [KEYS // 3] * 3
    assert reshard["stats"]["rows_copied"] == SPLIT_BOUND + 1
    assert drill["dual_writes"] > 0
    assert drill["converged"]
    # the session tier held its deadline through the overlap
    assert drill["p99_latency"] <= DEADLINE
    assert drill["acked_commits"] > 0

    # -- scenario B: the composed hot path pays for itself --------------
    assert fast["digest"] == compat["digest"], \
        "fast and compat arms disagree on query results"
    assert speedup >= MIN_HOTPATH, \
        f"composed hot path {speedup:.2f}x under the {MIN_HOTPATH}x floor"

    # -- scenario C: the documented span vocabulary is live -------------
    assert trace["missing"] == [], \
        f"documented spans never emitted: {trace['missing']}"

    payload = {
        "experiment": "e30_composed_tier",
        "seed": SEED,
        "min_hotpath": MIN_HOTPATH,
        "drill": drill,
        "hotpath": {
            "speedup": speedup,
            "fast": fast,
            "compat": compat,
        },
        "trace": trace,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info["acked_commit_loss"] = (
        drill["acked_update_txns"] - drill["sum_v"])
    benchmark.extra_info["stale_reads"] = probe["stale_reads"]
    benchmark.extra_info["hotpath_speedup"] = round(speedup, 3)
    benchmark.extra_info["group_promotions"] = drill["group_promotions"]
