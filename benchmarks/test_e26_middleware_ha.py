"""E26 — middleware-tier HA: standby promotion vs cold restart.

Section 3.2 again, but this time measuring the *remedy* instead of the
disease (E09 measures the disease).  The same seeded middleware-kill
schedules run twice under identical open-loop load:

* **ha** — an active/standby :class:`repro.ha.HAPair` with synchronous
  state shipping; each kill is followed by a fenced promotion after the
  detection delay, and clients fail over exactly-once (commit ledger).
* **cold** — no standby; each kill pays the paper's slow path: a cold
  restart that retrieves state from every replica
  (:func:`repro.ha.promotion.cold_restart_duration`).

Claims checked:

* zero acked-commit loss in *both* modes (2-safe propagation + replay
  with ledger dedup — the ``no_lost_acked_commits`` invariant);
* the standby-promotion outage window is strictly smaller than the cold
  state-retrieval restart, for every seed;
* goodput under faults is higher with the standby;
* no split-brain: after a (false-positive) promotion the deposed leader
  is refused with ``FencedOut`` while the new leader keeps committing.
"""

import json
import random
from pathlib import Path

import pytest

from repro.bench import Report
from repro.bench.chaos import (
    ChaosConfig, default_resilience_policy, run_chaos,
)
from repro.bench.harness import build_cluster
from repro.core.errors import FencedOut
from repro.ha import HAPair

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_e26.json"

SEEDS = [11, 23, 37, 41, 53]
DURATION = 20.0
RATE_TPS = 30.0
KILLS_PER_SCHEDULE = 2
DETECTION_DELAY = 0.3


def kill_schedule(seed: int) -> list:
    """Two seeded kill times: one in the first half of the run, one in
    the second, both clear of the drain window."""
    rng = random.Random(seed * 7919 + 3)
    return [round(rng.uniform(3.0, 7.0), 2),
            round(rng.uniform(10.0, 14.0), 2)]


def run_mode(seed: int, ha_standby: bool) -> dict:
    config = ChaosConfig(
        replicas=3, seed=seed, duration=DURATION, rate_tps=RATE_TPS,
        n_faults=0, fault_spec={"faults": []},   # middleware faults only
        resilience=default_resilience_policy(seed),
        middleware_kills=kill_schedule(seed), ha_standby=ha_standby,
        mw_detection_delay=DETECTION_DELAY, drain_grace=15.0)
    result = run_chaos(config)
    # each kill contributes exactly one (down_at, up_at) outage window;
    # the kill/recovery timeline is exact (the probe only samples it)
    outage_total = sum(rec - kill for kill, rec in
                       zip(result.mw_kills, result.mw_recoveries))
    recoveries = [round(rec - kill, 4) for kill, rec in
                  zip(result.mw_kills, result.mw_recoveries)]
    acked_lost = 0 if result.invariants["no_lost_acked_commits"] else 1
    return {
        "seed": seed,
        "mode": "ha" if ha_standby else "cold",
        "succeeded": result.succeeded,
        "failed": result.failed,
        "goodput_tps": round(result.goodput(), 3),
        "availability": round(result.availability, 5),
        "outage_total_s": round(outage_total, 4),
        "recovery_times_s": recoveries,
        "promotions": result.promotions,
        "dedup_commits": result.dedup_commits,
        "acked_commit_loss": acked_lost,
        "invariants": result.invariants,
        "violations": result.violations,
    }


def check_fencing() -> dict:
    """False-positive promotion: the leader is *not* dead, but the
    detector suspected it.  Fencing must refuse the deposed leader while
    the new leader keeps working — no split-brain."""
    middleware = build_cluster(3, replication="writeset",
                               propagation="sync", consistency="gsi")
    session = middleware.connect(database="shop")
    session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
    pair = HAPair(middleware)
    pair.promote()              # leader still alive: false positive
    fenced = False
    try:
        session.execute("INSERT INTO t (id) VALUES (1)")
    except FencedOut:
        fenced = True
    new_session = pair.connect(database="shop")
    new_session.execute("INSERT INTO t (id) VALUES (2)")
    new_session.close()
    rows = {row[0] for row in middleware.replicas[0].engine.connect(
        "admin", "", database="shop").execute("SELECT id FROM t").rows}
    return {"deposed_leader_fenced": fenced,
            "stale_write_blocked": 1 not in rows,
            "new_leader_committed": 2 in rows,
            "epoch": pair.fence.epoch}


@pytest.mark.benchmark(group="e26")
def test_e26_middleware_ha(benchmark):
    def experiment():
        rows = []
        for seed in SEEDS:
            rows.append(run_mode(seed, ha_standby=True))
            rows.append(run_mode(seed, ha_standby=False))
        return {"rows": rows, "fencing": check_fencing()}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows, fencing = results["rows"], results["fencing"]
    by_seed = {}
    for row in rows:
        by_seed.setdefault(row["seed"], {})[row["mode"]] = row

    report = Report(
        "E26  Middleware HA: standby promotion vs cold restart "
        "(section 3.2)",
        ["seed", "mode", "goodput (tps)", "availability", "outage (s)",
         "recovery (s)", "promotions", "dedup", "acked loss"])
    for row in rows:
        report.add_row(row["seed"], row["mode"], row["goodput_tps"],
                       row["availability"], row["outage_total_s"],
                       row["recovery_times_s"], row["promotions"],
                       row["dedup_commits"], row["acked_commit_loss"])
    report.note("fencing: deposed leader refused="
                f"{fencing['deposed_leader_fenced']}, "
                f"new leader committed={fencing['new_leader_committed']}")
    report.show()

    for row in rows:
        # RPO = 0 in both modes: no write the client saw acked is lost
        assert row["acked_commit_loss"] == 0, row
        assert all(row["invariants"].values()), row["violations"]
    for seed, modes in by_seed.items():
        ha, cold = modes["ha"], modes["cold"]
        # the standby promotion outage is strictly smaller than the cold
        # state-retrieval restart, on every schedule
        assert ha["outage_total_s"] < cold["outage_total_s"], seed
        assert max(ha["recovery_times_s"]) < min(cold["recovery_times_s"])
        assert ha["goodput_tps"] > cold["goodput_tps"], seed
        assert ha["promotions"] == KILLS_PER_SCHEDULE
    # no split-brain after a false-positive promotion
    assert fencing["deposed_leader_fenced"]
    assert fencing["stale_write_blocked"]
    assert fencing["new_leader_committed"]

    ha_rows = [r for r in rows if r["mode"] == "ha"]
    cold_rows = [r for r in rows if r["mode"] == "cold"]
    payload = {
        "experiment": "E26",
        "title": "Middleware HA: standby promotion vs cold restart",
        "seeds": SEEDS,
        "kill_schedules": {seed: kill_schedule(seed) for seed in SEEDS},
        "kills_per_schedule": KILLS_PER_SCHEDULE,
        "detection_delay_s": DETECTION_DELAY,
        "rows": rows,
        "fencing": fencing,
        "aggregate": {
            "ha_mean_outage_s": round(
                sum(r["outage_total_s"] for r in ha_rows) / len(ha_rows),
                4),
            "cold_mean_outage_s": round(
                sum(r["outage_total_s"] for r in cold_rows)
                / len(cold_rows), 4),
            "ha_mean_goodput_tps": round(
                sum(r["goodput_tps"] for r in ha_rows) / len(ha_rows), 3),
            "cold_mean_goodput_tps": round(
                sum(r["goodput_tps"] for r in cold_rows) / len(cold_rows),
                3),
            "total_dedup_commits": sum(r["dedup_commits"] for r in rows),
            "total_acked_commit_loss": sum(
                r["acked_commit_loss"] for r in rows),
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    benchmark.extra_info["ha_mean_outage_s"] = \
        payload["aggregate"]["ha_mean_outage_s"]
    benchmark.extra_info["cold_mean_outage_s"] = \
        payload["aggregate"]["cold_mean_outage_s"]
    benchmark.extra_info["acked_commit_loss"] = \
        payload["aggregate"]["total_acked_commit_loss"]
