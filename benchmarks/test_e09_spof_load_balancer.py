"""E09 — section 3.2: the centralized load balancer / certifier SPOF.

Claims:
* "A failure of the load balancer ... not only causes all in-flight
  transactions to be lost, but also causes a complete system outage";
* a centralized certifier's recovery "requires retrieving state from every
  replica" (slow); a replicated certifier resumes from its standby copy;
* replicating the certifier costs extra synchronization on every commit.
"""

from repro.bench import ClosedLoopDriver, Report, TimedCluster, build_cluster, load_workload
from repro.cluster import Environment
from repro.metrics import AvailabilityTracker
from repro.workloads import MicroWorkload

DURATION = 6.0
FAIL_AT = 2.0
RECOVER_AFTER = 1.5


def run_scenario(replicated_certifier: bool) -> dict:
    env = Environment()
    middleware = build_cluster(3, replication="writeset",
                               propagation="sync", consistency="gsi",
                               env=env)
    middleware.certifier.replicated = replicated_certifier
    if replicated_certifier:
        middleware.certifier._standby_log = []
    # multi-statement transactions so sessions are genuinely in flight
    # when the middleware dies
    workload = MicroWorkload(rows=150, read_fraction=0.3,
                             write_statements=3)
    load_workload(middleware, workload)
    cluster = TimedCluster(env, middleware)
    driver = ClosedLoopDriver(cluster, workload, clients=6)
    availability = AvailabilityTracker()
    outcome = {}

    def fault():
        yield env.timeout(FAIL_AT)
        outcome["lost_sessions"] = middleware.fail()
        availability.service_down(env.now)
        # centralized: state rebuild takes a full scan of every replica;
        # replicated: the standby takes over almost immediately
        recovery_time = 0.1 if replicated_certifier else RECOVER_AFTER
        yield env.timeout(recovery_time)
        middleware.recover()
        availability.service_up(env.now)

    env.process(fault(), name="fault")
    driver.start(duration=DURATION)
    env.run(until=DURATION)
    cluster.stop()
    availability.finish(DURATION)
    summary = availability.summary()
    return {
        "lost_sessions": outcome.get("lost_sessions", 0),
        "downtime_s": summary["downtime"],
        "availability": summary["availability"],
        "commit_p50_ms": driver.metrics.write_latency.percentile(50) * 1000,
        "failed_txns": driver.metrics.throughput.failed,
        "completed": driver.metrics.throughput.completed,
    }


def test_e09_load_balancer_spof(benchmark):
    def experiment():
        return {
            "centralized": run_scenario(replicated_certifier=False),
            "replicated": run_scenario(replicated_certifier=True),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    central, replicated = results["centralized"], results["replicated"]

    report = Report(
        "E09  Centralized vs replicated middleware state (section 3.2)",
        ["certifier", "lost in-flight sessions", "downtime (s)",
         "availability", "commit p50 (ms)", "failed txns", "completed"])
    report.add_row("centralized", central["lost_sessions"],
                   central["downtime_s"], central["availability"],
                   central["commit_p50_ms"], central["failed_txns"],
                   central["completed"])
    report.add_row("replicated", replicated["lost_sessions"],
                   replicated["downtime_s"], replicated["availability"],
                   replicated["commit_p50_ms"], replicated["failed_txns"],
                   replicated["completed"])
    report.note("replication of the coordinator trades per-commit "
                "synchronization for fast takeover")
    report.show()

    # total outage with in-flight loss in both cases (the middleware died)
    assert central["lost_sessions"] > 0
    # centralized recovery is much longer
    assert central["downtime_s"] > replicated["downtime_s"] * 5
    assert replicated["availability"] > central["availability"]
    # the replicated certifier costs commit latency during normal operation
    assert replicated["commit_p50_ms"] > central["commit_p50_ms"]
    benchmark.extra_info["central_downtime_s"] = round(central["downtime_s"], 2)
    benchmark.extra_info["replicated_commit_overhead_ms"] = round(
        replicated["commit_p50_ms"] - central["commit_p50_ms"], 3)
