"""E09 — section 3.2: the centralized load balancer / certifier SPOF.

Claims:
* "A failure of the load balancer ... not only causes all in-flight
  transactions to be lost, but also causes a complete system outage";
* a centralized certifier's recovery "requires retrieving state from every
  replica" (slow); a replicated middleware resumes from its standby copy;
* replicating the middleware state costs extra synchronization on every
  commit.

The "replicated" arm is the real :mod:`repro.ha` active/standby pair:
synchronous state shipping on every commit, fenced promotion after a
short detection delay, and clients following the virtual IP to the
standby.  The "centralized" arm pays the paper's slow path — a cold
restart that retrieves state from every replica
(:func:`repro.ha.promotion.cold_restart`).
"""

from repro.bench import ClosedLoopDriver, Report, TimedCluster, build_cluster, load_workload
from repro.cluster import Environment
from repro.ha import HAPair, cold_restart, cold_restart_duration
from repro.metrics import AvailabilityTracker
from repro.workloads import MicroWorkload

DURATION = 6.0
FAIL_AT = 2.0
DETECTION_DELAY = 0.1  # standby heartbeat miss -> promotion


def run_scenario(ha_standby: bool) -> dict:
    env = Environment()
    middleware = build_cluster(3, replication="writeset",
                               propagation="sync", consistency="gsi",
                               env=env)
    # multi-statement transactions so sessions are genuinely in flight
    # when the middleware dies
    workload = MicroWorkload(rows=150, read_fraction=0.3,
                             write_statements=3)
    load_workload(middleware, workload)
    cluster = TimedCluster(env, middleware)
    pair = None
    if ha_standby:
        pair = HAPair(middleware)
        # clients resolve the virtual IP: on promotion the driver's
        # reconnect path lands on the standby
        pair.on_switch(lambda mw: setattr(cluster, "middleware", mw))
    driver = ClosedLoopDriver(cluster, workload, clients=6)
    availability = AvailabilityTracker()
    outcome = {}

    def fault():
        yield env.timeout(FAIL_AT)
        if pair is not None:
            outcome["lost_sessions"] = pair.kill_active()
            availability.service_down(env.now)
            # the standby takes over after the detection delay; its
            # hydration from shipped state is instantaneous
            yield env.timeout(DETECTION_DELAY)
            pair.promote()
        else:
            outcome["lost_sessions"] = middleware.fail()
            availability.service_down(env.now)
            # centralized: state rebuild takes a full scan of every
            # replica (the paper's rarely-evaluated recovery)
            yield env.timeout(
                cold_restart_duration(len(middleware.replicas)))
            cold_restart(middleware)
        availability.service_up(env.now)

    env.process(fault(), name="fault")
    driver.start(duration=DURATION)
    env.run(until=DURATION)
    cluster.stop()
    availability.finish(DURATION)
    summary = availability.summary()
    return {
        "lost_sessions": outcome.get("lost_sessions", 0),
        "downtime_s": summary["downtime"],
        "availability": summary["availability"],
        "commit_p50_ms": driver.metrics.write_latency.percentile(50) * 1000,
        "failed_txns": driver.metrics.throughput.failed,
        "completed": driver.metrics.throughput.completed,
        "promotion_epoch": (pair.promotions[-1].epoch
                            if pair is not None and pair.promotions
                            else None),
    }


def test_e09_load_balancer_spof(benchmark):
    def experiment():
        return {
            "centralized": run_scenario(ha_standby=False),
            "replicated": run_scenario(ha_standby=True),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    central, replicated = results["centralized"], results["replicated"]

    report = Report(
        "E09  Centralized vs replicated middleware state (section 3.2)",
        ["certifier", "lost in-flight sessions", "downtime (s)",
         "availability", "commit p50 (ms)", "failed txns", "completed"])
    report.add_row("centralized", central["lost_sessions"],
                   central["downtime_s"], central["availability"],
                   central["commit_p50_ms"], central["failed_txns"],
                   central["completed"])
    report.add_row("replicated", replicated["lost_sessions"],
                   replicated["downtime_s"], replicated["availability"],
                   replicated["commit_p50_ms"], replicated["failed_txns"],
                   replicated["completed"])
    report.note("replication of the coordinator trades per-commit "
                "synchronization for fast takeover")
    report.show()

    # total outage with in-flight loss in both cases (the middleware died)
    assert central["lost_sessions"] > 0
    # centralized recovery is much longer
    assert central["downtime_s"] > replicated["downtime_s"] * 5
    assert replicated["availability"] > central["availability"]
    # the replicated certifier costs commit latency during normal operation
    assert replicated["commit_p50_ms"] > central["commit_p50_ms"]
    benchmark.extra_info["central_downtime_s"] = round(central["downtime_s"], 2)
    benchmark.extra_info["replicated_commit_overhead_ms"] = round(
        replicated["commit_p50_ms"] - central["commit_p50_ms"], 3)
