"""E24 — §4.1/§4.3: consistency-aware result caching at the middleware.

C-JDBC-style middleware can answer read traffic from a result cache
without touching any replica — but only if invalidation is driven by the
same certified writeset stream that replication itself trusts, and only
if each hit is admitted by the session's consistency protocol.  Three
scenarios:

* **read_scaleout** — a read-mostly point-lookup workload (98% reads,
  zipf-ish hot set) through the full middleware stack, cache on vs off.
  The cache answers hot reads before parsing, routing or execution, so
  the assertion pins a >=5x throughput gain.
* **invalidation_storm** — warm cache, then a write burst over the whole
  keyspace.  Every post-burst read must observe the new values (the
  writeset stream kills entries at key granularity), after which the
  hit rate recovers.
* **consistency_check** — per protocol (1sr, strong-si,
  strong-session-si, gsi): interleaved writers and readers with
  monotonically increasing version stamps.  A checker asserts zero
  violations: no invented values, strong protocols always read the
  latest commit, session protocols read their own writes, and every
  session observes per-key monotone versions.  1SR must bypass the
  cache entirely.

Results land in ``BENCH_e24.json``.  Correctness assertions are
deterministic; the >=5x speedup is wall-clock but the hit path skips
parse+route+execute entirely, leaving orders of magnitude of headroom.
"""

import json
import random
import time
from pathlib import Path

from repro.bench import Report, build_cluster
from repro.cache import ResultCacheConfig

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_e24.json"
SEED = 24
KEYSPACE = 500
HOT_KEYS = 64
MIN_SPEEDUP = 5.0


def make_cluster(consistency, cached, replication="writeset"):
    mw = build_cluster(
        count=3, replication=replication, consistency=consistency,
        propagation="sync",
        result_cache=ResultCacheConfig(capacity=4096) if cached else None,
        name=f"e24_{consistency}_{int(cached)}")
    session = mw.connect(database="shop")
    session.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
    for k in range(KEYSPACE):
        session.execute(f"INSERT INTO kv (k, v) VALUES ({k}, 0)")
    session.close()
    return mw


def mixed_ops(count: int, rng: random.Random):
    """A seeded read-mostly schedule: (kind, key) pairs."""
    ops = []
    for _ in range(count):
        if rng.random() < 0.98:
            if rng.random() < 0.95:
                key = rng.randrange(HOT_KEYS)
            else:
                key = rng.randrange(KEYSPACE)
            ops.append(("read", key))
        else:
            ops.append(("write", rng.randrange(KEYSPACE)))
    return ops


def run_read_scaleout(ops_count: int = 2000):
    schedule = mixed_ops(ops_count, random.Random(SEED))
    out = {}
    for cached in (False, True):
        mw = make_cluster("gsi", cached)
        session = mw.connect(database="shop")
        version = 0
        start = time.perf_counter()
        for kind, key in schedule:
            if kind == "read":
                session.execute("SELECT v FROM kv WHERE k = ?", [key])
            else:
                version += 1
                session.execute("UPDATE kv SET v = ? WHERE k = ?",
                                [version, key])
        elapsed = time.perf_counter() - start
        session.close()
        label = "cache_on" if cached else "cache_off"
        out[label] = {
            "ops_per_sec": ops_count / elapsed if elapsed > 0 else
            float("inf"),
        }
        if cached:
            snap = mw.result_cache.snapshot()
            out[label]["hit_rate"] = snap["hit_rate"]
            out[label]["fills"] = snap["fills"]
            out[label]["cache_bypassed_reads"] = \
                mw.config.balancer.cache_bypasses
    out["speedup"] = (out["cache_on"]["ops_per_sec"]
                      / out["cache_off"]["ops_per_sec"])
    return out


def run_invalidation_storm():
    mw = make_cluster("gsi", cached=True)
    session = mw.connect(database="shop")
    model = {k: 0 for k in range(KEYSPACE)}

    # warm: every key cached, plus a broad aggregate
    for k in range(KEYSPACE):
        session.execute("SELECT v FROM kv WHERE k = ?", [k])
    session.execute("SELECT COUNT(*) FROM kv")
    warm_size = len(mw.result_cache)

    # storm: one write per key, certified through the writeset stream
    for k in range(KEYSPACE):
        model[k] = k + 1000
        session.execute("UPDATE kv SET v = ? WHERE k = ?", [model[k], k])
    stats = mw.result_cache.stats
    storm = {
        "warm_entries": warm_size,
        "entries_after_storm": len(mw.result_cache),
        "invalidated_entries": stats["invalidated_entries"],
        "invalidation_events": stats["invalidation_events"],
    }

    # every post-storm read must observe the burst
    stale_values = 0
    for k in range(KEYSPACE):
        value = session.execute("SELECT v FROM kv WHERE k = ?",
                                [k]).scalar()
        if value != model[k]:
            stale_values += 1
    storm["stale_values_after_storm"] = stale_values

    # and the hit rate recovers once re-warmed
    hits_before = stats["hits"]
    for k in range(KEYSPACE):
        session.execute("SELECT v FROM kv WHERE k = ?", [k])
    storm["recovered_hits"] = stats["hits"] - hits_before
    session.close()
    return storm


PROTOCOLS = ("1sr", "strong-si", "strong-session-si", "gsi")
STRONG = {"1sr", "strong-si"}


def run_consistency_check(protocol: str, ops_count: int = 1200):
    replication = "statement" if protocol == "1sr" else "writeset"
    mw = make_cluster(protocol, cached=True, replication=replication)
    rng = random.Random(SEED + hash(protocol) % 1000)
    writer = mw.connect(database="shop")
    readers = [mw.connect(database="shop") for _ in range(3)]
    sessions = [writer] + readers

    model = {k: 0 for k in range(KEYSPACE)}
    history = {k: {0} for k in range(KEYSPACE)}
    last_seen = {}          # (session index, key) -> version
    own_writes = {}         # key -> version written by `writer`
    version = 0
    violations = []

    for _ in range(ops_count):
        key = rng.randrange(HOT_KEYS)
        if rng.random() < 0.25:
            version += 1
            writer.execute("UPDATE kv SET v = ? WHERE k = ?",
                           [version, key])
            model[key] = version
            history[key].add(version)
            own_writes[key] = version
        else:
            index = rng.randrange(len(sessions))
            session = sessions[index]
            result = session.execute("SELECT v FROM kv WHERE k = ?",
                                     [key])
            value = result.scalar()
            if getattr(result, "stale", False):
                violations.append(f"unrequested stale label on k={key}")
            if value not in history[key]:
                violations.append(
                    f"invented value {value} for k={key}")
            if protocol in STRONG and value != model[key]:
                violations.append(
                    f"{protocol}: k={key} read {value}, "
                    f"latest committed {model[key]}")
            if session is writer and protocol != "gsi" \
                    and key in own_writes and value < own_writes[key]:
                violations.append(
                    f"lost own write on k={key}: {value} < "
                    f"{own_writes[key]}")
            seen = last_seen.get((index, key))
            if seen is not None and value < seen:
                violations.append(
                    f"non-monotonic read on k={key}: {value} < {seen}")
            last_seen[(index, key)] = value

    stats = dict(mw.result_cache.stats)
    for session in sessions:
        session.close()
    return {
        "violations": violations,
        "hits": stats["hits"],
        "bypass_protocol": stats["bypass_protocol"],
        "fills": stats["fills"],
    }


def test_e24_result_cache(benchmark):
    def experiment():
        return {
            "read_scaleout": run_read_scaleout(),
            "invalidation_storm": run_invalidation_storm(),
            "consistency_check": {
                protocol: run_consistency_check(protocol)
                for protocol in PROTOCOLS
            },
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    scaleout = results["read_scaleout"]
    report = Report(
        "E24  Consistency-aware result cache (sections 4.1, 4.3)",
        ["scenario", "metric", "value"])
    report.add_row("read_scaleout", "ops/sec cache off",
                   round(scaleout["cache_off"]["ops_per_sec"], 1))
    report.add_row("read_scaleout", "ops/sec cache on",
                   round(scaleout["cache_on"]["ops_per_sec"], 1))
    report.add_row("read_scaleout", "speedup",
                   round(scaleout["speedup"], 2))
    report.add_row("read_scaleout", "hit rate",
                   round(scaleout["cache_on"]["hit_rate"], 3))
    storm = results["invalidation_storm"]
    for metric in ("warm_entries", "invalidated_entries",
                   "stale_values_after_storm", "recovered_hits"):
        report.add_row("invalidation_storm", metric, storm[metric])
    for protocol in PROTOCOLS:
        check = results["consistency_check"][protocol]
        report.add_row(f"consistency[{protocol}]", "violations",
                       len(check["violations"]))
        report.add_row(f"consistency[{protocol}]", "cache hits",
                       check["hits"])
    report.note("read_scaleout: 2000 ops, 98% reads, 64-key hot set; "
                "checker: interleaved writers/readers, monotone stamps")
    report.show()

    # scenario A: the tentpole claim
    assert scaleout["speedup"] >= MIN_SPEEDUP, \
        (f"cache-on read-mostly throughput only "
         f"{scaleout['speedup']:.1f}x cache-off (need {MIN_SPEEDUP}x)")
    assert scaleout["cache_on"]["hit_rate"] >= 0.5

    # scenario B: invalidation is complete and key-granular
    assert storm["stale_values_after_storm"] == 0, \
        "a post-storm read observed a pre-storm value"
    assert storm["invalidated_entries"] >= storm["warm_entries"]
    assert storm["recovered_hits"] == KEYSPACE

    # scenario C: zero violations under every protocol; 1SR never caches
    for protocol in PROTOCOLS:
        check = results["consistency_check"][protocol]
        assert check["violations"] == [], \
            f"{protocol}: {check['violations'][:5]}"
        if protocol == "1sr":
            assert check["hits"] == 0 and check["fills"] == 0
        else:
            assert check["hits"] > 0

    payload = {
        "experiment": "e24_result_cache",
        "keyspace": KEYSPACE,
        "hot_keys": HOT_KEYS,
        "min_speedup": MIN_SPEEDUP,
        "read_scaleout": scaleout,
        "invalidation_storm": storm,
        "consistency_check": {
            protocol: {
                "violations": len(check["violations"]),
                "hits": check["hits"],
                "fills": check["fills"],
                "bypass_protocol": check["bypass_protocol"],
            }
            for protocol, check in results["consistency_check"].items()
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info["read_scaleout_speedup"] = scaleout["speedup"]
    benchmark.extra_info["hit_rate"] = scaleout["cache_on"]["hit_rate"]
