"""E21 — section 4.4.3: software upgrades.

Claims:
* a rolling engine upgrade (one replica at a time, temporarily
  heterogeneous versions) keeps the service up with only a capacity dip;
* a full-stop upgrade is a complete outage;
* driver upgrades dwarf server upgrades when clients are many.
"""

from repro.bench import ClosedLoopDriver, Report, TimedCluster, build_cluster, load_workload
from repro.cluster import Environment
from repro.core import ClusterManager, FailoverManager, ReplicaState
from repro.workloads import MicroWorkload

DURATION = 6.0
UPGRADE_START = 1.5
PER_NODE_TIME = 1.0


def run_upgrade(style: str) -> dict:
    env = Environment()
    middleware = build_cluster(3, replication="writeset",
                               propagation="async", consistency="gsi",
                               env=env)
    workload = MicroWorkload(rows=200, read_fraction=0.8)
    load_workload(middleware, workload)
    cluster = TimedCluster(env, middleware, apply_parallelism=4)
    driver = ClosedLoopDriver(cluster, workload, clients=6)
    manager = ClusterManager(middleware)
    failover = FailoverManager(middleware)
    outage = {"window": 0.0}

    def rolling():
        yield env.timeout(UPGRADE_START)
        for replica in list(middleware.replicas):
            manager.remove_replica(replica.name)
            yield env.timeout(PER_NODE_TIME)      # patching the node
            replica.engine.dialect = replica.engine.dialect.with_version(
                "9.9")
            # re-add via the recovery log; replay what was missed
            for entry in middleware.recovery_log.entries_since(
                    replica.applied_seq):
                middleware.recovery_log.replay_entry(replica.engine, entry)
                replica.applied_seq = entry.seq
            replica.apply_queue.clear()
            replica.set_state(ReplicaState.ONLINE)

    def full_stop():
        yield env.timeout(UPGRADE_START)
        down_at = env.now
        for session in list(middleware.sessions):
            session.close()
        for replica in middleware.replicas:
            replica.set_state(ReplicaState.OFFLINE)
        yield env.timeout(PER_NODE_TIME * 3)      # patch all, offline
        for replica in middleware.replicas:
            replica.engine.dialect = replica.engine.dialect.with_version(
                "9.9")
            replica.set_state(ReplicaState.ONLINE)
        outage["window"] = env.now - down_at

    env.process(rolling() if style == "rolling" else full_stop(),
                name="upgrade")
    driver.start(duration=DURATION)
    env.run(until=DURATION)
    cluster.stop()
    middleware.pump()
    versions = {r.engine.dialect.version for r in middleware.replicas}
    return {
        "completed": driver.metrics.throughput.completed,
        "failed": driver.metrics.throughput.failed,
        "outage_s": outage["window"],
        "upgraded": versions == {"9.9"},
        "converged": middleware.check_convergence(online_only=False),
    }


def test_e21_rolling_vs_full_stop_upgrade(benchmark):
    def experiment():
        return {
            "rolling": run_upgrade("rolling"),
            "full_stop": run_upgrade("full_stop"),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rolling, full_stop = results["rolling"], results["full_stop"]

    report = Report(
        "E21  Engine upgrade: rolling vs full stop (section 4.4.3)",
        ["style", "txns completed", "txns failed", "outage (s)",
         "all upgraded", "converged"])
    for name, row in results.items():
        report.add_row(name, row["completed"], row["failed"],
                       row["outage_s"], row["upgraded"], row["converged"])
    from repro.core import ClusterManager as CM
    costs = CM.driver_upgrade_cost(client_machines=500)
    report.note(f"driver-side upgrade for 500 clients: "
                f"{costs['client_minutes']:.0f} min vs "
                f"{costs['server_minutes']:.0f} min for the servers "
                f"({costs['ratio']:.0f}x — section 4.3.1)")
    report.show()

    assert rolling["upgraded"] and full_stop["upgraded"]
    assert rolling["converged"] and full_stop["converged"]
    # rolling kept the service up: zero outage window, more work done
    assert rolling["outage_s"] == 0.0
    assert full_stop["outage_s"] >= PER_NODE_TIME * 3
    assert rolling["completed"] > full_stop["completed"] * 1.1
    benchmark.extra_info["rolling_completed"] = rolling["completed"]
    benchmark.extra_info["full_stop_outage_s"] = full_stop["outage_s"]
