"""The timed execution layer: runs *real* middleware SQL under the
discrete-event simulator, charging service times from the cost model.

Design: state changes (the actual SQL against the in-memory engines) are
instantaneous; what the simulation adds is *where the time goes* — replica
CPU queueing, total-order rounds, certification, asynchronous apply
workers.  The driver first makes the routing decision through the same
middleware code the synchronous path uses, charges the simulated cost on
the chosen node(s), then executes the statement with a routing override so
the middleware's state change lands on the replica that was charged.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..cluster.nodes import NodeDown
from ..cluster.sim import Environment, Store
from ..core.admission import AdmissionGate
from ..core.analysis import analyze
from ..core.applysched import conflict_groups, item_units, lane_makespan
from ..core.costmodel import CostModel
from ..core.loadbalancer import RoutingContext
from ..core.middleware import MiddlewareSession, ReplicationMiddleware
from ..metrics.perf import LatencyRecorder, ThroughputMeter, TimeSeries
from ..sqlengine import ast_nodes as ast
from ..sqlengine.parser import parameterize_literals, parse_script
from ..workloads.generator import TxnSpec, Workload
from ..workloads.openloop import OpenLoopWorkload, RateCurve, arrival_times


class _Gather:
    """One in-progress group-commit gather window."""

    __slots__ = ("members", "closed")

    def __init__(self):
        self.members: List[_GatherMember] = []
        self.closed = False


class _GatherMember:
    """One commit waiting in a gather.  The leader (first member) has no
    signal; followers park on theirs until the leader flushes."""

    __slots__ = ("session", "local", "work", "signal", "error")

    def __init__(self, session, local, work, signal):
        self.session = session
        self.local = local
        self.work = work
        self.signal = signal
        self.error = None


class TimedCluster:
    """Wires a middleware cluster into a simulation environment."""

    def __init__(self, env: Environment,
                 middleware: ReplicationMiddleware,
                 cost_model: Optional[CostModel] = None,
                 client_latency: float = 0.0003,
                 ordering_delay: Optional[float] = None,
                 apply_parallelism: int = 1,
                 cold_read_penalty: float = 0.0,
                 group_commit_window: float = 0.0,
                 group_commit_max: int = 64,
                 dependency_apply: bool = False,
                 apply_drain_batch: int = 16,
                 certifier_serial: bool = False):
        self.env = env
        self.middleware = middleware
        self.cost = cost_model or CostModel()
        self.client_latency = client_latency
        # total-order round (sequencer: to-orderer + fan-out)
        self.ordering_delay = (ordering_delay if ordering_delay is not None
                               else 2 * client_latency)
        self.apply_parallelism = max(1, apply_parallelism)
        # Buffer-pool locality model (Tashkent+ experiments, E08): reads of
        # tables outside the replica's working set cost
        # (1 + cold_read_penalty) x the nominal service time.
        self.cold_read_penalty = cold_read_penalty
        # Group commit (repro.core.groupcommit): writeset commits arriving
        # within ``group_commit_window`` seconds join one certifier batch
        # and one propagation frame per replica (0 = per-transaction).
        self.group_commit_window = group_commit_window
        self.group_commit_max = max(1, group_commit_max)
        # Dependency-parallel apply: drain up to ``apply_drain_batch``
        # queued items, partition by footprint overlap and run the
        # non-conflicting groups on ``apply_parallelism`` lanes.
        self.dependency_apply = dependency_apply
        self.apply_drain_batch = max(1, apply_drain_batch)
        # The paper's section 2.2 point: certification is a *serial*
        # total-order point.  When modeled (E27), every commit holds the
        # certifier for its ordering round; a group-commit batch holds it
        # once for the whole group.
        self._cert_lock: Optional[Store] = None
        if certifier_serial:
            self._cert_lock = Store(env)
            self._cert_lock.put(1)
        self._gc_current: Optional[_Gather] = None
        if group_commit_window > 0:
            middleware.group_commit.record_flush = True
        self._running = True
        self._signals: Dict[str, Store] = {}
        self._analysis_cache: Dict[str, list] = {}
        self._param_fail: set = set()
        # sql -> (template pairs, extracted values): hot Zipf keys skip
        # the rewrite regex on repeat appearances
        self._param_memo: Dict[str, tuple] = {}
        # Driver-side auto-parameterization: key-bearing point statements
        # share one parsed+analyzed template instead of thrashing the
        # analysis cache (one entry per key value).  Disabled = the
        # BENCH_e23-era parse-per-key behaviour (the E28 compat arm).
        self.auto_parameterize = True
        if middleware.config.propagation == "async":
            self._start_apply_workers()

    # ------------------------------------------------------------------
    # apply workers (asynchronous propagation)
    # ------------------------------------------------------------------

    def _start_apply_workers(self) -> None:
        for replica in self.middleware.replicas:
            self._signals[replica.name] = Store(self.env)
            self.env.process(self._apply_worker(replica),
                             name=f"apply:{replica.name}")

        def wake(replica, item) -> None:
            signal = self._signals.get(replica.name)
            if signal is not None:
                signal.put(1)

        self.middleware.on_apply_enqueued = wake
        # anything already queued (e.g. workload setup) must drain too
        for replica in self.middleware.replicas:
            if replica.apply_queue:
                self._signals[replica.name].put(1)

    def _apply_worker(self, replica):
        """Drains the replica's apply queue.  ``apply_parallelism`` items
        are in flight at once (1 = the serial apply whose lag section 2.2
        complains about); with ``dependency_apply`` the drained run is
        partitioned by footprint overlap and non-conflicting groups share
        the lanes (conflicting/opaque work still serializes)."""
        signal = self._signals[replica.name]
        while self._running:
            yield signal.get()
            while replica.apply_queue and self._running:
                if not replica.is_online:
                    break
                # Peek (do not pop): a commit-time synchronous drain may
                # race with us, and both paths must consume the queue
                # strictly from the head to preserve apply order.
                peek = (self.apply_drain_batch if self.dependency_apply
                        else self.apply_parallelism)
                batch: List = replica.peek_batch(peek)
                units = []
                for item in batch:
                    units.extend(item_units(item))
                try:
                    if replica.node is not None and units:
                        service, io_fraction = self._apply_service(units)
                        yield from replica.node.execute(
                            service, io_fraction=io_fraction)
                except NodeDown:
                    break
                highest = batch[-1].seq
                for item in replica.drain(up_to_seq=highest):
                    self.middleware._apply_item(replica, item)

    def _apply_service(self, units) -> Tuple[float, float]:
        """Simulated cost of applying ``units`` on one replica: CPU parts
        serialize on the node, IO parts overlap across the apply lanes.
        Without dependency scheduling every unit gets its own lane (the
        historical unconditional k-way pipeline); with it, lanes hold
        whole conflict groups, so overlap is only what commutativity
        actually allows."""
        io_f = self.cost.apply_io_fraction
        if self.dependency_apply:
            groups = conflict_groups(units)
            lanes = self.apply_parallelism
        else:
            groups = [[unit] for unit in units]
            lanes = len(groups)
        group_costs = [sum(self.cost.apply_cost(len(unit.entries))
                           for unit in group) for group in groups]
        loads = lane_makespan(group_costs, lanes)
        cpu_total = sum(group_costs) * (1 - io_f)
        io_lane = (max(loads) if loads else 0.0) * io_f
        combined = cpu_total + io_lane
        if combined <= 0:
            return 0.0, 0.0
        return combined, io_lane / combined

    def stop(self) -> None:
        self._running = False
        for signal in self._signals.values():
            signal.put(0)

    # ------------------------------------------------------------------
    # timed statement execution
    # ------------------------------------------------------------------

    def run_transaction(self, session: MiddlewareSession, spec: TxnSpec):
        """Generator: execute ``spec`` with simulated timing.  Returns
        (latency_seconds, ok, error_kind)."""
        start = self.env.now
        try:
            if len(spec.statements) == 1:
                sql, params = spec.statements[0]
                yield from self._timed_statement(session, sql, params)
            else:
                yield from self._timed_statement(session, "BEGIN", [])
                for sql, params in spec.statements:
                    yield from self._timed_statement(session, sql, params)
                yield from self._timed_statement(session, "COMMIT", [])
            return (self.env.now - start, True, "")
        except Exception as exc:  # noqa: BLE001 — abort accounting
            try:
                session.execute("ROLLBACK")
            except Exception:  # noqa: BLE001
                pass
            return (self.env.now - start, False, type(exc).__name__)

    def _statements_of(self, sql: str,
                       allow_params: bool = True) -> Tuple[list, list]:
        """Parsed+analyzed statements for ``sql`` plus extracted params.

        Key-bearing point statements are auto-parameterized first so the
        whole key space shares one cached template; everything else is
        cached under its own text (stable strings like BEGIN/COMMIT)."""
        cached = self._analysis_cache.get(sql)
        if cached is not None:
            return cached, []
        if allow_params and self.auto_parameterize:
            memo = self._param_memo.get(sql)
            if memo is not None:
                return memo
            prepared = parameterize_literals(sql)
            if prepared is not None:
                template, values = prepared
                pairs = self._analysis_cache.get(template)
                if pairs is None and template not in self._param_fail:
                    try:
                        pairs = [(stmt, analyze(stmt))
                                 for stmt in parse_script(template)]
                    except Exception:  # noqa: BLE001 — unparsable template
                        self._param_fail.add(template)
                        pairs = None
                    else:
                        if len(self._analysis_cache) < 4096:
                            self._analysis_cache[template] = pairs
                if pairs is not None:
                    if len(self._param_memo) < 8192:
                        self._param_memo[sql] = (pairs, values)
                    return pairs, values
        pairs = [(stmt, analyze(stmt)) for stmt in parse_script(sql)]
        if len(self._analysis_cache) < 4096:
            self._analysis_cache[sql] = pairs
        return pairs, []

    def _timed_statement(self, session: MiddlewareSession, sql: str,
                         params: list):
        """One SQL string with simulated timing.  Inside a traced request
        (the driver set ``session.trace_context``, e.g. the chaos
        harness) the whole charge window runs under a ``timed.statement``
        span, and middleware spans nest beneath it."""
        parent = session.trace_context
        if parent is None or not parent:
            yield from self._timed_statement_inner(session, sql, params)
            return
        span = self.middleware.tracer.child_span(
            "timed.statement", parent, sql=sql[:80])
        session.trace_context = span if span else parent
        try:
            yield from self._timed_statement_inner(session, sql, params)
        except Exception as exc:
            if span:
                span.set_tag("error", type(exc).__name__)
            raise
        finally:
            session.trace_context = parent
            span.end()

    def _timed_statement_inner(self, session: MiddlewareSession, sql: str,
                               params: list):
        middleware = self.middleware
        # client -> middleware hop + middleware processing
        yield self.env.timeout(self.client_latency
                               + self.cost.middleware_cost())
        pairs, extracted = self._statements_of(sql,
                                               allow_params=not params)
        if extracted:
            params = extracted
        for statement, info in pairs:
            if isinstance(statement, (ast.BeginStatement,
                                      ast.RollbackStatement)):
                session.execute_one_parsed(statement, sql, params)
                continue
            if isinstance(statement, ast.CommitStatement):
                yield from self._timed_commit(session, statement, sql, params)
                continue
            if info.is_read_only:
                yield from self._timed_read(session, statement, info, sql,
                                            params)
            else:
                yield from self._timed_write(session, statement, info, sql,
                                             params)

    def _timed_read(self, session, statement, info, sql, params):
        middleware = self.middleware
        yield from self._wait_for_freshness(session)
        replica = middleware.choose_read_replica(session, info)
        if replica.node is not None:
            service = self.cost.statement_cost(info)
            if self.cold_read_penalty > 0:
                tables = info.sorted_tables()
                hotness = replica.hotness(tables) if tables else 1.0
                service *= 1.0 + self.cold_read_penalty * (1.0 - hotness)
            yield from replica.node.execute(service, io_fraction=0.1)
        session.route_override = replica.name
        try:
            session.execute_one_parsed(statement, sql, params)
        finally:
            session.route_override = None

    def _timed_write(self, session, statement, info, sql, params):
        middleware = self.middleware
        config = middleware.config
        statement_cost = self.cost.statement_cost(info)
        autocommit = not session.in_transaction
        if config.replication == "statement" \
                and config.consistency.write_mode != "master":
            # total order + parallel execution at every online replica
            yield self.env.timeout(self.ordering_delay)
            tasks = []
            for replica in middleware.online_replicas():
                if replica.node is not None:
                    tasks.append(self.env.process(replica.node.execute(
                        statement_cost, io_fraction=self.cost.io_fraction)))
            if tasks:
                yield self.env.all_of(tasks)
                yield self.env.timeout(self.ACK_PROCESSING * len(tasks))
            if autocommit:
                yield from self._charge_statement_commit()
            session.execute_one_parsed(statement, sql, params)
            return
        # writeset / master mode: execute at the local replica only
        replica = self._local_write_replica(session, info)
        if replica is not None and replica.node is not None:
            yield from replica.node.execute(
                statement_cost, io_fraction=self.cost.io_fraction)
        if autocommit and replica is not None \
                and self.group_commit_window > 0 and not info.is_ddl \
                and config.replication == "writeset":
            # the autocommit write's commit joins the current gather; the
            # batch leader runs the state change at flush time
            def work():
                session.write_override = replica.name
                try:
                    session.execute_one_parsed(statement, sql, params)
                finally:
                    session.write_override = None
            yield from self._group_commit_run(session, replica, work)
            return
        if autocommit and replica is not None:
            yield from self._charge_writeset_commit(replica)
        if replica is not None:
            session.write_override = replica.name
        try:
            session.execute_one_parsed(statement, sql, params)
        finally:
            session.write_override = None

    # Middleware-side per-replica acknowledgement processing: collecting N
    # replies serializes at the coordinator, so broadcast cost grows
    # (slightly) with the cluster size even when replicas run in parallel.
    ACK_PROCESSING = 0.00008

    def _charge_statement_commit(self):
        """Commit IO forced in parallel at every replica (statement mode),
        plus coordinator-side acknowledgement collection."""
        tasks = []
        online = self.middleware.online_replicas()
        for replica in online:
            if replica.node is not None:
                tasks.append(self.env.process(replica.node.execute(
                    self.cost.commit_io, io_fraction=0.9)))
        if tasks:
            yield self.env.all_of(tasks)
        yield self.env.timeout(self.ACK_PROCESSING * len(online))

    def _charge_writeset_commit(self, local):
        """Certification round, pending-prefix catch-up, local commit IO,
        and (under synchronous propagation) the remote applies."""
        middleware = self.middleware
        # A replicated certifier and HA state shipping (repro.ha) both
        # add one synchronous coordinator round-trip to every commit —
        # the price of losing nothing on failover (E09 / E26).
        replicated = (middleware.certifier.replicated
                      or middleware.state_shipper is not None)
        certification_rounds = 2 if replicated else 1
        yield from self._charge_certification(
            self.ordering_delay * certification_rounds
            + self.cost.certification)
        if local.node is not None:
            pending = len(local.apply_queue)
            if pending:
                yield from local.node.execute(
                    self.cost.writeset_apply * pending,
                    io_fraction=self.cost.io_fraction)
            yield from local.node.execute(self.cost.commit_io,
                                          io_fraction=0.9)
        if middleware.config.propagation == "sync":
            tasks = []
            for replica in middleware.online_replicas():
                if replica.name != local.name and replica.node is not None:
                    tasks.append(self.env.process(replica.node.execute(
                        self.cost.writeset_apply,
                        io_fraction=self.cost.io_fraction)))
            if tasks:
                yield self.env.all_of(tasks)

    def _charge_certification(self, service: float):
        """The ordering round + certification check.  When the serial
        total-order point is modeled, the whole round holds the certifier
        exclusively — concurrent commits queue behind it."""
        if self._cert_lock is None:
            yield self.env.timeout(service)
            return
        yield self._cert_lock.get()
        try:
            yield self.env.timeout(service)
        finally:
            self._cert_lock.put(1)

    # ------------------------------------------------------------------
    # group commit (gather window)
    # ------------------------------------------------------------------

    def _group_commit_run(self, session, local, work):
        """Join (or lead) the current group-commit gather.  The first
        arrival becomes the batch leader: it waits out the gather window,
        charges one shared certification round plus one amortized log
        force per origin, then executes every member's state change
        inside ``middleware.group_commit.batch()`` — one certifier batch,
        one propagation frame per replica.  Members park on a signal and
        re-raise their own outcome (e.g. a certification abort)."""
        gather = self._gc_current
        if gather is not None and not gather.closed \
                and len(gather.members) < self.group_commit_max:
            member = _GatherMember(session, local, work, Store(self.env))
            gather.members.append(member)
            yield member.signal.get()
            if member.error is not None:
                raise member.error
            return
        gather = _Gather()
        leader = _GatherMember(session, local, work, None)
        gather.members.append(leader)
        self._gc_current = gather
        yield self.env.timeout(self.group_commit_window)
        gather.closed = True
        if self._gc_current is gather:
            self._gc_current = None
        middleware = self.middleware
        try:
            yield from self._charge_group_precommit(gather)
            with middleware.group_commit.batch():
                for member in gather.members:
                    try:
                        member.work()
                    except Exception as exc:  # noqa: BLE001 — per-member outcome
                        member.error = exc
            yield from self._charge_group_postcommit()
        except Exception as exc:  # noqa: BLE001 — e.g. NodeDown mid-charge
            for member in gather.members:
                if member.error is None:
                    member.error = exc
        finally:
            for member in gather.members[1:]:
                member.signal.put(1)
        if leader.error is not None:
            raise leader.error

    def _charge_group_precommit(self, gather):
        """One certification round for the whole batch (plus a small
        per-transaction CPU term), then per-origin pending-prefix
        catch-up and ONE group-committed log force per origin."""
        middleware = self.middleware
        cost = self.cost
        members = gather.members
        replicated = (middleware.certifier.replicated
                      or middleware.state_shipper is not None)
        certification_rounds = 2 if replicated else 1
        yield from self._charge_certification(
            self.ordering_delay * certification_rounds
            + cost.certification
            + cost.certify_txn_cpu * (len(members) - 1))
        by_origin: Dict[str, int] = {}
        for member in members:
            by_origin[member.local.name] = \
                by_origin.get(member.local.name, 0) + 1
        tasks = []
        for name, count in by_origin.items():
            replica = middleware.replica_by_name(name)
            if replica.node is None:
                continue
            service = (cost.writeset_apply * len(replica.apply_queue)
                       + cost.commit_io
                       + cost.group_commit_txn_io * (count - 1))
            tasks.append(self.env.process(
                replica.node.execute(service, io_fraction=0.9)))
        if tasks:
            yield self.env.all_of(tasks)
        yield self.env.timeout(self.ACK_PROCESSING * len(by_origin))

    def _charge_group_postcommit(self):
        """Charge the frames the flush applied synchronously (all of them
        under sync propagation; under async, only the origins' prefix
        frames) with the dependency-parallel apply cost; async
        destinations pay in their own apply workers instead."""
        flush = self.middleware.group_commit.last_flush
        self.middleware.group_commit.last_flush = None
        if not flush:
            return
        tasks = []
        for name in flush["sync"]:
            units = flush["frames"].get(name)
            if not units:
                continue
            replica = self.middleware.replica_by_name(name)
            if replica.node is None:
                continue
            service, io_fraction = self._apply_service(units)
            if service > 0:
                tasks.append(self.env.process(
                    replica.node.execute(service, io_fraction=io_fraction)))
        if tasks:
            yield self.env.all_of(tasks)

    def _wait_for_freshness(self, session, max_wait: float = 2.0):
        """Freshness waits cost real (simulated) time: when no replica is
        eligible for this session's reads, wait for the apply workers to
        advance instead of draining queues for free.  Falls through after
        ``max_wait`` (the synchronous drain then models a forced sync)."""
        middleware = self.middleware
        protocol = middleware.config.consistency
        if session.pinned_replica is not None or session.in_transaction:
            return
        deadline = self.env.now + max_wait
        while self.env.now < deadline:
            cluster_view = middleware.cluster_view()
            eligible = any(
                protocol.read_eligible(r, session.view, cluster_view)
                for r in middleware.online_replicas()
            )
            if eligible:
                return
            middleware.stats["freshness_waits"] += 1
            yield self.env.timeout(0.002)

    def _local_write_replica(self, session, info):
        middleware = self.middleware
        if session._local_replica is not None:
            return middleware.replica_by_name(session._local_replica)
        if middleware.config.consistency.write_mode == "master":
            return middleware.master
        context = RoutingContext(tables=sorted(info.all_tables()),
                                 session_id=session.id, is_write=True)
        return middleware.config.balancer.choose(
            middleware.online_replicas(), context)

    def _timed_commit(self, session, statement, sql, params):
        middleware = self.middleware
        config = middleware.config
        if not session.in_transaction:
            return
        was_write = session._txn_is_write
        if was_write and config.replication == "statement" \
                and config.consistency.write_mode != "master":
            yield from self._charge_statement_commit()
        elif was_write:
            local_name = session._local_replica
            local = (middleware.replica_by_name(local_name)
                     if local_name else middleware.master)
            if self.group_commit_window > 0 \
                    and config.replication == "writeset":
                yield from self._group_commit_run(
                    session, local,
                    lambda: session.execute_one_parsed(statement, sql,
                                                       params))
                return
            yield from self._charge_writeset_commit(local)
        session.execute_one_parsed(statement, sql, params)


# ---------------------------------------------------------------------------
# load drivers
# ---------------------------------------------------------------------------

class RunMetrics:
    """Collected by every driver."""

    def __init__(self, env: Environment):
        self.env = env
        self.latency = LatencyRecorder()
        self.read_latency = LatencyRecorder("read")
        self.write_latency = LatencyRecorder("write")
        self.throughput = ThroughputMeter()
        self.errors: Dict[str, int] = {}
        self.throughput.start(env.now)

    def note(self, spec: TxnSpec, latency: float, ok: bool,
             error_kind: str) -> None:
        if ok:
            self.latency.add(latency)
            if spec.is_read_only:
                self.read_latency.add(latency)
            else:
                self.write_latency.add(latency)
            self.throughput.note_completion(self.env.now)
        else:
            self.throughput.note_failure(self.env.now)
            self.errors[error_kind] = self.errors.get(error_kind, 0) + 1

    def rate(self, until: Optional[float] = None) -> float:
        return self.throughput.rate(until)


class ClosedLoopDriver:
    """N clients, each running transactions back-to-back with optional
    think time — the classic (criticized) academic load shape."""

    def __init__(self, cluster: TimedCluster, workload: Workload,
                 clients: int = 8, think_time: float = 0.0,
                 seed: int = 31, database: str = "shop",
                 retry_backoff: float = 0.05):
        self.cluster = cluster
        self.workload = workload
        self.clients = clients
        self.think_time = think_time
        self.seed = seed
        self.database = database
        # real clients back off after an error instead of hammering a
        # half-failed cluster
        self.retry_backoff = retry_backoff
        self.metrics = RunMetrics(cluster.env)

    def start(self, duration: float) -> None:
        env = self.cluster.env
        deadline = env.now + duration
        for client in range(self.clients):
            env.process(self._client_loop(client, deadline),
                        name=f"client{client}")

    def _client_loop(self, client_id: int, deadline: float):
        env = self.cluster.env
        rng = random.Random(self.seed + client_id * 101)
        session = self.cluster.middleware.connect(database=self.database)
        while env.now < deadline:
            spec = self.workload.next_transaction(rng)
            outcome = yield from self.cluster.run_transaction(session, spec)
            latency, ok, error_kind = outcome
            self.metrics.note(spec, latency, ok, error_kind)
            if not ok and self.retry_backoff > 0:
                yield env.timeout(self.retry_backoff)
            if session.closed:
                # middleware died under us: reconnect when it returns
                try:
                    session = self.cluster.middleware.connect(
                        database=self.database)
                except Exception:  # noqa: BLE001
                    yield env.timeout(0.5)
                    continue
            if self.think_time > 0:
                yield env.timeout(self.think_time)
        session.close()


class OpenLoopDriver:
    """Poisson arrivals at a fixed rate, independent of completions — the
    non-closed-loop generator the paper's agenda calls for (section 5.1).
    Under overload, latency grows without bound instead of the generator
    politely slowing down."""

    def __init__(self, cluster: TimedCluster, workload: Workload,
                 rate_tps: float = 100.0, seed: int = 37,
                 database: str = "shop", max_sessions: int = 256):
        self.cluster = cluster
        self.workload = workload
        self.rate = rate_tps
        self.seed = seed
        self.database = database
        self.max_sessions = max_sessions
        self.metrics = RunMetrics(cluster.env)
        self._free_sessions: List[MiddlewareSession] = []
        self._session_count = 0
        self.dropped_arrivals = 0

    def start(self, duration: float) -> None:
        self.cluster.env.process(self._arrivals(duration), name="arrivals")

    def _arrivals(self, duration: float):
        env = self.cluster.env
        rng = random.Random(self.seed)
        deadline = env.now + duration
        while env.now < deadline:
            yield env.timeout(rng.expovariate(self.rate))
            spec = self.workload.next_transaction(rng)
            session = self._acquire_session()
            if session is None:
                self.dropped_arrivals += 1
                continue
            env.process(self._one_transaction(session, spec))

    def _acquire_session(self) -> Optional[MiddlewareSession]:
        while self._free_sessions:
            session = self._free_sessions.pop()
            if not session.closed:
                return session
        if self._session_count >= self.max_sessions:
            return None
        try:
            session = self.cluster.middleware.connect(database=self.database)
        except Exception:  # noqa: BLE001 — middleware down
            return None
        self._session_count += 1
        return session

    def _one_transaction(self, session: MiddlewareSession, spec: TxnSpec):
        outcome = yield from self.cluster.run_transaction(session, spec)
        latency, ok, error_kind = outcome
        self.metrics.note(spec, latency, ok, error_kind)
        if not session.closed:
            self._free_sessions.append(session)
        else:
            self._session_count -= 1


class SessionArrivalDriver:
    """The million-user open-loop tier (ROADMAP item 4): *sessions*
    arrive per a :class:`RateCurve` (non-homogeneous Poisson, thinning),
    each runs a short Zipf-popular transaction sequence with think gaps,
    and an optional :class:`AdmissionGate` sheds excess arrivals at the
    door with labeled reasons.

    Unlike :class:`OpenLoopDriver`'s fixed-rate transaction stream, the
    unit of arrival is a session — the thing a flash crowd multiplies —
    and there is no pool cap: arrivals never politely wait.  Goodput
    accounting models impatient clients: a transaction that completes
    after ``txn_deadline`` simulated seconds still consumed server time
    (and an acked commit stays durable) but does not count as goodput —
    exactly the overload mode where shedding beats queueing.
    """

    def __init__(self, cluster: TimedCluster, workload: OpenLoopWorkload,
                 curve: RateCurve, seed: int = 41, database: str = "shop",
                 admission: Optional[AdmissionGate] = None,
                 txn_deadline: float = 0.75,
                 session_limit: int = 0):
        self.cluster = cluster
        self.workload = workload
        self.curve = curve
        self.seed = seed
        self.database = database
        self.gate = admission
        self.txn_deadline = txn_deadline
        self.session_limit = session_limit
        self.metrics = RunMetrics(cluster.env)
        self._pool: List[MiddlewareSession] = []
        self.peak_concurrency = 0
        self._active = 0
        # goodput / overload accounting
        self.sessions_arrived = 0
        self.sessions_completed = 0
        self.sessions_shed = 0
        self.shed_txns = 0
        self.goodput = 0
        self.deadline_misses = 0
        self.acked_commits = 0
        self.txns_issued = 0

    def start(self, duration: float) -> None:
        self.cluster.env.process(self._arrivals(duration),
                                 name="session_arrivals")

    def _arrivals(self, duration: float):
        env = self.cluster.env
        rng = random.Random(self.seed)
        start = env.now
        last = start
        for offset in arrival_times(self.curve, duration, rng,
                                    limit=self.session_limit):
            target = start + offset
            if target > last:
                yield env.timeout(target - last)
                last = target
            self.sessions_arrived += 1
            # independent per-session stream: workload content stays
            # identical across admission arms with the same seed
            session_rng = random.Random(
                (self.seed * 1_000_003) ^ (self.sessions_arrived * 2654435761))
            env.process(self._session(session_rng))

    def _session(self, rng: random.Random):
        env = self.cluster.env
        count = self.workload.session_length(rng)
        session = self._acquire_session()
        if session is None:
            self.metrics.errors["connect"] = \
                self.metrics.errors.get("connect", 0) + 1
            return
        self._active += 1
        if self._active > self.peak_concurrency:
            self.peak_concurrency = self._active
        try:
            for index in range(count):
                spec = self.workload.next_transaction(rng)
                kind = "read" if spec.is_read_only else "commit"
                ticket = None
                if self.gate is not None:
                    ticket, _reason = self.gate.try_admit(kind)
                    if ticket is None:
                        # a shed user goes away, not into a retry storm
                        self.shed_txns += 1
                        self.sessions_shed += 1
                        return
                self.txns_issued += 1
                outcome = yield from self.cluster.run_transaction(
                    session, spec)
                latency, ok, error_kind = outcome
                self.metrics.note(spec, latency, ok, error_kind)
                if ok and kind == "commit":
                    # the middleware acknowledged a durable commit — from
                    # here on it must never be shed or lost
                    self.acked_commits += 1
                    if ticket is not None:
                        ticket.ack()
                if ticket is not None:
                    ticket.finish(ok)
                if ok and latency <= self.txn_deadline:
                    self.goodput += 1
                elif ok:
                    self.deadline_misses += 1
                if not ok:
                    return
                if index + 1 < count:
                    yield env.timeout(self.workload.think_time(rng))
            self.sessions_completed += 1
        finally:
            self._active -= 1
            self._release_session(session)

    def _acquire_session(self) -> Optional[MiddlewareSession]:
        while self._pool:
            session = self._pool.pop()
            if not session.closed:
                return session
        try:
            return self.cluster.middleware.connect(database=self.database)
        except Exception:  # noqa: BLE001 — middleware down
            return None

    def _release_session(self, session: MiddlewareSession) -> None:
        if not session.closed:
            self._pool.append(session)

    def goodput_rate(self, duration: float) -> float:
        return self.goodput / duration if duration > 0 else 0.0

    def summary(self, duration: float) -> dict:
        """Plain-dict accounting for reports and BENCH artifacts."""
        out = {
            "sessions_arrived": self.sessions_arrived,
            "sessions_completed": self.sessions_completed,
            "sessions_shed": self.sessions_shed,
            "txns_issued": self.txns_issued,
            "shed_txns": self.shed_txns,
            "goodput_txns": self.goodput,
            "goodput_tps": self.goodput_rate(duration),
            "deadline_misses": self.deadline_misses,
            "acked_commits": self.acked_commits,
            "peak_concurrency": self.peak_concurrency,
            "errors": dict(self.metrics.errors),
            "p99_latency": self.metrics.latency.percentile(99.0),
        }
        if self.gate is not None:
            out["admission"] = self.gate.snapshot()
        return out


class TimedShardedCluster:
    """Wires a :class:`~repro.shard.router.ShardedCluster` into the
    simulation environment, duck-typing what the load drivers need
    (``env``, ``middleware.connect``, ``run_transaction``) so
    :class:`ClosedLoopDriver` and :class:`SessionArrivalDriver` drive the
    shard tier unchanged (E29 rides E28's open-loop session tier).

    Cost model, per the repo convention (state changes instantaneous,
    time charged separately): every statement pays the client hop plus
    its nominal service time on each target group in parallel, scatter
    reads add a per-extra-target merge term at the coordinator, and
    every *commit* holds the written groups' **ordering mutexes** for an
    ordering + certification round — one serial total-order point per
    group.  That per-group serial point is exactly the paper's section
    2.2 bottleneck, and sharding's payoff: N shards = N independent
    ordering points, so disjoint write traffic scales out (~Nx), while
    a cross-shard 2PC commit pays a prepare round on every participant,
    a decision-record append and a second (commit) round — the measured
    price of the dual-write window in E29's live-split scenario."""

    def __init__(self, env: Environment, cluster,
                 cost_model: Optional[CostModel] = None,
                 client_latency: float = 0.0003,
                 ordering_delay: Optional[float] = None):
        self.env = env
        self.cluster = cluster
        self.cost = cost_model or CostModel()
        self.client_latency = client_latency
        self.ordering_delay = (ordering_delay if ordering_delay is not None
                               else 2 * client_latency)
        # one serial total-order point per replication group
        self._order_locks: List[Store] = []
        for _group in cluster.groups:
            lock = Store(env)
            lock.put(1)
            self._order_locks.append(lock)
        self._analysis_cache: Dict[str, list] = {}
        self._param_memo: Dict[str, tuple] = {}
        self._param_fail: set = set()

    @property
    def middleware(self):
        """Driver duck-typing: the connectable frontend is the shard
        tier itself."""
        return self.cluster

    # ------------------------------------------------------------------

    def run_transaction(self, session, spec: TxnSpec):
        """Generator: execute ``spec`` against the shard tier with
        simulated timing.  Returns (latency_seconds, ok, error_kind)."""
        start = self.env.now
        try:
            if len(spec.statements) == 1:
                sql, params = spec.statements[0]
                yield from self._timed_statement(session, sql, params)
            else:
                yield from self._timed_statement(session, "BEGIN", [])
                for sql, params in spec.statements:
                    yield from self._timed_statement(session, sql, params)
                yield from self._timed_statement(session, "COMMIT", [])
            return (self.env.now - start, True, "")
        except Exception as exc:  # noqa: BLE001 — abort accounting
            try:
                session.rollback()
            except Exception:  # noqa: BLE001
                pass
            return (self.env.now - start, False, type(exc).__name__)

    def _statements_of(self, sql: str,
                       allow_params: bool = True) -> Tuple[list, list]:
        cached = self._analysis_cache.get(sql)
        if cached is not None:
            return cached, []
        if allow_params:
            memo = self._param_memo.get(sql)
            if memo is not None:
                return memo
            prepared = parameterize_literals(sql)
            if prepared is not None:
                template, values = prepared
                pairs = self._analysis_cache.get(template)
                if pairs is None and template not in self._param_fail:
                    try:
                        pairs = [(stmt, analyze(stmt))
                                 for stmt in parse_script(template)]
                    except Exception:  # noqa: BLE001 — unparsable template
                        self._param_fail.add(template)
                        pairs = None
                    else:
                        if len(self._analysis_cache) < 4096:
                            self._analysis_cache[template] = pairs
                if pairs is not None:
                    if len(self._param_memo) < 8192:
                        self._param_memo[sql] = (pairs, values)
                    return pairs, values
        pairs = [(stmt, analyze(stmt)) for stmt in parse_script(sql)]
        if len(self._analysis_cache) < 4096:
            self._analysis_cache[sql] = pairs
        return pairs, []

    def _timed_statement(self, session, sql: str, params: list):
        yield self.env.timeout(self.client_latency
                               + self.cost.middleware_cost())
        pairs, extracted = self._statements_of(sql,
                                               allow_params=not params)
        if extracted:
            params = extracted
        for statement, info in pairs:
            if isinstance(statement, (ast.BeginStatement,
                                      ast.RollbackStatement)):
                session.execute_one_parsed(statement, sql, params)
                continue
            autocommit = not session.in_transaction
            # state change is instantaneous; the routing trace then tells
            # us exactly which groups did work, and we charge them
            session.execute_one_parsed(statement, sql, params)
            route = session.last_route
            if route is None:
                continue
            if isinstance(statement, ast.CommitStatement):
                if route.get("kind") == "commit":
                    yield from self._charge_commit(route.get("commit"))
                continue
            yield from self._charge_statement(info, route)
            if route["write"] and autocommit:
                # an implicit commit ran inside the statement (either the
                # group session's autocommit or the router's implicit
                # multi-shard 2PC); the route note carries the mode
                commit = route.get("commit")
                if commit is None:
                    commit = {"mode": "fast",
                              "groups": list(route.get("targets") or ())}
                yield from self._charge_commit(commit)

    def _charge_statement(self, info, route: dict):
        service = self.cost.statement_cost(info)
        targets = route.get("targets") or ()
        if not route["write"] and len(targets) > 1:
            # scatter-gather: shards run in parallel, the coordinator
            # pays a merge term per extra partial result
            service += self.cost.middleware_cost() * (len(targets) - 1)
        yield self.env.timeout(service)

    def _charge_commit(self, commit: Optional[dict]):
        if not commit or not commit.get("groups"):
            return
        groups = commit["groups"]
        round_cost = self.ordering_delay + self.cost.certification
        if commit.get("mode") == "2pc":
            # prepare: every participant's ordering point, in parallel
            tasks = [self.env.process(self._ordered_round(g, round_cost))
                     for g in groups]
            yield self.env.all_of(tasks)
            # decision record + second (commit) round per participant
            yield self.env.timeout(self.cost.middleware_cost())
            tasks = [self.env.process(
                self._ordered_round(g, self.cost.commit_io))
                for g in groups]
            yield self.env.all_of(tasks)
            return
        # single-shard fast path: one group's ordinary pipeline
        yield from self._ordered_round(groups[0],
                                       round_cost + self.cost.commit_io)

    def _ordered_round(self, group_index: int, service: float):
        lock = self._order_locks[group_index]
        yield lock.get()
        try:
            yield self.env.timeout(service)
        finally:
            lock.put(1)


class LagProbe:
    """Samples per-replica apply lag over time (E07)."""

    def __init__(self, env: Environment,
                 middleware: ReplicationMiddleware,
                 interval: float = 0.5):
        self.env = env
        self.middleware = middleware
        self.interval = interval
        self.series: Dict[str, TimeSeries] = {
            r.name: TimeSeries(r.name) for r in middleware.replicas
        }
        self._running = True
        env.process(self._probe(), name="lag_probe")

    def _probe(self):
        while self._running:
            head = self.middleware.global_seq
            for replica in self.middleware.replicas:
                self.series[replica.name].add(
                    self.env.now, replica.lag_behind(head))
            yield self.env.timeout(self.interval)

    def stop(self) -> None:
        self._running = False
