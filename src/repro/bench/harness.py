"""Benchmark harness: cluster builders and report tables.

Every experiment in ``benchmarks/`` builds its system through these
helpers so configurations stay comparable, and prints its findings through
:class:`Report` so the regenerated "tables" look alike.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..cache import ResultCacheConfig
from ..cluster.nodes import Node
from ..cluster.sim import Environment
from ..core.consistency import ConsistencyProtocol, protocol_by_name
from ..core.loadbalancer import BalancingLevel, LoadBalancer, Policy, RoundRobinPolicy
from ..core.middleware import MiddlewareConfig, ReplicationMiddleware
from ..core.monitoring import Monitor
from ..core.replica import Replica
from ..core.resilience import ResiliencePolicy
from ..sqlengine import Engine
from ..sqlengine.dialects import Dialect, postgresql
from ..workloads.generator import Workload

DEFAULT_DATABASE = "shop"


def build_replicas(count: int,
                   dialect_factory: Callable[[], Dialect] = postgresql,
                   database: str = DEFAULT_DATABASE,
                   env: Optional[Environment] = None,
                   cores: int = 1,
                   speed_factors: Optional[Sequence[float]] = None,
                   name_prefix: str = "r") -> List[Replica]:
    """Create ``count`` fresh engines (optionally attached to simulated
    nodes) wrapped as replicas."""
    replicas = []
    for index in range(count):
        engine = Engine(f"{name_prefix}{index}", dialect=dialect_factory(),
                        seed=1000 + index)
        engine.create_database(database)
        node = None
        if env is not None:
            factor = 1.0
            if speed_factors is not None and index < len(speed_factors):
                factor = speed_factors[index]
            node = Node(env, f"{name_prefix}{index}", cores=cores,
                        speed_factor=factor)
        replicas.append(Replica(f"{name_prefix}{index}", engine, node=node))
    return replicas


def build_cluster(count: int = 3,
                  replication: str = "statement",
                  consistency: Optional[str] = None,
                  propagation: str = "sync",
                  policy: Optional[Policy] = None,
                  level: BalancingLevel = BalancingLevel.QUERY,
                  dialect_factory: Callable[[], Dialect] = postgresql,
                  database: str = DEFAULT_DATABASE,
                  env: Optional[Environment] = None,
                  cores: int = 1,
                  speed_factors: Optional[Sequence[float]] = None,
                  interleave_keys: bool = True,
                  nondeterminism: str = "rewrite",
                  compensate_counters: bool = True,
                  monitor: Optional[Monitor] = None,
                  resilience: Optional["ResiliencePolicy"] = None,
                  result_cache: Optional["ResultCacheConfig"] = None,
                  name: str = "mw") -> ReplicationMiddleware:
    """Build a ready-to-use middleware cluster."""
    replicas = build_replicas(count, dialect_factory, database, env=env,
                              cores=cores, speed_factors=speed_factors,
                              name_prefix=f"{name}_r")
    protocol: Optional[ConsistencyProtocol] = None
    if consistency is not None:
        protocol = protocol_by_name(consistency)
    config = MiddlewareConfig(
        replication=replication,
        consistency=protocol,
        balancer=LoadBalancer(policy or RoundRobinPolicy(), level),
        propagation=propagation,
        nondeterminism=nondeterminism,
        compensate_counters=compensate_counters,
        resilience=resilience,
        result_cache=result_cache,
    )
    if monitor is None and env is not None:
        monitor = Monitor(time_source=lambda: env.now)
    middleware = ReplicationMiddleware(replicas, config, name=name,
                                       monitor=monitor)
    return middleware


def build_sharded_cluster(shards: int = 2,
                          replicas: int = 2,
                          replication: str = "writeset",
                          consistency: str = "gsi",
                          propagation: str = "sync",
                          env: Optional[Environment] = None,
                          result_cache: Optional["ResultCacheConfig"] = None,
                          name: str = "shard",
                          **kwargs):
    """Build a :class:`~repro.shard.router.ShardedCluster` of ``shards``
    replication groups, each built through :func:`build_cluster` so the
    per-group pipeline matches the single-group experiments exactly."""
    from ..shard import ShardedCluster
    groups = [
        build_cluster(replicas, replication=replication,
                      consistency=consistency, propagation=propagation,
                      env=env, result_cache=result_cache,
                      name=f"{name}{index}", **kwargs)
        for index in range(shards)
    ]
    return ShardedCluster(groups, name=name)


def build_composed_cluster(shards: int = 3,
                           replicas: int = 2,
                           replication: str = "writeset",
                           consistency: str = "gsi",
                           propagation: str = "sync",
                           env: Optional[Environment] = None,
                           result_cache: Optional["ResultCacheConfig"] = None,
                           admission=None,
                           name: str = "comp",
                           **kwargs):
    """Build the full composed tier (E30, docs/TOPOLOGY.md): ``shards``
    replication groups, each fronted by an HA active/standby pair behind
    its virtual IP, all registered with one shard router.  Returns the
    :class:`~repro.shard.router.ShardedCluster`; per-group pairs are on
    ``cluster.pairs`` and the current leaders on ``cluster.groups``.

    The pair is built *before* any schema loads so the standby's
    bootstrap transfer starts empty and every later commit ships through
    the two-phase prepare/ack path — the same order the E26 chaos
    harness uses."""
    from ..ha import HAPair
    from ..shard import ShardedCluster
    pairs = []
    for index in range(shards):
        leader = build_cluster(replicas, replication=replication,
                               consistency=consistency,
                               propagation=propagation, env=env,
                               result_cache=result_cache,
                               name=f"{name}{index}", **kwargs)
        pairs.append(HAPair(leader))
    return ShardedCluster(pairs, name=name, admission=admission)


def load_workload(middleware: ReplicationMiddleware, workload: Workload,
                  database: str = DEFAULT_DATABASE) -> None:
    """Run the workload's setup DDL+data through the middleware so every
    replica starts identical, then re-apply key interleaving."""
    session = middleware.connect(database=database)
    try:
        for sql in workload.setup_sql():
            session.execute(sql)
    finally:
        session.close()
    middleware.interleave_auto_increment()


class Report:
    """A printable benchmark table (the 'rows/series the paper reports')."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []
        self.notes: List[str] = []

    def add_row(self, *values) -> None:
        self.rows.append([_format(value) for value in values])

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                if index < len(widths):
                    widths[index] = max(widths[index], len(cell))
        lines = [f"== {self.title} =="]
        header = "  ".join(
            c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(
                cell.ljust(widths[i]) if i < len(widths) else cell
                for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())


def _format(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.5f}"
        return f"{value:.2f}"
    return str(value)
