"""Randomized chaos harness: seeded fault schedules against open-loop
load, with invariant checking (benchmark E22).

Section 5.1 of the paper calls for benchmarks that "integrate fault
injection or management operations" and measure "performance in the
presence of failures, performance of degraded modes".  This harness is
that benchmark: it drives the *same* seeded fault schedule (crashes with
repair, flapping nodes — see :func:`repro.cluster.failures.random_schedule`)
against a middleware cluster twice — once bare, once with a
:class:`~repro.core.resilience.ResiliencePolicy` — under identical
open-loop Poisson load, and reports goodput, client-visible error rate
and MTTR for both.

After every run three invariants are checked:

* **no lost acked commits** — every write the client saw succeed is
  present on every replica once the cluster has healed (under 2-safe
  synchronous propagation this must hold by construction);
* **no divergence** — all replicas converge to identical content
  signatures after repair + failback + drain;
* **bounded resolution** — every admitted request resolves (success or
  error) and, when a deadline is configured, within deadline + ε, where
  ε covers one freshness wait plus one in-flight service charge.

Two-level retry design (the repo-wide convention: state changes are
instantaneous, time is charged separately): the in-session resilience
layer (:mod:`repro.core.resilience`) retries instantly when an
alternative replica exists *right now* and accumulates its backoff in
``pending_backoff``; this harness charges that backoff as simulated time
and owns the *timed* retries — the ones that only succeed because
simulated time passes (a new master gets promoted, a crashed node
repairs).  ``NodeDown`` surfaces only here, because only the timed layer
charges service time on nodes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set

from ..cluster.failures import FaultInjector, random_schedule
from ..cluster.nodes import NodeDown
from ..cluster.sim import Environment
from ..core.errors import (
    CircuitOpen, MiddlewareDown, Overloaded, ReplicaUnavailable,
    RequestTimeout, RetryExhausted,
)
from ..core.failover import FailoverManager, VirtualIP
from ..core.loadbalancer import NoReplicaAvailable
from ..core.middleware import ReplicationMiddleware
from ..core.replica import ReplicaState
from ..core.resilience import ResiliencePolicy, RetryPolicy
from ..ha import HAPair, cold_restart, cold_restart_duration
from ..metrics.availability import AvailabilityTracker
from ..sqlengine.errors import ConnectionError_
from .harness import build_cluster
from .simdriver import TimedCluster

DATABASE = "shop"

#: resolution-bound slack: one freshness wait (max 2.0 s in the timed
#: driver) plus one in-flight service/commit charge
RESOLUTION_EPSILON = 2.5


class ChaosConfig:
    """One chaos experiment: cluster shape, load, faults, resilience."""

    def __init__(self,
                 replicas: int = 3,
                 seed: int = 1,
                 duration: float = 60.0,
                 rate_tps: float = 40.0,
                 read_fraction: float = 0.7,
                 txn_write_fraction: float = 0.4,
                 kv_rows: int = 50,
                 n_faults: int = 4,
                 fault_spec: Optional[dict] = None,
                 resilience: Optional[ResiliencePolicy] = None,
                 detection_delay: float = 0.5,
                 failback_delay: float = 0.5,
                 probe_interval: float = 0.25,
                 drain_grace: float = 30.0,
                 tracing: bool = True,
                 trace_retention: int = 2048,
                 middleware_kills: Optional[List[float]] = None,
                 ha_standby: bool = False,
                 mw_detection_delay: float = 0.3,
                 cold_restart_base: float = 0.5,
                 cold_restart_per_replica: float = 0.25):
        self.replicas = replicas
        self.seed = seed
        self.duration = duration
        self.rate_tps = rate_tps
        self.read_fraction = read_fraction
        # fraction of writes that run as a multi-statement transaction
        # (exercises transaction replay on a survivor)
        self.txn_write_fraction = txn_write_fraction
        self.kv_rows = kv_rows
        self.n_faults = n_faults
        self.fault_spec = fault_spec
        self.resilience = resilience
        # how long the "failure detector" takes before failover reacts
        self.detection_delay = detection_delay
        self.failback_delay = failback_delay
        self.probe_interval = probe_interval
        # extra simulated time after the load stops for in-flight
        # requests and repairs to resolve
        self.drain_grace = drain_grace
        # per-request tracing (repro.obs): every client request gets a
        # root span; retention is raised above the middleware default so
        # a whole run's requests survive for fault-timeline analysis
        self.tracing = tracing
        self.trace_retention = trace_retention
        # middleware-tier faults (E26): simulated times at which the
        # *active* middleware process is killed.  With ``ha_standby`` a
        # fenced promotion follows after ``mw_detection_delay``; without
        # one, a cold state-retrieval restart is charged via
        # :func:`repro.ha.promotion.cold_restart_duration`.
        self.middleware_kills = middleware_kills
        self.ha_standby = ha_standby
        self.mw_detection_delay = mw_detection_delay
        self.cold_restart_base = cold_restart_base
        self.cold_restart_per_replica = cold_restart_per_replica

    def resolved_fault_spec(self, node_names: List[str]) -> dict:
        if self.fault_spec is not None:
            return self.fault_spec
        return random_schedule(node_names, seed=self.seed,
                               horizon=self.duration,
                               n_faults=self.n_faults)


class RequestRecord:
    """One client request's fate."""

    __slots__ = ("id", "kind", "start", "end", "ok", "error", "write_id",
                 "trace_id")

    def __init__(self, id: int, kind: str, start: float,
                 write_id: Optional[int] = None):
        self.id = id
        self.kind = kind            # "read" | "write" | "txn"
        self.start = start
        self.end: Optional[float] = None
        self.ok = False
        self.error = ""
        self.write_id = write_id    # unique id INSERTed by this request
        self.trace_id: Optional[int] = None  # the request's trace

    @property
    def resolved(self) -> bool:
        return self.end is not None

    @property
    def latency(self) -> float:
        return (self.end if self.end is not None else float("inf")) - self.start


class ChaosResult:
    """Everything one chaos run produced."""

    def __init__(self, config: ChaosConfig):
        self.config = config
        self.records: List[RequestRecord] = []
        self.acked_ids: Set[int] = set()
        self.shed = 0
        self.fault_spec: Optional[dict] = None
        self.fault_events: List = []
        self.invariants: Dict[str, bool] = {}
        self.violations: List[str] = []
        self.mttr = 0.0
        self.availability = 1.0
        self.elapsed = 0.0
        self.resilience_stats: Dict[str, int] = {}
        self.middleware_stats: Dict[str, float] = {}
        # retained span traces (list of span lists) + tracer counters,
        # captured at run end for fault-timeline reconstruction (E25)
        self.traces: List[list] = []
        self.trace_stats: Dict[str, int] = {}
        # middleware-tier fault timeline (E26)
        self.mw_kills: List[float] = []
        self.mw_recoveries: List[float] = []
        self.promotions = 0
        self.dedup_commits = 0

    # -- headline numbers ----------------------------------------------------

    @property
    def total_requests(self) -> int:
        return len(self.records)

    @property
    def succeeded(self) -> int:
        return sum(1 for r in self.records if r.ok)

    @property
    def failed(self) -> int:
        return sum(1 for r in self.records if r.resolved and not r.ok)

    def goodput(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.succeeded / self.elapsed

    def error_rate(self) -> float:
        if not self.records:
            return 0.0
        return self.failed / len(self.records)

    def errors_by_kind(self) -> Dict[str, int]:
        kinds: Dict[str, int] = {}
        for record in self.records:
            if record.resolved and not record.ok:
                kinds[record.error] = kinds.get(record.error, 0) + 1
        return kinds

    @property
    def all_invariants_hold(self) -> bool:
        return bool(self.invariants) and all(self.invariants.values())


class ChaosRun:
    """Drives one seeded chaos experiment to completion."""

    #: failures the timed layer retries (resilient runs only).
    #: ``MiddlewareDown`` is retryable because simulated time passing is
    #: exactly what fixes it: a standby gets promoted or a cold restart
    #: completes, and the session reconnects through the virtual IP.
    TIMED_RETRYABLE = (NodeDown, ConnectionError_, ReplicaUnavailable,
                       NoReplicaAvailable, RetryExhausted, CircuitOpen,
                       MiddlewareDown)

    def __init__(self, config: ChaosConfig):
        self.config = config
        self.env = Environment()
        self._mw = build_cluster(
            config.replicas, replication="writeset", consistency="rsi-pc",
            propagation="sync", env=self.env, resilience=config.resilience,
            name="chaos")
        self.pair: Optional[HAPair] = None
        self.cluster = TimedCluster(self.env, self.middleware)
        self.middleware.tracer.enabled = config.tracing
        self.middleware.tracer.max_traces = config.trace_retention
        self.result = ChaosResult(config)
        self.tracker = AvailabilityTracker(start_time=0.0)
        self._next_write_id = 0
        self._next_request = 0
        self._inflight = 0
        self._load_done = False
        self._setup_schema()
        if config.ha_standby:
            # built after the schema exists so the bootstrap transfer
            # ships the setup DDL's certifier/recovery state too
            self.pair = HAPair(self._mw)
            self.pair.on_switch(self._middleware_switched)
        self.manager = FailoverManager(
            self.middleware, VirtualIP("vip", self.middleware.master.name))
        self._wire_failover_reaction()
        self.injector = FaultInjector(self.env, seed=config.seed)
        self.spec = config.resolved_fault_spec(
            [r.name for r in self.middleware.replicas])

    @property
    def middleware(self) -> ReplicationMiddleware:
        """The instance the virtual IP resolves to right now — the HA
        pair's active leader when a standby is configured."""
        return self.pair.active if self.pair is not None else self._mw

    def _middleware_switched(self, new_mw: ReplicationMiddleware) -> None:
        """Promotion happened: repoint the timed cluster and the replica
        failover manager at the new leader (replica callbacks are wired
        on the shared replica objects, so they follow automatically)."""
        new_mw.tracer.enabled = self.config.tracing
        new_mw.tracer.max_traces = self.config.trace_retention
        self.cluster.middleware = new_mw
        self.manager = FailoverManager(new_mw, self.manager.virtual_ip)

    # -- setup ---------------------------------------------------------------

    def _setup_schema(self) -> None:
        session = self.middleware.connect(database=DATABASE)
        session.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        session.execute(
            "CREATE TABLE chaos_log (id INT PRIMARY KEY, client INT)")
        for key in range(self.config.kv_rows):
            session.execute(f"INSERT INTO kv (k, v) VALUES ({key}, 0)")
        session.close()

    # -- failover / failback automation --------------------------------------

    def _wire_failover_reaction(self) -> None:
        """Automatic operator: promote on master failure (after a
        detection delay), fail a repaired replica back (after a resync
        delay), and promote on failback if the master is still dark."""
        for replica in self.middleware.replicas:
            replica.on_state_change(self._replica_changed)

    def _replica_changed(self, replica, state) -> None:
        if state is ReplicaState.FAILED:
            if self.middleware.master.name == replica.name:
                self.env.process(self._promotion(replica.name),
                                 name=f"promote:{replica.name}")
        elif state is ReplicaState.RECOVERING:
            self.env.process(self._failback(replica.name),
                             name=f"failback:{replica.name}")

    def _promotion(self, failed_name: str):
        yield self.env.timeout(self.config.detection_delay)
        master = self.middleware.master
        if master.name != failed_name or master.is_online:
            return  # already handled, or it came back
        self.manager.handle_replica_failure(failed_name)

    def _failback(self, name: str):
        yield self.env.timeout(self.config.failback_delay)
        replica = self.middleware.replica_by_name(name)
        if replica.state is not ReplicaState.RECOVERING:
            return  # crashed again (flapping) or already handled
        if replica.node is not None and not replica.node.up:
            return
        self.manager.failback(name)
        if not self.middleware.master.is_online:
            # the cluster was dark; the returning replica becomes master
            self.manager.handle_replica_failure(self.middleware.master.name)

    # -- middleware-tier faults (E26) ----------------------------------------

    def _middleware_faults(self):
        """Kill the active middleware at each scheduled time; recover it
        the way the configuration allows.  HA: after the detection
        delay, fenced promotion to the standby (instant hydration), then
        an operator rebuilds a fresh standby so later kills still have a
        target.  No standby: the process restarts cold, paying one
        state-retrieval scan per replica on top of the restart."""
        for kill_at in sorted(self.config.middleware_kills or []):
            delay = kill_at - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            if self.pair is not None:
                self.pair.kill_active()
            else:
                self._mw.fail()
            self.result.mw_kills.append(self.env.now)
            yield self.env.timeout(self.config.mw_detection_delay)
            if self.pair is not None:
                self.pair.promote()
                self.result.promotions += 1
                # operator rebuilds a standby behind the new leader; the
                # bootstrap transfer is state-copy only (instantaneous —
                # it does not block the already-promoted leader)
                self.pair = HAPair(self.middleware)
                self.pair.on_switch(self._middleware_switched)
            else:
                yield self.env.timeout(cold_restart_duration(
                    len(self._mw.replicas),
                    base=self.config.cold_restart_base,
                    per_replica=self.config.cold_restart_per_replica))
                cold_restart(self._mw)
            self.result.mw_recoveries.append(self.env.now)

    # -- load ----------------------------------------------------------------

    def _arrivals(self):
        env = self.env
        rng = random.Random(self.config.seed * 977 + 13)
        deadline = env.now + self.config.duration
        while env.now < deadline:
            yield env.timeout(rng.expovariate(self.config.rate_tps))
            record = self._make_request(rng)
            env.process(self._run_request(record),
                        name=f"req{record.id}")
        self._load_done = True

    def _make_request(self, rng: random.Random) -> RequestRecord:
        request_id = self._next_request
        self._next_request += 1
        if rng.random() < self.config.read_fraction:
            record = RequestRecord(request_id, "read", self.env.now)
        else:
            self._next_write_id += 1
            kind = ("txn" if rng.random() < self.config.txn_write_fraction
                    else "write")
            record = RequestRecord(request_id, kind, self.env.now,
                                   write_id=self._next_write_id)
        self.result.records.append(record)
        return record

    def _request_sql(self, record: RequestRecord,
                     rng: random.Random) -> List[str]:
        key = rng.randrange(self.config.kv_rows)
        if record.kind == "read":
            return [f"SELECT v FROM kv WHERE k = {key}"]
        insert = (f"INSERT INTO chaos_log (id, client) "
                  f"VALUES ({record.write_id}, {record.id})")
        if record.kind == "write":
            return [insert]
        return ["BEGIN", insert,
                f"UPDATE kv SET v = v + 1 WHERE k = {key}", "COMMIT"]

    # -- the resilient timed request loop ------------------------------------

    def _run_request(self, record: RequestRecord):
        resilience = self.middleware.resilience
        rng = random.Random(self.config.seed * 31 + record.id)
        statements = self._request_sql(record, rng)
        is_write = record.kind != "read"

        # One root span per client request; child spans (timed.statement,
        # mw.statement, ...) hang off it via session.trace_context.
        root = self.middleware.tracer.start_span(
            "request", kind=record.kind, request=record.id)
        if root:
            record.trace_id = root.trace_id

        session = None
        admitted = False
        try:
            if resilience is not None:
                if not resilience.admission.try_acquire(is_write):
                    self.result.shed += 1
                    root.event("admission_shed")
                    self._resolve(record, ok=False, error="Overloaded")
                    return
                admitted = True
            try:
                session = self.middleware.connect(database=DATABASE)
            except Exception as exc:  # noqa: BLE001 — middleware down
                self._resolve(record, ok=False, error=type(exc).__name__)
                return
            deadline = (resilience.deadline() if resilience is not None
                        else None)
            self._prepare_session(session, record, root, deadline)

            retry = (resilience.policy.retry if resilience is not None
                     else RetryPolicy(max_attempts=1))
            attempt = 1
            while True:
                if attempt > 1 and is_write \
                        and self._ledger_committed(record):
                    # exactly-once replay: the ledger proves the earlier
                    # attempt's commit landed — answer success without
                    # re-applying anything (repro.ha)
                    root.event("ha.dedup", txn=self._txn_key(record))
                    self.result.dedup_commits += 1
                    self._resolve(record, ok=True)
                    return
                try:
                    for sql in statements:
                        yield from self.cluster._timed_statement(
                            session, sql, [])
                        yield from self._charge_backoff(resilience, root)
                    self._resolve(record, ok=True)
                    return
                except (RequestTimeout, Overloaded) as exc:
                    self._abort_quietly(session)
                    self._resolve(record, ok=False,
                                  error=type(exc).__name__)
                    return
                except self.TIMED_RETRYABLE as exc:
                    self._abort_quietly(session)
                    yield from self._charge_backoff(resilience, root)
                    ambiguous = getattr(exc, "ambiguous", False)
                    # A commit ledger turns 'ambiguous' into 'resolvable':
                    # COMMITTED dedups on replay, PENDING is settled at
                    # promotion, and a commit that never reached prepare
                    # is provably un-applied — so keep retrying.
                    if ambiguous and is_write \
                            and self.middleware.commit_ledger is not None:
                        ambiguous = False
                    if resilience is None or ambiguous:
                        self._resolve(record, ok=False,
                                      error=type(exc).__name__)
                        return
                    # With a deadline, the deadline is the retry budget:
                    # keep backing off in simulated time (so the cluster
                    # can repair/promote underneath us) until it would
                    # expire.  Without one, the attempt cap bounds us.
                    if deadline is None and retry.spent(attempt):
                        self._resolve(record, ok=False,
                                      error=type(exc).__name__)
                        return
                    backoff = retry.backoff(attempt, key=record.id)
                    if deadline is not None \
                            and deadline.remaining() <= backoff:
                        self._resolve(record, ok=False,
                                      error="RequestTimeout")
                        return
                    root.event("backoff", duration=round(backoff, 9),
                               attempt=attempt, source="timed",
                               error=type(exc).__name__)
                    yield self.env.timeout(backoff)
                    attempt += 1
                    if session.closed \
                            or session.middleware is not self.middleware:
                        # the middleware died under us; re-resolve the
                        # virtual IP (the promoted standby or the
                        # restarted process) and check the commit ledger
                        # before replaying a write
                        try:
                            session = self.middleware.connect(
                                database=DATABASE)
                        except Exception:  # noqa: BLE001 — still down
                            continue  # next lap backs off again
                        self._prepare_session(session, record, root,
                                              deadline)
                        root.event("mw_reconnect",
                                   target=self.middleware.name)
                except Exception as exc:  # noqa: BLE001 — terminal
                    self._abort_quietly(session)
                    self._resolve(record, ok=False,
                                  error=type(exc).__name__)
                    return
        finally:
            if session is not None:
                session.deadline = None
                session.trace_context = None
                if not session.closed:
                    session.close()
            if admitted:
                resilience.admission.release()
            root.set_tag("ok", record.ok)
            if record.error:
                root.set_tag("error", record.error)
            root.end()

    def _charge_backoff(self, resilience, span=None):
        """Synchronous in-session retries accumulate their backoff; the
        timed layer charges it here as simulated delay.  The `backoff`
        event carries a `duration` attr because this is where the wait
        actually costs simulated time (breakdowns count it as a stage)."""
        if resilience is None:
            return
        delay = resilience.consume_backoff()
        if delay > 0:
            if span:
                span.event("backoff", duration=round(delay, 9),
                           source="resilience")
            yield self.env.timeout(delay)

    def _prepare_session(self, session, record: RequestRecord, root,
                         deadline) -> None:
        """Attach trace context, deadline and (for writes) the client
        transaction identity the exactly-once ledger keys on."""
        session.trace_context = root
        session.deadline = deadline
        if record.kind != "read":
            session.client_id = f"c{record.id}"
            session.client_txn_id = self._txn_key(record)

    @staticmethod
    def _txn_key(record: RequestRecord) -> str:
        return f"req{record.id}"

    def _ledger_committed(self, record: RequestRecord) -> bool:
        ledger = self.middleware.commit_ledger
        return (ledger is not None
                and ledger.committed(self._txn_key(record)))

    def _abort_quietly(self, session) -> None:
        if session is None or session.closed:
            return
        try:
            session.execute("ROLLBACK")
        except Exception:  # noqa: BLE001
            pass

    def _resolve(self, record: RequestRecord, ok: bool,
                 error: str = "") -> None:
        record.end = self.env.now
        record.ok = ok
        record.error = error
        if ok and record.write_id is not None:
            self.result.acked_ids.add(record.write_id)

    # -- availability probe --------------------------------------------------

    def _probe(self):
        """A canary write on the instantaneous path drives the MTTR /
        availability timeline: the service is 'up' when a fresh client
        can commit a write right now."""
        probe_key = self.config.kv_rows  # a row the workload never touches
        session = self.middleware.connect(database=DATABASE)
        session._admission_held = True  # the canary is never shed
        session.execute(f"INSERT INTO kv (k, v) VALUES ({probe_key}, 0)")
        while not self._load_done:
            try:
                session.execute(
                    f"UPDATE kv SET v = v + 1 WHERE k = {probe_key}")
                self.tracker.service_up(self.env.now)
            except Exception:  # noqa: BLE001
                self.tracker.service_down(self.env.now)
                if session.closed:
                    try:
                        session = self.middleware.connect(database=DATABASE)
                        session._admission_held = True
                    except Exception:  # noqa: BLE001
                        pass
            yield self.env.timeout(self.config.probe_interval)
        session.close()

    # -- run + invariants ----------------------------------------------------

    def run(self) -> ChaosResult:
        config = self.config
        self.injector.schedule_from_spec(self.spec,
                                         [r.node for r in
                                          self.middleware.replicas
                                          if r.node is not None]
                                         or self.middleware.replicas)
        self.env.process(self._arrivals(), name="chaos_arrivals")
        self.env.process(self._probe(), name="chaos_probe")
        if config.middleware_kills:
            self.env.process(self._middleware_faults(), name="chaos_mw")
        self.env.run(until=config.duration + config.drain_grace)
        self.injector.stop()
        self.tracker.finish(min(self.env.now, config.duration))
        self.result.elapsed = config.duration
        self.result.mttr = self.tracker.mttr()
        self.result.availability = self.tracker.availability()
        self.result.fault_spec = self.spec
        self.result.fault_events = list(self.injector.events)
        if self.middleware.resilience is not None:
            self.result.resilience_stats = dict(
                self.middleware.resilience.stats)
        self.result.middleware_stats = dict(self.middleware.stats)
        self._heal_cluster()
        self.result.trace_stats = self.middleware.tracer.snapshot()
        self.result.traces = self.middleware.tracer.traces()
        self._check_invariants()
        return self.result

    def _heal_cluster(self) -> None:
        """Repair every node and fail every replica back, so the
        invariants are checked against a fully converged cluster."""
        if self.middleware.failed:
            # a kill scheduled too close to the end of the run; bring
            # the active instance back the slow way before checking
            cold_restart(self.middleware)
        for replica in self.middleware.replicas:
            if replica.node is not None and not replica.node.up:
                self.injector._repair(replica.node)
        for replica in self.middleware.replicas:
            if replica.state in (ReplicaState.FAILED,
                                 ReplicaState.RECOVERING):
                self.manager.failback(replica.name)
        if not self.middleware.master.is_online:
            self.manager.handle_replica_failure(self.middleware.master.name)
        self.middleware.drain_all()

    def _check_invariants(self) -> None:
        result = self.result
        # 1. no lost acked commits (2-safe: zero loss by construction)
        lost: Set[int] = set()
        for replica in self.middleware.replicas:
            present = self._log_ids(replica)
            lost |= result.acked_ids - present
        result.invariants["no_lost_acked_commits"] = not lost
        if lost:
            result.violations.append(
                f"{len(lost)} acked commit(s) missing from a replica "
                f"(e.g. ids {sorted(lost)[:5]})")
        # 2. no divergence after heal + drain
        signatures = set(self.middleware.content_signatures().values())
        result.invariants["no_divergence"] = len(signatures) == 1
        if len(signatures) > 1:
            result.violations.append(
                f"replicas diverged: {len(signatures)} distinct signatures")
        # 3. bounded resolution: every admitted request resolved, within
        # deadline + epsilon when a deadline was configured
        unresolved = [r for r in result.records if not r.resolved]
        bound = None
        policy = self.config.resilience
        if policy is not None and policy.request_timeout is not None:
            bound = policy.request_timeout + RESOLUTION_EPSILON
        overruns = []
        if bound is not None:
            overruns = [r for r in result.records
                        if r.resolved and r.latency > bound]
        result.invariants["bounded_resolution"] = (
            not unresolved and not overruns)
        if unresolved:
            result.violations.append(
                f"{len(unresolved)} request(s) never resolved")
        if overruns:
            worst = max(r.latency for r in overruns)
            result.violations.append(
                f"{len(overruns)} request(s) overran the {bound:.2f}s "
                f"resolution bound (worst {worst:.2f}s)")

    def _log_ids(self, replica) -> Set[int]:
        connection = replica.engine.connect("admin", "", database=DATABASE)
        try:
            result = connection.execute("SELECT id FROM chaos_log")
            return {row[0] for row in result.rows}
        finally:
            connection.close()


class GroupKillTrack:
    """Per-group middleware kill schedule for a composed sharded tier
    (E30): the E26 single-pair kill/promote/rebuild cycle, generalized
    so each shard group of a :class:`~repro.shard.router.ShardedCluster`
    can run its own fault track while the others stay up.

    At each scheduled time the track kills group ``index``'s active
    middleware, waits out the failure-detection delay, promotes the
    standby through the fenced path, and hands the router a freshly
    rebuilt pair (``attach_pair``) so later kills still have a target —
    exactly what an operator would do behind the virtual IP."""

    def __init__(self, env: Environment, cluster, index: int,
                 kill_times: List[float],
                 detection_delay: float = 0.3):
        if cluster.pairs[index] is None:
            raise ValueError(
                f"group {index} has no HA pair; a kill track needs one")
        self.env = env
        self.cluster = cluster
        self.index = index
        self.kill_times = sorted(kill_times)
        self.detection_delay = detection_delay
        self.kills: List[float] = []
        self.promotions: List[float] = []
        self.sessions_lost = 0

    def process(self):
        """The simulation process — ``env.process(track.process())``."""
        for kill_at in self.kill_times:
            delay = kill_at - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            pair = self.cluster.pairs[self.index]
            self.sessions_lost += pair.kill_active()
            self.kills.append(self.env.now)
            yield self.env.timeout(self.detection_delay)
            pair.promote()
            self.promotions.append(self.env.now)
            # operator rebuilds a standby behind the new leader; the
            # bootstrap transfer is state-copy only (instantaneous — it
            # does not block the already-promoted leader)
            self.cluster.attach_pair(
                self.index, HAPair(self.cluster.groups[self.index]))


def run_chaos(config: ChaosConfig) -> ChaosResult:
    """Run one seeded chaos experiment and return its result."""
    return ChaosRun(config).run()


def default_resilience_policy(seed: int = 0) -> ResiliencePolicy:
    """The E22 resilient configuration: deadline, 4 retry attempts,
    breakers tuned to eject a flapper, generous admission."""
    return ResiliencePolicy(
        retry=RetryPolicy(max_attempts=4, base_backoff=0.1,
                          multiplier=2.0, max_backoff=1.5,
                          jitter=0.25, seed=seed),
        request_timeout=8.0,
        breaker_failure_threshold=3,
        breaker_recovery_time=4.0,
        breaker_half_open_probes=1,
        max_inflight=512,
        write_shed_fraction=0.9,
        degraded_reads=True,
        max_staleness=1000,
    )
