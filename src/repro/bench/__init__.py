"""``repro.bench`` — benchmark harness and timed simulation drivers."""

from .chaos import (
    ChaosConfig, ChaosResult, ChaosRun, default_resilience_policy, run_chaos,
)
from .harness import (
    DEFAULT_DATABASE, Report, build_cluster, build_replicas,
    build_sharded_cluster, load_workload,
)
from .simdriver import (
    ClosedLoopDriver, LagProbe, OpenLoopDriver, RunMetrics,
    SessionArrivalDriver, TimedCluster, TimedShardedCluster,
)

__all__ = [
    "ChaosConfig", "ChaosResult", "ChaosRun", "ClosedLoopDriver",
    "DEFAULT_DATABASE", "LagProbe", "OpenLoopDriver",
    "Report", "RunMetrics", "SessionArrivalDriver", "TimedCluster",
    "TimedShardedCluster", "build_cluster", "build_replicas",
    "build_sharded_cluster", "default_resilience_policy", "load_workload",
    "run_chaos",
]
