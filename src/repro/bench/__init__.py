"""``repro.bench`` — benchmark harness and timed simulation drivers."""

from .harness import (
    DEFAULT_DATABASE, Report, build_cluster, build_replicas, load_workload,
)
from .simdriver import (
    ClosedLoopDriver, LagProbe, OpenLoopDriver, RunMetrics, TimedCluster,
)

__all__ = [
    "ClosedLoopDriver", "DEFAULT_DATABASE", "LagProbe", "OpenLoopDriver",
    "Report", "RunMetrics", "TimedCluster", "build_cluster",
    "build_replicas", "load_workload",
]
