"""Simulated network: latency, loss, partitions, TCP-style timeouts.

Endpoints register a handler under a name; ``send`` delivers a payload
after the modelled latency; ``rpc`` runs a request/response exchange whose
failure behaviour mirrors the paper's section 4.3.4.2: when the peer is
dead or partitioned away, the caller **hangs until its timeout expires** —
there is no instant connection-reset, exactly like TCP with default
keep-alive settings.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .sim import Environment, Event


class NetworkTimeout(Exception):
    """An RPC gave up waiting (TCP keep-alive expiry analogue)."""


class NetworkDown(Exception):
    """The destination endpoint does not exist at all (never registered)."""


class Message:
    __slots__ = ("sender", "recipient", "payload", "size")

    def __init__(self, sender: str, recipient: str, payload: Any, size: int = 1):
        self.sender = sender
        self.recipient = recipient
        self.payload = payload
        self.size = size


class LatencyModel:
    """Base latency + jitter, with per-pair (e.g. WAN site-to-site)
    overrides.  Latencies are seconds of simulated time."""

    def __init__(self, base: float = 0.0005, jitter: float = 0.0001,
                 seed: int = 7):
        self.base = base
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._pair_overrides: Dict[Tuple[str, str], float] = {}
        # Degraded links (crimped cable, section 4.1.3): multiplier per pair.
        self._degradation: Dict[Tuple[str, str], float] = {}

    def set_pair(self, a: str, b: str, base: float) -> None:
        self._pair_overrides[(a, b)] = base
        self._pair_overrides[(b, a)] = base

    def degrade(self, a: str, b: str, factor: float) -> None:
        self._degradation[(a, b)] = factor
        self._degradation[(b, a)] = factor

    def heal_link(self, a: str, b: str) -> None:
        self._degradation.pop((a, b), None)
        self._degradation.pop((b, a), None)

    def sample(self, src: str, dst: str, size: int = 1) -> float:
        base = self._pair_overrides.get((src, dst), self.base)
        factor = self._degradation.get((src, dst), 1.0)
        jitter = self._rng.uniform(0, self.jitter)
        # size is in abstract units; large transfers take proportionally
        # longer (state transfer cost in group communication, 4.3.4.1)
        return (base + jitter) * factor * max(1, size)


class Network:
    """The message fabric connecting all simulated nodes."""

    def __init__(self, env: Environment,
                 latency: Optional[LatencyModel] = None,
                 drop_rate: float = 0.0, seed: int = 11):
        self.env = env
        self.latency = latency or LatencyModel()
        self.drop_rate = drop_rate
        self._rng = random.Random(seed)
        self._handlers: Dict[str, Callable[[Message], Any]] = {}
        self._down: Set[str] = set()
        self._partition_groups: Optional[List[Set[str]]] = None
        # statistics
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    # -- endpoints ---------------------------------------------------------

    def register(self, name: str, handler: Callable[[Message], Any]) -> None:
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        self._handlers.pop(name, None)

    def set_endpoint_down(self, name: str, down: bool = True) -> None:
        """A down endpoint silently swallows messages (crashed host)."""
        if down:
            self._down.add(name)
        else:
            self._down.discard(name)

    def is_endpoint_up(self, name: str) -> bool:
        return name in self._handlers and name not in self._down

    # -- partitions ----------------------------------------------------------

    def partition(self, *groups: Set[str]) -> None:
        """Split the network: traffic only flows within a group
        (section 4.3.4.3).  Endpoints not named in any group are isolated."""
        self._partition_groups = [set(g) for g in groups]

    def heal_partition(self) -> None:
        self._partition_groups = None

    def connected(self, a: str, b: str) -> bool:
        if a == b:
            return True
        if self._partition_groups is None:
            return True
        for group in self._partition_groups:
            if a in group and b in group:
                return True
        return False

    # -- one-way send -----------------------------------------------------

    def send(self, sender: str, recipient: str, payload: Any,
             size: int = 1) -> None:
        """Fire-and-forget delivery after latency.  Silently lost when the
        path is partitioned, the endpoint is down, or the drop roll fails —
        the sender cannot tell (that is the point)."""
        self.messages_sent += 1
        self.bytes_sent += size
        if not self.connected(sender, recipient):
            self.messages_dropped += 1
            return
        if self.drop_rate > 0 and self._rng.random() < self.drop_rate:
            self.messages_dropped += 1
            return
        delay = self.latency.sample(sender, recipient, size)
        message = Message(sender, recipient, payload, size)

        def deliver(event: Event) -> None:
            if not self.is_endpoint_up(recipient):
                self.messages_dropped += 1
                return
            if not self.connected(sender, recipient):
                self.messages_dropped += 1
                return
            self.messages_delivered += 1
            handler = self._handlers.get(recipient)
            if handler is not None:
                result = handler(message)
                if hasattr(result, "__next__"):
                    self.env.process(result, name=f"handler:{recipient}")

        event = self.env.event()
        event.callbacks.append(deliver)
        self.env._schedule_at(self.env.now + delay, event, None)

    # -- request/response ----------------------------------------------------

    def rpc(self, sender: str, recipient: str, payload: Any,
            timeout: float = 30.0, size: int = 1):
        """A generator (yieldable from a process) performing one RPC.

        The handler may return a plain value or a generator (which is run
        as a process whose return value becomes the response).  On any
        silent loss the caller waits the full ``timeout`` and then gets
        :class:`NetworkTimeout` — the TCP-keep-alive behaviour of 4.3.4.2.
        """
        response_event = self.env.event()
        request = _RpcRequest(payload, response_event, self, sender, recipient)
        self.send(sender, recipient, request, size=size)
        timeout_event = self.env.timeout(timeout, value=_TIMEOUT_SENTINEL)
        winner = yield self.env.any_of([response_event, timeout_event])
        if winner is _TIMEOUT_SENTINEL:
            raise NetworkTimeout(
                f"rpc {sender}->{recipient} timed out after {timeout}s")
        if isinstance(winner, _RpcFailure):
            raise winner.exception
        return winner


_TIMEOUT_SENTINEL = object()


class _RpcFailure:
    __slots__ = ("exception",)

    def __init__(self, exception: BaseException):
        self.exception = exception


class _RpcRequest:
    """Internal envelope: the receiving dispatcher unwraps it, invokes the
    real handler, and routes the response back over the network."""

    __slots__ = ("payload", "response_event", "network", "sender", "recipient")

    def __init__(self, payload, response_event, network, sender, recipient):
        self.payload = payload
        self.response_event = response_event
        self.network = network
        self.sender = sender
        self.recipient = recipient


def rpc_endpoint(network: Network, name: str,
                 handler: Callable[[Any, str], Any]) -> None:
    """Register ``handler(payload, sender)`` as an RPC-capable endpoint.

    Responses travel back through the network (latency + partition rules
    apply on the return path too).
    """

    def dispatch(message: Message):
        request = message.payload
        if not isinstance(request, _RpcRequest):
            handler(request, message.sender)
            return None

        def respond(value: Any) -> None:
            def deliver_response(event: Event) -> None:
                if not network.connected(name, message.sender):
                    return
                if not request.response_event.triggered:
                    request.response_event.succeed(value)
            delay = network.latency.sample(name, message.sender)
            event = network.env.event()
            event.callbacks.append(deliver_response)
            network.env._schedule_at(network.env.now + delay, event, None)

        try:
            result = handler(request.payload, message.sender)
        except Exception as exc:  # noqa: BLE001 — errors travel to caller
            respond(_RpcFailure(exc))
            return None
        if hasattr(result, "__next__"):
            def runner():
                try:
                    value = yield from result
                except Exception as exc:  # noqa: BLE001
                    respond(_RpcFailure(exc))
                    return
                respond(value)
            network.env.process(runner(), name=f"rpc:{name}")
        else:
            respond(result)
        return None

    network.register(name, dispatch)
