"""Fault injection.

Section 5.1 of the paper asks for benchmarks "that could integrate fault
injection or management operations"; section 2.2 gives the field failure
rate we calibrate against: "on average, one fatal failure (software or
hardware) occurs per day per 200 processors".

:class:`FaultInjector` drives Poisson crash/repair schedules and one-shot
scenario faults (rack outage, partition, silent disk slowdown, crimped
cable, disk-full).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from .network import Network
from .nodes import Node
from .sim import Environment

SECONDS_PER_DAY = 86400.0

# The paper's field rate: 1 fatal failure per day per 200 processors.
PAPER_FAILURES_PER_CPU_DAY = 1.0 / 200.0


class FaultEvent:
    """One injected fault, for post-run reporting."""

    __slots__ = ("kind", "target", "time", "detail")

    def __init__(self, kind: str, target: str, time: float, detail: str = ""):
        self.kind = kind
        self.target = target
        self.time = time
        self.detail = detail

    def __repr__(self) -> str:
        return f"FaultEvent({self.kind} {self.target} @ {self.time:.1f}s)"


class FaultInjector:
    """Schedules faults against nodes and the network."""

    def __init__(self, env: Environment, seed: int = 1234,
                 network: Optional[Network] = None):
        self.env = env
        self.network = network
        self.rng = random.Random(seed)
        self.events: List[FaultEvent] = []
        self._running = True

    # -- one-shot faults ----------------------------------------------------

    def crash_at(self, node: Node, time: float,
                 repair_after: Optional[float] = None) -> None:
        def scenario():
            if time > self.env.now:
                yield self.env.timeout(time - self.env.now)
            self._crash(node)
            if repair_after is not None:
                yield self.env.timeout(repair_after)
                self._repair(node)
        self.env.process(scenario(), name=f"crash_at:{node.name}")

    def rack_outage_at(self, nodes: Sequence[Node], time: float,
                       repair_after: Optional[float] = None) -> None:
        """Simultaneous failure of co-located nodes (section 4.3.4.3:
        'nodes often fail simultaneously, e.g. due to a rack-level power
        outage')."""
        def scenario():
            if time > self.env.now:
                yield self.env.timeout(time - self.env.now)
            for node in nodes:
                self._crash(node)
            self.events.append(FaultEvent(
                "rack_outage", ",".join(n.name for n in nodes), self.env.now))
            if repair_after is not None:
                yield self.env.timeout(repair_after)
                for node in nodes:
                    self._repair(node)
        self.env.process(scenario(), name="rack_outage")

    def partition_at(self, groups: Sequence[set], time: float,
                     heal_after: Optional[float] = None) -> None:
        if self.network is None:
            raise ValueError("partition injection needs a network")

        def scenario():
            if time > self.env.now:
                yield self.env.timeout(time - self.env.now)
            self.network.partition(*groups)
            self.events.append(FaultEvent(
                "partition", "/".join(",".join(sorted(g)) for g in groups),
                self.env.now))
            if heal_after is not None:
                yield self.env.timeout(heal_after)
                self.network.heal_partition()
                self.events.append(FaultEvent("heal", "network", self.env.now))
        self.env.process(scenario(), name="partition")

    def flap_node(self, node: Node, time: float, down_time: float = 5.0,
                  up_time: float = 5.0, cycles: int = 3) -> None:
        """A flapping node: repeated crash/recover cycles faster than an
        administrator would react.  This is the failure mode circuit
        breakers exist for — each up-phase looks healthy to a liveness
        detector, yet every request routed there during the next
        down-phase is wasted."""
        def scenario():
            if time > self.env.now:
                yield self.env.timeout(time - self.env.now)
            for cycle in range(cycles):
                if not self._running:
                    return
                self._crash(node)
                self.events.append(FaultEvent(
                    "flap", node.name, self.env.now, f"cycle={cycle + 1}"))
                yield self.env.timeout(down_time)
                self._repair(node)
                if cycle + 1 < cycles:
                    yield self.env.timeout(up_time)
        self.env.process(scenario(), name=f"flap:{node.name}")

    def degrade_disk_at(self, node: Node, time: float, factor: float) -> None:
        """Silent RAID-battery failure: disk becomes ``factor``x slower and
        nothing reports it (section 4.1.3)."""
        def scenario():
            if time > self.env.now:
                yield self.env.timeout(time - self.env.now)
            node.degrade_disk(factor)
            self.events.append(FaultEvent(
                "disk_degraded", node.name, self.env.now, f"factor={factor}"))
        self.env.process(scenario(), name=f"degrade:{node.name}")

    def degrade_link_at(self, a: str, b: str, time: float,
                        factor: float) -> None:
        """Crimped-cable throughput collapse (1 Gbps -> 100 Mbps)."""
        if self.network is None:
            raise ValueError("link degradation needs a network")

        def scenario():
            if time > self.env.now:
                yield self.env.timeout(time - self.env.now)
            self.network.latency.degrade(a, b, factor)
            self.events.append(FaultEvent(
                "link_degraded", f"{a}<->{b}", self.env.now, f"x{factor}"))
        self.env.process(scenario(), name="degrade_link")

    # -- stochastic schedules --------------------------------------------------

    def poisson_crashes(self, nodes: Sequence[Node],
                        failures_per_node_day: float = PAPER_FAILURES_PER_CPU_DAY,
                        mean_repair_time: float = 600.0,
                        on_crash: Optional[Callable[[Node], None]] = None,
                        on_repair: Optional[Callable[[Node], None]] = None) -> None:
        """Each node independently fails with exponential inter-failure
        times and is repaired after an exponential repair time."""
        rate_per_second = failures_per_node_day / SECONDS_PER_DAY
        for node in nodes:
            self.env.process(
                self._poisson_loop(node, rate_per_second, mean_repair_time,
                                   on_crash, on_repair),
                name=f"poisson:{node.name}")

    def _poisson_loop(self, node: Node, rate_per_second: float,
                      mean_repair_time: float,
                      on_crash: Optional[Callable[[Node], None]],
                      on_repair: Optional[Callable[[Node], None]]):
        while self._running:
            wait = self.rng.expovariate(rate_per_second)
            yield self.env.timeout(wait)
            if not self._running:
                return
            if not node.up:
                continue
            self._crash(node)
            if on_crash is not None:
                on_crash(node)
            repair = self.rng.expovariate(1.0 / mean_repair_time)
            yield self.env.timeout(repair)
            self._repair(node)
            if on_repair is not None:
                on_repair(node)

    def stop(self) -> None:
        self._running = False

    # -- composable seeded schedules ----------------------------------------

    def schedule_from_spec(self, spec: dict,
                           nodes: Sequence[Node]) -> List[dict]:
        """Install a whole fault schedule from a declarative spec dict.

        ``spec`` is ``{"faults": [{"kind": ..., ...}, ...]}`` where each
        entry names one injector call; targets are node *names*.  The same
        spec applied to equivalent clusters produces the identical
        schedule, which is how the chaos harness (repro.bench.chaos) runs
        baseline and resilient middleware under one fault history.

        Kinds: ``crash`` (node, time, repair_after), ``flap`` (node, time,
        down_time, up_time, cycles), ``rack_outage`` (nodes, time,
        repair_after), ``partition`` (groups, time, heal_after),
        ``slow_disk`` (node, time, factor), ``slow_link`` (a, b, time,
        factor), ``random_crashes`` (nodes?, failures_per_node_day,
        mean_repair_time).

        Returns the list of fault entries actually installed.
        """
        by_name = {node.name: node for node in nodes}

        def lookup(name: str) -> Node:
            try:
                return by_name[name]
            except KeyError:
                raise ValueError(f"fault spec names unknown node {name!r}")

        installed = []
        for fault in spec.get("faults", []):
            kind = fault["kind"]
            if kind == "crash":
                self.crash_at(lookup(fault["node"]), fault["time"],
                              repair_after=fault.get("repair_after"))
            elif kind == "flap":
                self.flap_node(lookup(fault["node"]), fault["time"],
                               down_time=fault.get("down_time", 5.0),
                               up_time=fault.get("up_time", 5.0),
                               cycles=fault.get("cycles", 3))
            elif kind == "rack_outage":
                self.rack_outage_at(
                    [lookup(n) for n in fault["nodes"]], fault["time"],
                    repair_after=fault.get("repair_after"))
            elif kind == "partition":
                self.partition_at([set(g) for g in fault["groups"]],
                                  fault["time"],
                                  heal_after=fault.get("heal_after"))
            elif kind == "slow_disk":
                self.degrade_disk_at(lookup(fault["node"]), fault["time"],
                                     fault.get("factor", 10.0))
            elif kind == "slow_link":
                self.degrade_link_at(fault["a"], fault["b"], fault["time"],
                                     fault.get("factor", 10.0))
            elif kind == "random_crashes":
                targets = ([lookup(n) for n in fault["nodes"]]
                           if "nodes" in fault else list(nodes))
                self.poisson_crashes(
                    targets,
                    failures_per_node_day=fault.get(
                        "failures_per_node_day", PAPER_FAILURES_PER_CPU_DAY),
                    mean_repair_time=fault.get("mean_repair_time", 600.0))
            else:
                raise ValueError(f"unknown fault kind {kind!r}")
            installed.append(fault)
        return installed

    # -- internals ----------------------------------------------------------

    def _crash(self, node: Node) -> None:
        node.crash()
        if self.network is not None:
            self.network.set_endpoint_down(node.name, True)
        self.events.append(FaultEvent("crash", node.name, self.env.now))

    def _repair(self, node: Node) -> None:
        node.recover()
        if self.network is not None:
            self.network.set_endpoint_down(node.name, False)
        self.events.append(FaultEvent("repair", node.name, self.env.now))

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.kind == kind)


def random_schedule(node_names: Sequence[str], seed: int,
                    horizon: float = 120.0, n_faults: int = 4,
                    protect: Sequence[str] = (),
                    mean_repair_time: float = 10.0) -> dict:
    """Generate a seeded, reproducible fault-schedule spec for
    :meth:`FaultInjector.schedule_from_spec`.

    Draws ``n_faults`` faults (crashes with repair, and flapping nodes)
    against random non-``protect`` nodes at random times inside
    ``horizon``.  The same ``(node_names, seed)`` yields a byte-identical
    spec — the chaos harness's guarantee that baseline and resilient runs
    face the same adversity.
    """
    rng = random.Random(seed)
    victims = [n for n in node_names if n not in set(protect)]
    if not victims:
        raise ValueError("every node is protected; nothing to break")
    faults = []
    for _ in range(n_faults):
        node = rng.choice(victims)
        time = round(rng.uniform(0.1 * horizon, 0.8 * horizon), 3)
        if rng.random() < 0.3:
            faults.append({
                "kind": "flap", "node": node, "time": time,
                "down_time": round(rng.uniform(1.0, mean_repair_time), 3),
                "up_time": round(rng.uniform(1.0, mean_repair_time), 3),
                "cycles": rng.randint(2, 4),
            })
        else:
            faults.append({
                "kind": "crash", "node": node, "time": time,
                "repair_after": round(
                    rng.uniform(0.5 * mean_repair_time,
                                1.5 * mean_repair_time), 3),
            })
    faults.sort(key=lambda f: f["time"])
    return {"seed": seed, "faults": faults}
