"""Simulated hosts: CPU capacity, speed factors, fault states.

Section 4.1.3 of the paper is about hardware heterogeneity and silent
degradation ("a RAID controller ... suddenly becomes 2x slower when the
battery fails, and the OS rarely finds out").  A :class:`Node` therefore
has a *speed factor* and a *disk factor* that faults can change at runtime
without the node "knowing" — load balancers that assume homogeneity will
misbehave accordingly.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .sim import Environment, Resource


class Node:
    """One simulated machine."""

    def __init__(self, env: Environment, name: str, cores: int = 1,
                 speed_factor: float = 1.0, disk_factor: float = 1.0):
        self.env = env
        self.name = name
        self.cpu = Resource(env, capacity=cores)
        self.speed_factor = speed_factor
        self.disk_factor = disk_factor
        self.up = True
        self.crash_count = 0
        self.total_downtime = 0.0
        self._down_since: Optional[float] = None
        self._crash_listeners: List[Callable[["Node"], None]] = []
        self._recover_listeners: List[Callable[["Node"], None]] = []
        # busy-time accounting for utilization reports
        self.busy_time = 0.0

    # -- work execution ----------------------------------------------------

    def execute(self, service_time: float, io_fraction: float = 0.0):
        """A generator: occupy one CPU slot for the scaled service time.

        ``service_time`` is the nominal cost on a factor-1.0 node; the
        effective cost divides CPU-bound work by ``speed_factor`` and
        IO-bound work by ``disk_factor``.
        """
        if not self.up:
            raise NodeDown(self.name)
        request = self.cpu.request()
        yield request
        try:
            cpu_part = service_time * (1.0 - io_fraction) / self.speed_factor
            io_part = service_time * io_fraction / self.disk_factor
            duration = cpu_part + io_part
            started = self.env.now
            yield self.env.timeout(duration)
            self.busy_time += self.env.now - started
        finally:
            self.cpu.release()
        if not self.up:
            raise NodeDown(self.name)

    @property
    def load(self) -> int:
        """Jobs currently on or queued for the CPU."""
        return self.cpu.in_use + self.cpu.queue_length

    # -- fault state ---------------------------------------------------------

    def crash(self) -> None:
        if not self.up:
            return
        self.up = False
        self.crash_count += 1
        self._down_since = self.env.now
        for listener in list(self._crash_listeners):
            listener(self)

    def recover(self) -> None:
        if self.up:
            return
        self.up = True
        if self._down_since is not None:
            self.total_downtime += self.env.now - self._down_since
            self._down_since = None
        for listener in list(self._recover_listeners):
            listener(self)

    def on_crash(self, listener: Callable[["Node"], None]) -> None:
        self._crash_listeners.append(listener)

    def on_recover(self, listener: Callable[["Node"], None]) -> None:
        self._recover_listeners.append(listener)

    # -- silent degradation ---------------------------------------------------

    def degrade_disk(self, slowdown: float) -> None:
        """RAID-battery style silent slowdown: IO becomes ``slowdown``x
        slower and nothing reports it (section 4.1.3)."""
        self.disk_factor /= slowdown

    def degrade_cpu(self, slowdown: float) -> None:
        self.speed_factor /= slowdown

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"Node({self.name!r}, {state}, load={self.load})"


class NodeDown(Exception):
    """Work was submitted to (or interrupted on) a crashed node."""

    def __init__(self, name: str):
        super().__init__(f"node {name!r} is down")
        self.node_name = name
