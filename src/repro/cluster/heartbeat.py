"""Failure detectors: application heartbeats vs TCP keep-alive defaults.

Section 4.3.4.2 of the paper: "Upon a network failure, the TCP
communication is blocked until the keep-alive timeout expires.  This
results in unacceptably long failure detection (ranging from 30 seconds to
2 hours, depending on the system defaults)", while aggressive timeouts
"generate false positives under heavy load by classifying slow connections
as failed".

Two detectors reproduce the trade-off:

* :class:`HeartbeatDetector` — periodic ping RPCs, suspect after N misses.
  The ping needs a CPU slot on the target, so an overloaded-but-alive node
  answers late and aggressive settings misfire.
* :class:`TcpKeepaliveDetector` — no probing; a peer is only discovered
  dead when ``keepalive_timeout`` elapses after its last observed traffic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .network import Network, NetworkTimeout, rpc_endpoint
from .nodes import Node
from .sim import Environment

# Linux default: 2 hours idle before the first keep-alive probe.
TCP_KEEPALIVE_DEFAULT = 7200.0


class DetectionRecord:
    """One failure (or false-positive) detection event."""

    __slots__ = ("target", "failed_at", "detected_at", "false_positive")

    def __init__(self, target: str, failed_at: Optional[float],
                 detected_at: float, false_positive: bool):
        self.target = target
        self.failed_at = failed_at
        self.detected_at = detected_at
        self.false_positive = false_positive

    @property
    def detection_latency(self) -> Optional[float]:
        if self.failed_at is None:
            return None
        return self.detected_at - self.failed_at


class HeartbeatDetector:
    """Pings a set of target nodes over the network."""

    def __init__(self, env: Environment, network: Network, name: str,
                 interval: float = 1.0, timeout: float = 1.0,
                 miss_threshold: int = 3,
                 ping_service_time: float = 0.0005):
        self.env = env
        self.network = network
        self.name = name
        self.interval = interval
        self.timeout = timeout
        self.miss_threshold = miss_threshold
        self.ping_service_time = ping_service_time
        self._targets: Dict[str, Node] = {}
        self._suspected: Dict[str, bool] = {}
        self._misses: Dict[str, int] = {}
        self._on_failure: List[Callable[[str], None]] = []
        self._on_recovery: List[Callable[[str], None]] = []
        self.detections: List[DetectionRecord] = []
        self._failed_at: Dict[str, Optional[float]] = {}
        self._running = False
        network.register(name, lambda message: None)

    # -- wiring ---------------------------------------------------------------

    def watch(self, node: Node) -> None:
        """Monitor ``node``; an RPC ping endpoint is installed on it that
        costs CPU time, so load delays responses."""
        self._targets[node.name] = node
        self._suspected[node.name] = False
        self._misses[node.name] = 0
        self._failed_at[node.name] = None
        node.on_crash(lambda n: self._note_real_failure(n.name))
        node.on_recover(lambda n: self._failed_at.__setitem__(n.name, None))

        def ping_handler(payload, sender):
            yield from node.execute(self.ping_service_time)
            return "pong"

        rpc_endpoint(self.network, f"ping:{node.name}", ping_handler)

    def _note_real_failure(self, target: str) -> None:
        self._failed_at[target] = self.env.now
        self.network.set_endpoint_down(f"ping:{target}", True)

    def on_failure(self, callback: Callable[[str], None]) -> None:
        self._on_failure.append(callback)

    def on_recovery(self, callback: Callable[[str], None]) -> None:
        self._on_recovery.append(callback)

    def is_suspected(self, target: str) -> bool:
        return self._suspected.get(target, False)

    # -- the detector loop -------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        for target in self._targets:
            self.env.process(self._monitor(target), name=f"hb:{target}")

    def stop(self) -> None:
        self._running = False

    def _monitor(self, target: str):
        while self._running:
            node = self._targets[target]
            if node.up:
                self.network.set_endpoint_down(f"ping:{target}", False)
            try:
                yield from self.network.rpc(
                    self.name, f"ping:{target}", "ping", timeout=self.timeout)
                self._misses[target] = 0
                if self._suspected[target]:
                    self._suspected[target] = False
                    for callback in self._on_recovery:
                        callback(target)
            except NetworkTimeout:
                self._misses[target] += 1
                if (self._misses[target] >= self.miss_threshold
                        and not self._suspected[target]):
                    self._suspected[target] = True
                    failed_at = self._failed_at.get(target)
                    record = DetectionRecord(
                        target, failed_at, self.env.now,
                        false_positive=node.up and self.network.connected(
                            self.name, f"ping:{target}"))
                    self.detections.append(record)
                    for callback in self._on_failure:
                        callback(target)
            yield self.env.timeout(self.interval)


class TcpKeepaliveDetector:
    """Detection by connection silence only — models drivers that rely on
    OS-default TCP keep-alive (section 4.3.4.2)."""

    def __init__(self, env: Environment,
                 keepalive_timeout: float = TCP_KEEPALIVE_DEFAULT):
        self.env = env
        self.keepalive_timeout = keepalive_timeout
        self._last_traffic: Dict[str, float] = {}
        self._failed_at: Dict[str, float] = {}
        self.detections: List[DetectionRecord] = []
        self._on_failure: List[Callable[[str], None]] = []
        self._watching: Dict[str, bool] = {}

    def note_traffic(self, peer: str) -> None:
        self._last_traffic[peer] = self.env.now

    def watch(self, node: Node) -> None:
        self._last_traffic[node.name] = self.env.now
        self._watching[node.name] = True
        node.on_crash(
            lambda n: self._failed_at.__setitem__(n.name, self.env.now))
        self.env.process(self._monitor(node.name), name=f"tcpka:{node.name}")

    def on_failure(self, callback: Callable[[str], None]) -> None:
        self._on_failure.append(callback)

    def _monitor(self, peer: str):
        while self._watching.get(peer):
            idle = self.env.now - self._last_traffic.get(peer, 0.0)
            if idle >= self.keepalive_timeout:
                failed_at = self._failed_at.get(peer)
                self.detections.append(DetectionRecord(
                    peer, failed_at, self.env.now,
                    false_positive=failed_at is None))
                for callback in self._on_failure:
                    callback(peer)
                return
            yield self.env.timeout(self.keepalive_timeout - idle)

    def stop(self, peer: Optional[str] = None) -> None:
        if peer is None:
            self._watching = {k: False for k in self._watching}
        else:
            self._watching[peer] = False
