"""Reliable total-order multicast over the simulated network.

Database replication needs "reliable multicast with total order to ensure
that each replica applies updates in the same order", and "the group
communication layer is an intrinsic scalability limit for such systems"
(section 4.3.4.1).  Two classic protocols are provided so the trade-off is
measurable (benchmark E19):

* **fixed sequencer** — 2 hops to order (sender -> sequencer -> all), but
  the sequencer serializes all traffic and is itself a failure point;
* **token ring** — no central orderer, but a sender waits on average half
  a token rotation before it may send, so ordering latency grows with the
  group size.

Both deliver each message to every current member in the same global
sequence order.  View changes (join/leave) are driven explicitly by the
layer above (the failure detector / middleware), matching the paper's
observation that failure detection is not the GC layer's magic.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .network import Message, Network
from .sim import Environment, Event


class Delivery:
    """One totally-ordered delivered message."""

    __slots__ = ("seq", "sender", "payload", "sent_at", "delivered_at")

    def __init__(self, seq: int, sender: str, payload: Any,
                 sent_at: float, delivered_at: float):
        self.seq = seq
        self.sender = sender
        self.payload = payload
        self.sent_at = sent_at
        self.delivered_at = delivered_at

    @property
    def latency(self) -> float:
        return self.delivered_at - self.sent_at


class _Member:
    def __init__(self, name: str, deliver: Callable[[Delivery], None]):
        self.name = name
        self.deliver = deliver
        self.next_expected = 1
        self.buffer: Dict[int, Delivery] = {}
        self.delivered_count = 0


class TotalOrderChannel:
    """A group communication channel with pluggable ordering protocol."""

    def __init__(self, env: Environment, network: Network, name: str,
                 protocol: str = "sequencer",
                 token_hop_time: Optional[float] = None):
        if protocol not in ("sequencer", "token"):
            raise ValueError(f"unknown protocol {protocol!r}")
        self.env = env
        self.network = network
        self.name = name
        self.protocol = protocol
        self._members: Dict[str, _Member] = {}
        self._member_order: List[str] = []
        self._seq = 0
        self._view_id = 0
        self._view_listeners: List[Callable[[int, List[str]], None]] = []
        # stats
        self.messages_ordered = 0
        self.delivery_latencies: List[float] = []
        self.control_messages = 0
        # sender -> completion events for ack tracking
        self._ack_waiters: Dict[int, Dict[str, Any]] = {}
        # token protocol state
        self._token_hop_time = token_hop_time
        self._token_queue: Dict[str, List] = {}
        self._token_running = False

        for suffix in ("seq",):
            network.register(f"{name}:{suffix}", self._sequencer_receive)

    # -- membership --------------------------------------------------------

    def join(self, member_name: str,
             deliver: Callable[[Delivery], None]) -> None:
        member = _Member(member_name, deliver)
        member.next_expected = self._seq + 1
        self._members[member_name] = member
        self._member_order.append(member_name)
        self._token_queue[member_name] = []
        self.network.register(
            f"{self.name}:m:{member_name}", self._member_receive(member))
        self._bump_view()
        if self.protocol == "token" and not self._token_running:
            self._token_running = True
            self.env.process(self._token_loop(), name=f"token:{self.name}")

    def leave(self, member_name: str) -> None:
        if member_name not in self._members:
            return
        del self._members[member_name]
        self._member_order.remove(member_name)
        self._token_queue.pop(member_name, None)
        self.network.unregister(f"{self.name}:m:{member_name}")
        self._bump_view()

    def _bump_view(self) -> None:
        self._view_id += 1
        view = list(self._member_order)
        for listener in list(self._view_listeners):
            listener(self._view_id, view)

    def on_view_change(self, listener: Callable[[int, List[str]], None]) -> None:
        self._view_listeners.append(listener)

    @property
    def view(self) -> List[str]:
        return list(self._member_order)

    @property
    def sequencer(self) -> Optional[str]:
        return self._member_order[0] if self._member_order else None

    # -- multicast ------------------------------------------------------------

    def multicast(self, sender: str, payload: Any, size: int = 1) -> Event:
        """Totally-ordered multicast.  The returned event triggers when the
        message has been *delivered at every current member* (the stability
        point a replication protocol waits for before acking the client)."""
        done = self.env.event()
        record = {
            "sender": sender, "payload": payload, "size": size,
            "sent_at": self.env.now, "done": done,
            "pending": None,  # member names still to deliver
        }
        if self.protocol == "sequencer":
            # hop 1: sender -> sequencer (skip the hop when sender IS the
            # sequencer's host — still one local enqueue)
            self.control_messages += 1
            self.network.send(
                f"{self.name}:m:{sender}" if sender in self._members else sender,
                f"{self.name}:seq", record, size=size)
        else:
            self._token_queue.setdefault(sender, []).append(record)
        return done

    # -- sequencer protocol -----------------------------------------------------

    def _sequencer_receive(self, message: Message):
        record = message.payload
        self._order_and_spread(record)
        return None

    def _order_and_spread(self, record: Dict[str, Any]) -> None:
        self._seq += 1
        seq = self._seq
        self.messages_ordered += 1
        members = list(self._members.keys())
        record["pending"] = set(members)
        self._ack_waiters[seq] = record
        for member_name in members:
            self.control_messages += 1
            self.network.send(
                f"{self.name}:seq", f"{self.name}:m:{member_name}",
                ("deliver", seq, record["sender"], record["payload"],
                 record["sent_at"]),
                size=record["size"])
        if not members:
            self._complete(seq)

    # -- member side --------------------------------------------------------------

    def _member_receive(self, member: _Member):
        def handler(message: Message):
            kind, seq, sender, payload, sent_at = message.payload
            delivery = Delivery(seq, sender, payload, sent_at, self.env.now)
            member.buffer[seq] = delivery
            self._flush_member(member)
            return None
        return handler

    def _flush_member(self, member: _Member) -> None:
        while member.next_expected in member.buffer:
            delivery = member.buffer.pop(member.next_expected)
            member.next_expected += 1
            member.delivered_count += 1
            delivery.delivered_at = self.env.now
            member.deliver(delivery)
            self._note_delivered(delivery.seq, member.name, delivery)

    def _note_delivered(self, seq: int, member_name: str,
                        delivery: Delivery) -> None:
        record = self._ack_waiters.get(seq)
        if record is None:
            return
        pending = record["pending"]
        pending.discard(member_name)
        # Members that left mid-flight no longer block stability.
        pending.intersection_update(self._members.keys())
        if not pending:
            self.delivery_latencies.append(self.env.now - record["sent_at"])
            self._complete(seq)

    def _complete(self, seq: int) -> None:
        record = self._ack_waiters.pop(seq, None)
        if record is not None and not record["done"].triggered:
            record["done"].succeed(seq)

    # -- token protocol ---------------------------------------------------------

    def _token_loop(self):
        """The token visits members round-robin; the holder orders and
        spreads its queued messages."""
        index = 0
        while self._token_running:
            if not self._member_order:
                yield self.env.timeout(self._hop_time())
                continue
            index %= len(self._member_order)
            holder = self._member_order[index]
            queued = self._token_queue.get(holder, [])
            while queued:
                record = queued.pop(0)
                self._order_and_spread(record)
                # spreading N copies costs the holder send time per member
                yield self.env.timeout(self._hop_time() * 0.1)
            index += 1
            yield self.env.timeout(self._hop_time())

    def _hop_time(self) -> float:
        if self._token_hop_time is not None:
            return self._token_hop_time
        return self.network.latency.base + self.network.latency.jitter / 2

    def stop(self) -> None:
        self._token_running = False

    # -- state transfer -----------------------------------------------------------

    def state_transfer(self, donor: str, joiner: str, state_size: int) -> Event:
        """Ship ``state_size`` units from a donor to a joining member over
        the channel's network — the expensive join path the paper warns
        about (section 4.3.4.1)."""
        done = self.env.event()
        delay = self.network.latency.sample(donor, joiner, size=state_size)

        def complete(event: Event) -> None:
            if not done.triggered:
                done.succeed(state_size)

        event = self.env.event()
        event.callbacks.append(complete)
        self.env._schedule_at(self.env.now + delay, event, None)
        return done

    # -- stats ----------------------------------------------------------------

    def mean_delivery_latency(self) -> float:
        if not self.delivery_latencies:
            return 0.0
        return sum(self.delivery_latencies) / len(self.delivery_latencies)
