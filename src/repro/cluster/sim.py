"""A small discrete-event simulation kernel (SimPy-flavoured).

Everything timing-related in the reproduction — network latency, CPU
service times, heartbeat timeouts, failover clocks — runs on this kernel,
so experiments are deterministic and a "one hour" availability run
finishes in milliseconds of wall time.

Model:

* an :class:`Environment` owns the clock and the event queue;
* a *process* is a Python generator that yields :class:`Event` objects
  (timeouts, other processes, resource requests, store gets...);
* when the yielded event triggers, the process resumes with the event's
  value (or the event's exception is thrown into it).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(Exception):
    """Kernel-level misuse (yielding a non-event, running a dead env...)."""


class Event:
    """A one-shot occurrence processes can wait on."""

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self.triggered = False
        self.ok = True
        self.value: Any = None
        self._defused = False

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.ok = True
        self.value = value
        self.env._dispatch(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.ok = False
        self.value = exception
        self.env._dispatch(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it is not re-raised at run()."""
        self._defused = True


class Timeout(Event):
    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(env)
        env._schedule_at(env.now + delay, self, value)


class AllOf(Event):
    """Triggers when every child event has triggered (fails fast on the
    first failure)."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._pending = 0
        self._values: List[Any] = []
        events = list(events)
        if not events:
            env._schedule_at(env.now, self, [])
            return
        self._pending = len(events)
        self._values = [None] * len(events)
        for index, event in enumerate(events):
            event.callbacks.append(self._make_callback(index))

    def _make_callback(self, index: int):
        def callback(event: Event) -> None:
            if self.triggered:
                return
            if not event.ok:
                event.defuse()
                self.fail(event.value)
                return
            self._values[index] = event.value
            self._pending -= 1
            if self._pending == 0:
                self.succeed(list(self._values))
        return callback


class AnyOf(Event):
    """Triggers when the first child event triggers."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        events = list(events)
        if not events:
            env._schedule_at(env.now, self, None)
            return
        for event in events:
            event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
        else:
            self.succeed(event.value)


class Process(Event):
    """A running generator.  The process event triggers when the generator
    returns (value = return value) or raises (event fails)."""

    def __init__(self, env: "Environment", generator: Generator,
                 name: str = ""):
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # bootstrap on the next dispatch slot
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        env._schedule_at(env.now, bootstrap, None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, reason: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        event = Event(self.env)
        event.callbacks.append(
            lambda _ev: self._step(Interrupt(reason), throw=True))
        self.env._schedule_at(self.env.now, event, None)

    def _resume(self, event: Event) -> None:
        if event.ok:
            self._step(event.value, throw=False)
        else:
            event.defuse()
            self._step(event.value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        if self.triggered:
            return
        try:
            if throw:
                target = self.generator.throw(value)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as interrupt:
            self.fail(interrupt)
            return
        except Exception as exc:  # noqa: BLE001 — propagate via event
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        self._target = target
        target.callbacks.append(self._resume)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Environment:
    """The simulation world: clock + event queue."""

    def __init__(self):
        self.now: float = 0.0
        self._queue: List = []
        self._counter = itertools.count()
        self._dispatching: List[Event] = []
        self.process_count = 0

    # -- factories --------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        self.process_count += 1
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule_at(self, time: float, event: Event, value: Any) -> None:
        heapq.heappush(self._queue, (time, next(self._counter), event, value))

    def _dispatch(self, event: Event) -> None:
        # Run callbacks immediately (same simulated instant).
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
        if not event.ok and not event._defused and not callbacks:
            # failure nobody is waiting on: surface at run()
            self._dispatching.append(event)

    # -- running ------------------------------------------------------------

    def step(self) -> None:
        if not self._queue:
            raise SimulationError("empty event queue")
        time, _tie, event, value = heapq.heappop(self._queue)
        self.now = time
        if event.triggered:
            return
        event.triggered = True
        event.ok = True
        event.value = value
        self._dispatch(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``."""
        while self._queue:
            self._raise_orphans()
            next_time = self._queue[0][0]
            if until is not None and next_time > until:
                self.now = until
                return
            self.step()
        self._raise_orphans()
        if until is not None and until > self.now:
            self.now = until

    def run_until(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; returns its value (raises its
        exception on failure).  ``limit`` guards against hangs."""
        while not event.triggered:
            if not self._queue:
                raise SimulationError(
                    "deadlock: event queue empty before target event")
            if limit is not None and self._queue[0][0] > limit:
                raise SimulationError(f"run_until exceeded limit {limit}")
            self.step()
        if not event.ok:
            event.defuse()
            raise event.value
        return event.value

    def _raise_orphans(self) -> None:
        while self._dispatching:
            event = self._dispatching.pop()
            if not event._defused:
                raise event.value

    @property
    def pending_events(self) -> int:
        return len(self._queue)


class Resource:
    """A capacity-limited resource with FIFO queuing (models a CPU, a disk,
    a connection slot).  ``request()`` returns an event that triggers when
    a slot is granted; callers must ``release()`` exactly once."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiting: List[Event] = []
        # simple stats for utilization reports
        self.total_wait_time = 0.0
        self.grants = 0
        self._wait_started: dict = {}

    def request(self) -> Event:
        event = self.env.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            self.grants += 1
            self.env._schedule_at(self.env.now, event, None)
        else:
            self._wait_started[id(event)] = self.env.now
            self._waiting.append(event)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release without request")
        if self._waiting:
            event = self._waiting.pop(0)
            started = self._wait_started.pop(id(event), self.env.now)
            self.total_wait_time += self.env.now - started
            self.grants += 1
            self.env._schedule_at(self.env.now, event, None)
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._waiting)


class Store:
    """An unbounded FIFO message store (mailbox)."""

    def __init__(self, env: Environment):
        self.env = env
        self._items: List[Any] = []
        self._getters: List[Event] = []

    def put(self, item: Any) -> None:
        if self._getters:
            getter = self._getters.pop(0)
            self.env._schedule_at(self.env.now, getter, item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = self.env.event()
        if self._items:
            self.env._schedule_at(self.env.now, event, self._items.pop(0))
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)
