"""``repro.cluster`` — the simulated distributed environment substrate.

A deterministic discrete-event simulator (``sim``), a network fabric with
latency/partitions/loss (``network``), simulated hosts with CPU queues and
silent degradation (``nodes``), total-order group communication
(``groupcomm``), failure detectors (``heartbeat``) and a fault injector
(``failures``).
"""

from .failures import (
    FaultEvent, FaultInjector, PAPER_FAILURES_PER_CPU_DAY, SECONDS_PER_DAY,
    random_schedule,
)
from .groupcomm import Delivery, TotalOrderChannel
from .heartbeat import (
    DetectionRecord, HeartbeatDetector, TCP_KEEPALIVE_DEFAULT,
    TcpKeepaliveDetector,
)
from .network import (
    LatencyModel, Message, Network, NetworkDown, NetworkTimeout, rpc_endpoint,
)
from .nodes import Node, NodeDown
from .sim import (
    AllOf, AnyOf, Environment, Event, Interrupt, Process, Resource,
    SimulationError, Store, Timeout,
)

__all__ = [
    "AllOf", "AnyOf", "Delivery", "DetectionRecord", "Environment", "Event",
    "FaultEvent", "FaultInjector", "HeartbeatDetector", "Interrupt",
    "LatencyModel", "Message", "Network", "NetworkDown", "NetworkTimeout",
    "Node", "NodeDown", "PAPER_FAILURES_PER_CPU_DAY", "Process", "Resource",
    "SECONDS_PER_DAY", "SimulationError", "Store", "TCP_KEEPALIVE_DEFAULT",
    "TcpKeepaliveDetector", "Timeout", "TotalOrderChannel",
    "random_schedule", "rpc_endpoint",
]
