"""A queryable ``information_schema`` (paper section 4.1.5).

"Despite the recent trend to store user data in the database information
schema, access control information is often considered orthogonal to
database content."  This engine follows that trend: catalog metadata —
tables, columns, sequences, triggers, procedures and users — is exposed as
read-only virtual tables under the ``information_schema`` database name,
so middleware and tools can discover schema without ad-hoc APIs:

    SELECT table_name FROM information_schema.tables WHERE table_db = 'shop'

The views are materialized per statement from live catalog state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from .errors import NameError_
from .storage import Table
from .types import Column, ColumnType

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine

DATABASE_NAME = "information_schema"

_VIEWS = ("tables", "columns", "sequences", "triggers", "procedures",
          "users")


def is_information_schema(database_name: Optional[str]) -> bool:
    return (database_name or "").lower() == DATABASE_NAME


def view_names() -> List[str]:
    return list(_VIEWS)


def build_view(engine: "Engine", view_name: str) -> Table:
    """Materialize one information_schema view as an ordinary Table."""
    builder = _BUILDERS.get(view_name.lower())
    if builder is None:
        raise NameError_(
            f"no table {view_name!r} in database {DATABASE_NAME!r}")
    return builder(engine)


def _varchar(name: str) -> Column:
    return Column(name, ColumnType.VARCHAR)


def _int(name: str) -> Column:
    return Column(name, ColumnType.INT)


def _bool(name: str) -> Column:
    return Column(name, ColumnType.BOOLEAN)


def _fill(table: Table, rows) -> Table:
    for row in rows:
        version = table.insert_version(row, creator_txn=0)
        version.created_ts = 0   # visible to every snapshot
    return table


def _tables_view(engine: "Engine") -> Table:
    table = Table("tables", [
        _varchar("table_db"), _varchar("table_name"), _int("row_versions"),
        _bool("temporary"),
    ])
    rows = []
    for db_name in sorted(engine.databases):
        database = engine.databases[db_name]
        for name in sorted(database.tables):
            t = database.tables[name]
            rows.append({
                "table_db": db_name, "table_name": name,
                "row_versions": t.version_count(),
                "temporary": t.temporary,
            })
    return _fill(table, rows)


def _columns_view(engine: "Engine") -> Table:
    table = Table("columns", [
        _varchar("table_db"), _varchar("table_name"),
        _varchar("column_name"), _varchar("data_type"),
        _bool("nullable"), _bool("primary_key"), _bool("is_auto_increment"),
        _int("ordinal"),
    ])
    rows = []
    for db_name in sorted(engine.databases):
        database = engine.databases[db_name]
        for name in sorted(database.tables):
            for ordinal, column in enumerate(database.tables[name].columns):
                rows.append({
                    "table_db": db_name, "table_name": name,
                    "column_name": column.name.lower(),
                    "data_type": column.type.value,
                    "nullable": column.nullable,
                    "primary_key": column.primary_key,
                    "is_auto_increment": column.auto_increment,
                    "ordinal": ordinal,
                })
    return _fill(table, rows)


def _sequences_view(engine: "Engine") -> Table:
    table = Table("sequences", [
        _varchar("sequence_db"), _varchar("sequence_name"),
        _int("last_value"), _int("increment"),
    ])
    rows = []
    for db_name in sorted(engine.databases):
        database = engine.databases[db_name]
        for name in sorted(database.sequences):
            sequence = database.sequences[name]
            rows.append({
                "sequence_db": db_name, "sequence_name": name,
                "last_value": sequence.last_value,
                "increment": sequence.increment,
            })
    return _fill(table, rows)


def _triggers_view(engine: "Engine") -> Table:
    table = Table("triggers", [
        _varchar("trigger_db"), _varchar("trigger_name"),
        _varchar("table_name"), _varchar("timing"), _varchar("event"),
        _varchar("owner"), _bool("enabled"),
    ])
    rows = []
    for db_name in sorted(engine.databases):
        database = engine.databases[db_name]
        for name in sorted(database.triggers):
            trigger = database.triggers[name]
            rows.append({
                "trigger_db": db_name, "trigger_name": name,
                "table_name": trigger.table, "timing": trigger.timing,
                "event": trigger.event, "owner": trigger.owner,
                "enabled": trigger.enabled,
            })
    return _fill(table, rows)


def _procedures_view(engine: "Engine") -> Table:
    table = Table("procedures", [
        _varchar("procedure_db"), _varchar("procedure_name"),
        _int("parameter_count"), _varchar("owner"),
    ])
    rows = []
    for db_name in sorted(engine.databases):
        database = engine.databases[db_name]
        for name in sorted(database.procedures):
            procedure = database.procedures[name]
            rows.append({
                "procedure_db": db_name, "procedure_name": name,
                "parameter_count": len(procedure.params),
                "owner": procedure.owner,
            })
    return _fill(table, rows)


def _users_view(engine: "Engine") -> Table:
    table = Table("users", [
        _varchar("user_name"), _bool("superuser"), _int("grant_count"),
    ])
    rows = [
        {
            "user_name": user.name, "superuser": user.superuser,
            "grant_count": sum(len(g) for g in user.grants.values()),
        }
        for user in sorted(engine.users.all_users(), key=lambda u: u.name)
    ]
    return _fill(table, rows)


_BUILDERS = {
    "tables": _tables_view,
    "columns": _columns_view,
    "sequences": _sequences_view,
    "triggers": _triggers_view,
    "procedures": _procedures_view,
    "users": _users_view,
}
