"""Engine-level dump and restore.

Paper section 4.4.1 / 4.1.5: real backup tools "typically capture only
data, without user-related information", triggers and stored procedures
"are also rarely backed up", and sequences need workarounds because they
are not in the transaction log.  :class:`BackupOptions` makes every one of
those gaps an explicit switch, with the **defaults reproducing the lossy
behaviour of typical tools** — the cluster-level backup coordinator in
``repro.core.backup`` must opt in to a faithful clone.

A dump carries the binlog sequence number current at dump time so the
recovery log can replay exactly the missed updates (Sequoia-style
checkpointing, section 4.4.2).
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional

from .auth import User
from .engine import Engine
from .errors import SQLError
from .mvcc import visible_rows
from .sequences import Sequence
from .storage import Table
from .triggers import Trigger


class BackupOptions:
    """What a dump captures.  Defaults mirror common (lossy) tools."""

    __slots__ = ("include_users", "include_triggers", "include_procedures",
                 "include_sequences", "include_auto_counters")

    def __init__(self, include_users: bool = False,
                 include_triggers: bool = False,
                 include_procedures: bool = False,
                 include_sequences: bool = False,
                 include_auto_counters: bool = False):
        self.include_users = include_users
        self.include_triggers = include_triggers
        self.include_procedures = include_procedures
        self.include_sequences = include_sequences
        self.include_auto_counters = include_auto_counters

    @classmethod
    def full_clone(cls) -> "BackupOptions":
        """Everything needed to properly clone a replica — what the paper's
        industrial agenda asks tools to support."""
        return cls(True, True, True, True, True)


class EngineDump:
    """A consistent dump of one engine's committed state."""

    def __init__(self, engine_name: str, binlog_sequence: int,
                 commit_ts: int, options: BackupOptions):
        self.engine_name = engine_name
        self.binlog_sequence = binlog_sequence
        self.commit_ts = commit_ts
        self.options = options
        # db -> table -> list of row dicts
        self.data: Dict[str, Dict[str, List[Dict[str, Any]]]] = {}
        # db -> table -> schema Table (cloned, empty)
        self.schemas: Dict[str, Dict[str, Table]] = {}
        self.sequences: Dict[str, Dict[str, Dict[str, int]]] = {}
        self.auto_counters: Dict[str, Dict[str, Dict[str, int]]] = {}
        self.triggers: Dict[str, List[Trigger]] = {}
        self.procedures: Dict[str, list] = {}
        self.users: List[User] = []

    def size_rows(self) -> int:
        return sum(
            len(rows)
            for tables in self.data.values()
            for rows in tables.values()
        )


def dump_engine(engine: Engine, options: Optional[BackupOptions] = None,
                databases: Optional[List[str]] = None) -> EngineDump:
    """Take a read-consistent dump of committed data.

    Consistency note (section 4.1.1): the dump reads a single engine-wide
    snapshot, but *running transactions are not included* — this is the
    "read-consistent copy ... without handling active transactions" limit
    of real hot-backup tools.
    """
    if engine.crashed:
        raise SQLError(f"engine {engine.name!r} is down, cannot dump")
    options = options or BackupOptions()
    snapshot = engine.clock.snapshot()
    dump = EngineDump(engine.name, engine.binlog.head_sequence,
                      snapshot.timestamp, options)
    for db_name in sorted(databases or engine.databases.keys()):
        database = engine.database(db_name)
        dump.data[db_name] = {}
        dump.schemas[db_name] = {}
        for table_name, table in sorted(database.tables.items()):
            if table.temporary:
                continue  # temp tables never enter a dump (section 4.1.4)
            dump.schemas[db_name][table_name] = table.clone_schema()
            dump.data[db_name][table_name] = [
                dict(version.values)
                for version in visible_rows(table, snapshot, None)
            ]
            if options.include_auto_counters:
                dump.auto_counters.setdefault(db_name, {})[table_name] = \
                    table.auto_counter_state()
        if options.include_sequences:
            dump.sequences[db_name] = {
                name: sequence.state()
                for name, sequence in database.sequences.items()
            }
        if options.include_triggers:
            dump.triggers[db_name] = [
                copy.copy(trigger) for trigger in database.triggers.values()
            ]
        if options.include_procedures:
            dump.procedures[db_name] = list(database.procedures.values())
    if options.include_users:
        dump.users = [user.clone() for user in engine.users.all_users()]
    return dump


def restore_engine(engine: Engine, dump: EngineDump,
                   replace: bool = True) -> None:
    """Load ``dump`` into ``engine``.

    Whatever the dump did not capture simply is not restored — a dump made
    with default options produces a replica that has the data but lost its
    users, triggers, procedures and sequence positions (the paper's cloning
    gap).
    """
    for db_name, tables in dump.data.items():
        if replace and db_name.lower() in engine.databases:
            engine.drop_database(db_name)
        database = engine.create_database(db_name, if_not_exists=True)
        for table_name, rows in tables.items():
            schema = dump.schemas[db_name][table_name]
            table = schema.clone_schema()
            database.create_table(table)
            ts = engine.clock.tick()
            for row in rows:
                version = table.insert_version(dict(row), creator_txn=0)
                version.created_ts = ts
            counters = dump.auto_counters.get(db_name, {}).get(table_name)
            if counters:
                for column, value in counters.items():
                    table.bump_auto_value(column, value)
            elif not dump.options.include_auto_counters:
                # Best effort of real restore tools: push the counter past
                # the max existing value so the *next* insert does not
                # collide immediately.  Divergence risk remains for gaps.
                for column in list(table.auto_counter_state().keys()):
                    existing = [
                        row.get(column) for row in rows
                        if isinstance(row.get(column), int)
                    ]
                    if existing:
                        table.bump_auto_value(column, max(existing))
        for name, state in dump.sequences.get(db_name, {}).items():
            database.sequences[name] = Sequence.from_state(name, state)
        for trigger in dump.triggers.get(db_name, []):
            database.triggers[trigger.name.lower()] = trigger
        for procedure in dump.procedures.get(db_name, []):
            database.procedures[procedure.name.lower()] = procedure
    for user in dump.users:
        engine.users.restore_user(user)
