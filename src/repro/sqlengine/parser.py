"""Recursive-descent parser for the engine's SQL subset.

The subset is chosen to cover everything the paper's gap analysis needs:
multi-database qualified names, transactions with isolation levels,
sequences, triggers, stored procedures, temporary tables, GRANT/REVOKE,
LIMIT without ORDER BY (the section 4.3.2 divergence hazard), and the
non-deterministic functions NOW()/RAND().
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from . import ast_nodes as ast
from .errors import ParseError
from .tokens import TokenStream, TokenType, tokenize


def parse(sql: str) -> ast.Statement:
    """Parse a single SQL statement (a trailing ``;`` is tolerated)."""
    statements = parse_script(sql)
    if len(statements) != 1:
        raise ParseError(f"expected a single statement, got {len(statements)}")
    return statements[0]


# Auto-parameterization (hot-path, ROADMAP item 4): OLTP traffic is the
# same few statement shapes with different key values, but a parse cache
# keyed on SQL text sees every key as a new statement.  Rewriting bare
# integer literals to positional params turns the whole key space into
# one cache entry.  Conservative on purpose: integers only (never inside
# identifiers, floats, or strings — the quote gate skips those
# statements entirely), single statements, DML verbs only.
_INT_LITERAL_RE = re.compile(r"(?<![\w.])(\d+)(?![\w.])")
_PARAM_VERB_RE = re.compile(r"^\s*(?:SELECT|UPDATE|DELETE|INSERT)\b",
                            re.IGNORECASE)


def parameterize_literals(sql: str) -> Optional[Tuple[str, List[int]]]:
    """Rewrite bare integer literals in ``sql`` as ``?`` placeholders.

    Returns ``(template, values)``, or ``None`` when the statement is not
    safely rewritable (non-DML, contains strings or explicit params, is a
    multi-statement script, or simply has no integer literals).  The
    template executes identically to the original with ``values`` bound
    positionally — callers cache the parsed template.
    """
    if "?" in sql or "'" in sql or ";" in sql:
        return None
    if _PARAM_VERB_RE.match(sql) is None:
        return None
    values: List[int] = []

    def _sub(match: "re.Match") -> str:
        values.append(int(match.group(1)))
        return "?"

    template = _INT_LITERAL_RE.sub(_sub, sql)
    if not values:
        return None
    return template, values


def parse_script(sql: str) -> List[ast.Statement]:
    """Parse a ``;``-separated sequence of statements."""
    stream = TokenStream(tokenize(sql))
    statements: List[ast.Statement] = []
    while not stream.at_end():
        if stream.accept_operator(";"):
            continue
        statements.append(_Parser(stream).parse_statement())
    return statements


class _Parser:
    def __init__(self, stream: TokenStream):
        self.stream = stream
        self._param_count = 0

    # -- statement dispatch ----------------------------------------------

    def parse_statement(self) -> ast.Statement:
        token = self.stream.peek()
        if token.type is not TokenType.KEYWORD:
            raise ParseError(f"unexpected token {token.value!r}")
        handlers = {
            "SELECT": self._parse_select,
            "INSERT": self._parse_insert,
            "UPDATE": self._parse_update,
            "DELETE": self._parse_delete,
            "CREATE": self._parse_create,
            "DROP": self._parse_drop,
            "ALTER": self._parse_alter,
            "BEGIN": self._parse_begin,
            "START": self._parse_begin,
            "COMMIT": self._parse_commit,
            "ROLLBACK": self._parse_rollback,
            "SET": self._parse_set,
            "GRANT": self._parse_grant,
            "REVOKE": self._parse_revoke,
            "USE": self._parse_use,
            "CALL": self._parse_call,
            "LOCK": self._parse_lock,
            "EXPLAIN": self._parse_explain,
        }
        handler = handlers.get(token.value)
        if handler is None:
            raise ParseError(f"unsupported statement starting with {token.value}")
        return handler()

    # -- EXPLAIN -----------------------------------------------------------

    def _parse_explain(self) -> ast.ExplainStatement:
        self.stream.expect_keyword("EXPLAIN")
        inner = self.parse_statement()
        if not isinstance(inner, (ast.SelectStatement, ast.UpdateStatement,
                                  ast.DeleteStatement)):
            raise ParseError("EXPLAIN supports SELECT, UPDATE and DELETE")
        return ast.ExplainStatement(inner)

    # -- SELECT ------------------------------------------------------------

    def _parse_select(self) -> ast.SelectStatement:
        self.stream.expect_keyword("SELECT")
        distinct = bool(self.stream.accept_keyword("DISTINCT"))
        if not distinct:
            self.stream.accept_keyword("ALL")
        columns = self._parse_select_columns()
        source = None
        if self.stream.accept_keyword("FROM"):
            source = self._parse_table_source()
        where = None
        if self.stream.accept_keyword("WHERE"):
            where = self._parse_expression()
        group_by: List[ast.Expression] = []
        if self.stream.accept_keyword("GROUP"):
            self.stream.expect_keyword("BY")
            group_by.append(self._parse_expression())
            while self.stream.accept_operator(","):
                group_by.append(self._parse_expression())
        having = None
        if self.stream.accept_keyword("HAVING"):
            having = self._parse_expression()
        order_by: List[Tuple[ast.Expression, bool]] = []
        if self.stream.accept_keyword("ORDER"):
            self.stream.expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self.stream.accept_operator(","):
                order_by.append(self._parse_order_item())
        limit = offset = None
        if self.stream.accept_keyword("LIMIT"):
            limit = self._parse_expression()
            if self.stream.accept_keyword("OFFSET"):
                offset = self._parse_expression()
        elif self.stream.accept_keyword("OFFSET"):
            offset = self._parse_expression()
        for_update = False
        if self.stream.accept_keyword("FOR"):
            self.stream.expect_keyword("UPDATE")
            for_update = True
        return ast.SelectStatement(
            columns, source, where=where, group_by=group_by, having=having,
            order_by=order_by, limit=limit, offset=offset,
            distinct=distinct, for_update=for_update,
        )

    def _parse_order_item(self) -> Tuple[ast.Expression, bool]:
        expr = self._parse_expression()
        ascending = True
        if self.stream.accept_keyword("DESC"):
            ascending = False
        else:
            self.stream.accept_keyword("ASC")
        return expr, ascending

    def _parse_select_columns(self):
        columns = [self._parse_select_column()]
        while self.stream.accept_operator(","):
            columns.append(self._parse_select_column())
        return columns

    def _parse_select_column(self):
        if self.stream.peek().is_operator("*"):
            self.stream.next()
            return (ast.Star(), None)
        # `alias.*`
        if (
            self.stream.peek().type is TokenType.IDENT
            and self.stream.peek(1).is_operator(".")
            and self.stream.peek(2).is_operator("*")
        ):
            table = self.stream.next().value
            self.stream.next()
            self.stream.next()
            return (ast.Star(table=table), None)
        expr = self._parse_expression()
        alias = None
        if self.stream.accept_keyword("AS"):
            alias = self.stream.expect_ident().value
        elif self.stream.peek().type is TokenType.IDENT:
            alias = self.stream.next().value
        return (expr, alias)

    def _parse_table_source(self):
        source = self._parse_table_primary()
        while True:
            kind = None
            if self.stream.accept_keyword("JOIN"):
                kind = "INNER"
            elif self.stream.peek().is_keyword("INNER"):
                self.stream.next()
                self.stream.expect_keyword("JOIN")
                kind = "INNER"
            elif self.stream.peek().is_keyword("LEFT"):
                self.stream.next()
                self.stream.accept_keyword("OUTER")
                self.stream.expect_keyword("JOIN")
                kind = "LEFT"
            elif self.stream.accept_operator(","):
                right = self._parse_table_primary()
                source = ast.Join(source, right, "CROSS", None)
                continue
            else:
                break
            right = self._parse_table_primary()
            condition = None
            if self.stream.accept_keyword("ON"):
                condition = self._parse_expression()
            source = ast.Join(source, right, kind, condition)
        return source

    def _parse_table_primary(self):
        if self.stream.peek().is_operator("("):
            self.stream.next()
            select = self._parse_select()
            self.stream.expect_operator(")")
            self.stream.accept_keyword("AS")
            alias = self.stream.expect_ident().value
            return ast.SubquerySource(select, alias)
        name = self._parse_qualified_name()
        alias = None
        if self.stream.accept_keyword("AS"):
            alias = self.stream.expect_ident().value
        elif self.stream.peek().type is TokenType.IDENT:
            alias = self.stream.next().value
        return ast.TableRef(name, alias)

    # -- INSERT / UPDATE / DELETE ------------------------------------------

    def _parse_insert(self) -> ast.InsertStatement:
        self.stream.expect_keyword("INSERT")
        self.stream.expect_keyword("INTO")
        table = self._parse_qualified_name()
        columns = None
        if self.stream.peek().is_operator("("):
            self.stream.next()
            columns = [self.stream.expect_ident().value]
            while self.stream.accept_operator(","):
                columns.append(self.stream.expect_ident().value)
            self.stream.expect_operator(")")
        if self.stream.peek().is_keyword("SELECT"):
            return ast.InsertStatement(table, columns, select=self._parse_select())
        self.stream.expect_keyword("VALUES")
        rows = [self._parse_value_row()]
        while self.stream.accept_operator(","):
            rows.append(self._parse_value_row())
        return ast.InsertStatement(table, columns, rows=rows)

    def _parse_value_row(self) -> List[ast.Expression]:
        self.stream.expect_operator("(")
        row = [self._parse_expression()]
        while self.stream.accept_operator(","):
            row.append(self._parse_expression())
        self.stream.expect_operator(")")
        return row

    def _parse_update(self) -> ast.UpdateStatement:
        self.stream.expect_keyword("UPDATE")
        table = self._parse_qualified_name()
        self.stream.expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self.stream.accept_operator(","):
            assignments.append(self._parse_assignment())
        where = None
        if self.stream.accept_keyword("WHERE"):
            where = self._parse_expression()
        return ast.UpdateStatement(table, assignments, where=where)

    def _parse_assignment(self) -> Tuple[str, ast.Expression]:
        column = self.stream.expect_ident().value
        self.stream.expect_operator("=")
        return column, self._parse_expression()

    def _parse_delete(self) -> ast.DeleteStatement:
        self.stream.expect_keyword("DELETE")
        self.stream.expect_keyword("FROM")
        table = self._parse_qualified_name()
        where = None
        if self.stream.accept_keyword("WHERE"):
            where = self._parse_expression()
        return ast.DeleteStatement(table, where=where)

    # -- CREATE -------------------------------------------------------------

    def _parse_create(self) -> ast.Statement:
        self.stream.expect_keyword("CREATE")
        if self.stream.accept_keyword("TEMPORARY") or self.stream.accept_keyword("TEMP"):
            self.stream.expect_keyword("TABLE")
            return self._parse_create_table(temporary=True)
        if self.stream.accept_keyword("UNIQUE"):
            self.stream.expect_keyword("INDEX")
            return self._parse_create_index(unique=True)
        token = self.stream.next()
        if token.is_keyword("TABLE"):
            return self._parse_create_table(temporary=False)
        if token.is_keyword("DATABASE"):
            if_not_exists = self._accept_if_not_exists()
            return ast.CreateDatabaseStatement(
                self.stream.expect_ident().value, if_not_exists)
        if token.is_keyword("SCHEMA"):
            if_not_exists = self._accept_if_not_exists()
            return ast.CreateSchemaStatement(
                self.stream.expect_ident().value, if_not_exists)
        if token.is_keyword("INDEX"):
            return self._parse_create_index(unique=False)
        if token.is_keyword("SEQUENCE"):
            return self._parse_create_sequence()
        if token.is_keyword("TRIGGER"):
            return self._parse_create_trigger()
        if token.is_keyword("PROCEDURE"):
            return self._parse_create_procedure()
        if token.is_keyword("USER"):
            name = self.stream.expect_ident().value
            password = ""
            if self.stream.accept_keyword("IDENTIFIED"):
                self.stream.expect_keyword("BY")
                password = self.stream.next().value
            elif self.stream.accept_keyword("WITH"):
                self.stream.expect_keyword("PASSWORD")
                password = self.stream.next().value
            return ast.CreateUserStatement(name, password)
        raise ParseError(f"unsupported CREATE {token.value}")

    def _accept_if_not_exists(self) -> bool:
        if self.stream.accept_keyword("IF"):
            self.stream.expect_keyword("NOT")
            self.stream.expect_keyword("EXISTS")
            return True
        return False

    def _parse_create_table(self, temporary: bool) -> ast.CreateTableStatement:
        if_not_exists = self._accept_if_not_exists()
        table = self._parse_qualified_name()
        self.stream.expect_operator("(")
        columns = [self._parse_column_def()]
        while self.stream.accept_operator(","):
            if self.stream.peek().is_keyword("PRIMARY"):
                # Table-level PRIMARY KEY (col, ...)
                self.stream.next()
                self.stream.expect_keyword("KEY")
                self.stream.expect_operator("(")
                names = [self.stream.expect_ident().value]
                while self.stream.accept_operator(","):
                    names.append(self.stream.expect_ident().value)
                self.stream.expect_operator(")")
                wanted = {n.lower() for n in names}
                for col in columns:
                    if col.name.lower() in wanted:
                        col.primary_key = True
                        col.nullable = False
                continue
            columns.append(self._parse_column_def())
        self.stream.expect_operator(")")
        return ast.CreateTableStatement(table, columns, temporary, if_not_exists)

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self.stream.expect_ident().value
        type_token = self.stream.next()
        if type_token.type not in (TokenType.IDENT, TokenType.KEYWORD):
            raise ParseError(f"expected column type, got {type_token.value!r}")
        type_name = type_token.value
        # Optional (length) / (precision, scale) — parsed and ignored.
        if self.stream.peek().is_operator("("):
            self.stream.next()
            while not self.stream.peek().is_operator(")"):
                self.stream.next()
            self.stream.expect_operator(")")
        column = ast.ColumnDef(name, type_name)
        if type_name.upper() == "SERIAL":
            column.auto_increment = True
        while True:
            if self.stream.accept_keyword("PRIMARY"):
                self.stream.expect_keyword("KEY")
                column.primary_key = True
                column.nullable = False
            elif self.stream.accept_keyword("UNIQUE"):
                column.unique = True
            elif self.stream.accept_keyword("NOT"):
                self.stream.expect_keyword("NULL")
                column.nullable = False
            elif self.stream.accept_keyword("NULL"):
                column.nullable = True
            elif self.stream.accept_keyword("AUTO_INCREMENT"):
                column.auto_increment = True
            elif self.stream.accept_keyword("DEFAULT"):
                column.default = self._parse_expression()
            elif self.stream.accept_keyword("REFERENCES"):
                self._parse_qualified_name()
                if self.stream.peek().is_operator("("):
                    self.stream.next()
                    self.stream.expect_ident()
                    self.stream.expect_operator(")")
            else:
                break
        return column

    def _parse_create_index(self, unique: bool) -> ast.CreateIndexStatement:
        name = self.stream.expect_ident().value
        self.stream.expect_keyword("ON")
        table = self._parse_qualified_name()
        self.stream.expect_operator("(")
        columns = [self.stream.expect_ident().value]
        while self.stream.accept_operator(","):
            columns.append(self.stream.expect_ident().value)
        self.stream.expect_operator(")")
        return ast.CreateIndexStatement(name, table, columns, unique)

    def _parse_create_sequence(self) -> ast.CreateSequenceStatement:
        name = self._parse_qualified_name()
        start, increment = 1, 1
        while True:
            if self.stream.accept_keyword("START"):
                self.stream.accept_keyword("WITH")
                start = self._parse_signed_int()
            elif self.stream.accept_keyword("INCREMENT"):
                self.stream.accept_keyword("BY")
                increment = self._parse_signed_int()
            elif self.stream.accept_keyword("CACHE"):
                self._parse_signed_int()
            else:
                break
        return ast.CreateSequenceStatement(name, start, increment)

    def _parse_signed_int(self) -> int:
        negative = bool(self.stream.accept_operator("-"))
        token = self.stream.next()
        if token.type is not TokenType.NUMBER:
            raise ParseError(f"expected integer, got {token.value!r}")
        value = int(token.value)
        return -value if negative else value

    def _parse_create_trigger(self) -> ast.CreateTriggerStatement:
        name = self.stream.expect_ident().value
        timing_token = self.stream.next()
        if not timing_token.is_keyword("BEFORE", "AFTER"):
            raise ParseError("expected BEFORE or AFTER in CREATE TRIGGER")
        event_token = self.stream.next()
        if not event_token.is_keyword("INSERT", "UPDATE", "DELETE"):
            raise ParseError("expected INSERT/UPDATE/DELETE in CREATE TRIGGER")
        self.stream.expect_keyword("ON")
        table = self._parse_qualified_name()
        if self.stream.accept_keyword("FOR"):
            self.stream.expect_keyword("EACH")
            self.stream.expect_keyword("ROW")
        body = self._parse_block()
        return ast.CreateTriggerStatement(
            name, timing_token.value, event_token.value, table, body)

    def _parse_create_procedure(self) -> ast.CreateProcedureStatement:
        name = self._parse_qualified_name()
        params: List[str] = []
        if self.stream.accept_operator("("):
            if not self.stream.peek().is_operator(")"):
                params.append(self.stream.expect_ident().value)
                while self.stream.accept_operator(","):
                    params.append(self.stream.expect_ident().value)
            self.stream.expect_operator(")")
        body = self._parse_block()
        return ast.CreateProcedureStatement(name, params, body)

    def _parse_block(self) -> List[ast.Statement]:
        """``BEGIN stmt; stmt; ... END`` used by triggers and procedures."""
        self.stream.expect_keyword("BEGIN")
        body: List[ast.Statement] = []
        while not self.stream.peek().is_keyword("END"):
            if self.stream.accept_operator(";"):
                continue
            body.append(self.parse_statement())
            # statements inside a block are ';'-separated
            if not self.stream.peek().is_keyword("END"):
                self.stream.expect_operator(";")
        self.stream.expect_keyword("END")
        return body

    # -- DROP / ALTER ---------------------------------------------------------

    def _parse_drop(self) -> ast.DropStatement:
        self.stream.expect_keyword("DROP")
        self.stream.accept_keyword("TEMPORARY") or self.stream.accept_keyword("TEMP")
        kind_token = self.stream.next()
        if not kind_token.is_keyword(
            "TABLE", "DATABASE", "SCHEMA", "INDEX", "SEQUENCE",
            "TRIGGER", "PROCEDURE", "USER", "VIEW",
        ):
            raise ParseError(f"unsupported DROP {kind_token.value}")
        if_exists = False
        if self.stream.accept_keyword("IF"):
            self.stream.expect_keyword("EXISTS")
            if_exists = True
        name = self._parse_qualified_name()
        self.stream.accept_keyword("CASCADE") or self.stream.accept_keyword("RESTRICT")
        return ast.DropStatement(kind_token.value, name, if_exists)

    def _parse_alter(self) -> ast.AlterTableStatement:
        self.stream.expect_keyword("ALTER")
        self.stream.expect_keyword("TABLE")
        table = self._parse_qualified_name()
        if self.stream.accept_keyword("ADD"):
            self.stream.accept_keyword("COLUMN")
            column = self._parse_column_def()
            return ast.AlterTableStatement(table, "ADD_COLUMN", column=column)
        if self.stream.accept_keyword("RENAME"):
            self.stream.expect_keyword("TO")
            new_name = self.stream.expect_ident().value
            return ast.AlterTableStatement(table, "RENAME", new_name=new_name)
        raise ParseError("unsupported ALTER TABLE action")

    # -- transactions -----------------------------------------------------------

    def _parse_begin(self) -> ast.BeginStatement:
        token = self.stream.next()
        if token.is_keyword("START"):
            self.stream.expect_keyword("TRANSACTION")
        else:
            self.stream.accept_keyword("TRANSACTION") or self.stream.accept_keyword("WORK")
        isolation = None
        if self.stream.accept_keyword("ISOLATION"):
            self.stream.expect_keyword("LEVEL")
            isolation = self._parse_isolation_level()
        return ast.BeginStatement(isolation)

    def _parse_isolation_level(self) -> str:
        token = self.stream.next()
        if token.is_keyword("READ"):
            second = self.stream.next()
            if second.is_keyword("COMMITTED"):
                return "READ COMMITTED"
            if second.is_keyword("UNCOMMITTED"):
                return "READ UNCOMMITTED"
            raise ParseError("expected COMMITTED or UNCOMMITTED")
        if token.is_keyword("REPEATABLE"):
            self.stream.expect_keyword("READ")
            return "REPEATABLE READ"
        if token.is_keyword("SERIALIZABLE"):
            return "SERIALIZABLE"
        if token.is_keyword("SNAPSHOT"):
            return "SNAPSHOT"
        raise ParseError(f"unknown isolation level {token.value!r}")

    def _parse_commit(self) -> ast.CommitStatement:
        self.stream.expect_keyword("COMMIT")
        self.stream.accept_keyword("WORK")
        return ast.CommitStatement()

    def _parse_rollback(self) -> ast.RollbackStatement:
        self.stream.expect_keyword("ROLLBACK")
        self.stream.accept_keyword("WORK")
        return ast.RollbackStatement()

    def _parse_set(self) -> ast.SetStatement:
        self.stream.expect_keyword("SET")
        if self.stream.accept_keyword("TRANSACTION"):
            self.stream.expect_keyword("ISOLATION")
            self.stream.expect_keyword("LEVEL")
            return ast.SetStatement("isolation_level", self._parse_isolation_level())
        if self.stream.peek().is_keyword("ISOLATION"):
            self.stream.next()
            self.stream.expect_keyword("LEVEL")
            return ast.SetStatement("isolation_level", self._parse_isolation_level())
        name = self.stream.expect_ident().value
        self.stream.accept_operator("=") or self.stream.accept_keyword("TO")
        value = self._parse_expression()
        return ast.SetStatement(name.lower(), value)

    # -- privileges ---------------------------------------------------------------

    def _parse_grant(self) -> ast.GrantStatement:
        self.stream.expect_keyword("GRANT")
        privileges = self._parse_privilege_list()
        self.stream.expect_keyword("ON")
        object_name = self._parse_qualified_name()
        self.stream.expect_keyword("TO")
        user = self.stream.expect_ident().value
        return ast.GrantStatement(privileges, object_name, user)

    def _parse_revoke(self) -> ast.RevokeStatement:
        self.stream.expect_keyword("REVOKE")
        privileges = self._parse_privilege_list()
        self.stream.expect_keyword("ON")
        object_name = self._parse_qualified_name()
        self.stream.expect_keyword("FROM")
        user = self.stream.expect_ident().value
        return ast.RevokeStatement(privileges, object_name, user)

    def _parse_privilege_list(self) -> List[str]:
        if self.stream.accept_keyword("ALL"):
            self.stream.accept_keyword("PRIVILEGES")
            return ["ALL"]
        privileges = [self._parse_privilege()]
        while self.stream.accept_operator(","):
            privileges.append(self._parse_privilege())
        return privileges

    def _parse_privilege(self) -> str:
        token = self.stream.next()
        if token.value.upper() in ("SELECT", "INSERT", "UPDATE", "DELETE", "EXECUTE"):
            return token.value.upper()
        raise ParseError(f"unknown privilege {token.value!r}")

    # -- misc -------------------------------------------------------------------

    def _parse_use(self) -> ast.UseStatement:
        self.stream.expect_keyword("USE")
        return ast.UseStatement(self.stream.expect_ident().value)

    def _parse_call(self) -> ast.CallStatement:
        self.stream.expect_keyword("CALL")
        name = self._parse_qualified_name()
        args: List[ast.Expression] = []
        if self.stream.accept_operator("("):
            if not self.stream.peek().is_operator(")"):
                args.append(self._parse_expression())
                while self.stream.accept_operator(","):
                    args.append(self._parse_expression())
            self.stream.expect_operator(")")
        return ast.CallStatement(name, args)

    def _parse_lock(self) -> ast.LockTableStatement:
        self.stream.expect_keyword("LOCK")
        self.stream.expect_keyword("TABLE")
        table = self._parse_qualified_name()
        self.stream.expect_keyword("IN")
        mode_token = self.stream.next()
        if not mode_token.is_keyword("SHARE", "EXCLUSIVE"):
            raise ParseError("expected SHARE or EXCLUSIVE lock mode")
        self.stream.expect_keyword("MODE")
        return ast.LockTableStatement(table, mode_token.value)

    # -- names ------------------------------------------------------------

    def _parse_qualified_name(self) -> ast.QualifiedName:
        parts = [self.stream.expect_ident().value]
        while self.stream.peek().is_operator(".") and len(parts) < 3:
            self.stream.next()
            parts.append(self.stream.expect_ident().value)
        return ast.QualifiedName(parts)

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self.stream.accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self.stream.accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self.stream.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        token = self.stream.peek()
        if token.is_operator("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self.stream.next().value
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self._parse_additive())
        negated = False
        if token.is_keyword("NOT"):
            following = self.stream.peek(1)
            if following.is_keyword("IN", "LIKE", "BETWEEN"):
                self.stream.next()
                negated = True
                token = self.stream.peek()
        if token.is_keyword("IS"):
            self.stream.next()
            is_negated = bool(self.stream.accept_keyword("NOT"))
            self.stream.expect_keyword("NULL")
            return ast.IsNull(left, negated=is_negated)
        if token.is_keyword("IN"):
            self.stream.next()
            return self._parse_in_rhs(left, negated)
        if token.is_keyword("LIKE"):
            self.stream.next()
            return ast.Like(left, self._parse_additive(), negated=negated)
        if token.is_keyword("BETWEEN"):
            self.stream.next()
            low = self._parse_additive()
            self.stream.expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated=negated)
        return left

    def _parse_in_rhs(self, left: ast.Expression, negated: bool) -> ast.InList:
        self.stream.expect_operator("(")
        if self.stream.peek().is_keyword("SELECT"):
            select = self._parse_select()
            self.stream.expect_operator(")")
            return ast.InList(left, subquery=select, negated=negated)
        items = [self._parse_expression()]
        while self.stream.accept_operator(","):
            items.append(self._parse_expression())
        self.stream.expect_operator(")")
        return ast.InList(left, items=items, negated=negated)

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            token = self.stream.peek()
            if token.is_operator("+", "-", "||"):
                op = self.stream.next().value
                left = ast.BinaryOp(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self.stream.peek()
            if token.is_operator("*", "/", "%"):
                op = self.stream.next().value
                left = ast.BinaryOp(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expression:
        if self.stream.accept_operator("-"):
            return ast.UnaryOp("-", self._parse_unary())
        if self.stream.accept_operator("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self.stream.peek()
        if token.type is TokenType.NUMBER:
            self.stream.next()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.type is TokenType.STRING:
            self.stream.next()
            return ast.Literal(token.value)
        if token.type is TokenType.PARAM:
            self.stream.next()
            param = ast.Param(self._param_count)
            self._param_count += 1
            return param
        if token.is_keyword("TRUE"):
            self.stream.next()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.stream.next()
            return ast.Literal(False)
        if token.is_keyword("NULL"):
            self.stream.next()
            return ast.Literal(None)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("EXISTS"):
            self.stream.next()
            self.stream.expect_operator("(")
            select = self._parse_select()
            self.stream.expect_operator(")")
            return ast.ExistsSubquery(select)
        if token.is_operator("("):
            self.stream.next()
            if self.stream.peek().is_keyword("SELECT"):
                select = self._parse_select()
                self.stream.expect_operator(")")
                return ast.ScalarSubquery(select)
            expr = self._parse_expression()
            self.stream.expect_operator(")")
            return expr
        if token.is_operator("*"):
            self.stream.next()
            return ast.Star()
        if token.type is TokenType.IDENT or (
            token.type is TokenType.KEYWORD
            and token.value in _EXPRESSION_KEYWORD_FUNCS
        ):
            return self._parse_name_or_call()
        raise ParseError(f"unexpected token {token.value!r} in expression")

    def _parse_case(self) -> ast.Case:
        self.stream.expect_keyword("CASE")
        whens: List[Tuple[ast.Expression, ast.Expression]] = []
        while self.stream.accept_keyword("WHEN"):
            condition = self._parse_expression()
            self.stream.expect_keyword("THEN")
            whens.append((condition, self._parse_expression()))
        default = None
        if self.stream.accept_keyword("ELSE"):
            default = self._parse_expression()
        self.stream.expect_keyword("END")
        return ast.Case(whens, default)

    def _parse_name_or_call(self) -> ast.Expression:
        first = self.stream.next().value
        # function call?
        if self.stream.peek().is_operator("("):
            self.stream.next()
            distinct = bool(self.stream.accept_keyword("DISTINCT"))
            args: List[ast.Expression] = []
            if not self.stream.peek().is_operator(")"):
                args.append(self._parse_expression())
                while self.stream.accept_operator(","):
                    args.append(self._parse_expression())
            self.stream.expect_operator(")")
            return ast.FunctionCall(first, args, distinct=distinct)
        # qualified column (table.column) or sequence pseudo-columns
        # (seq.NEXTVAL / seq.CURRVAL, Oracle style)
        if self.stream.peek().is_operator("."):
            self.stream.next()
            second_token = self.stream.next()
            if second_token.is_keyword("NEXTVAL"):
                return ast.FunctionCall("NEXTVAL", [ast.Literal(first)])
            if second_token.is_keyword("CURRVAL"):
                return ast.FunctionCall("CURRVAL", [ast.Literal(first)])
            if second_token.type in (TokenType.IDENT, TokenType.KEYWORD):
                return ast.ColumnRef(second_token.value, table=first)
            raise ParseError(f"unexpected token {second_token.value!r} after '.'")
        # SQL-standard niladic functions need no parentheses.
        if first.upper() in _NILADIC_FUNCTIONS:
            return ast.FunctionCall(first, [])
        return ast.ColumnRef(first)


# Keywords that may start an expression because they double as function
# names (`NEXTVAL('seq')`, `CURRVAL('seq')`, `USER()`).
_EXPRESSION_KEYWORD_FUNCS = frozenset({"NEXTVAL", "CURRVAL", "SETVAL", "USER"})

# Niladic functions callable without parentheses (SQL standard).
_NILADIC_FUNCTIONS = frozenset({
    "CURRENT_TIMESTAMP", "CURRENT_TIME", "CURRENT_DATE", "CURRENT_USER",
})
