"""Catalog objects: databases, schemas and the objects they contain.

One :class:`~repro.sqlengine.engine.Engine` (an RDBMS) hosts many
:class:`Database` instances — the distinction section 4.1.1 of the paper
builds on: research replicates *database instances*, while real queries and
triggers span databases inside one RDBMS.
"""

from __future__ import annotations

from typing import Dict, List

from .errors import DuplicateObjectError, NameError_
from .procedures import Procedure
from .sequences import Sequence
from .storage import Table
from .triggers import Trigger


class Database:
    """One database instance: tables, sequences, triggers, procedures."""

    def __init__(self, name: str):
        self.name = name
        self.tables: Dict[str, Table] = {}
        self.sequences: Dict[str, Sequence] = {}
        self.triggers: Dict[str, Trigger] = {}
        self.procedures: Dict[str, Procedure] = {}
        self.schemas: Dict[str, None] = {}

    # -- tables -------------------------------------------------------------

    def create_table(self, table: Table, if_not_exists: bool = False) -> bool:
        key = table.name.lower()
        if key in self.tables:
            if if_not_exists:
                return False
            raise DuplicateObjectError(
                f"table {table.name!r} already exists in database {self.name!r}")
        self.tables[key] = table
        return True

    def table(self, name: str) -> Table:
        table = self.tables.get(name.lower())
        if table is None:
            raise NameError_(f"no table {name!r} in database {self.name!r}")
        return table

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def drop_table(self, name: str, if_exists: bool = False) -> bool:
        key = name.lower()
        if key not in self.tables:
            if if_exists:
                return False
            raise NameError_(f"no table {name!r} in database {self.name!r}")
        del self.tables[key]
        # Dependent triggers go with the table.
        self.triggers = {
            trigger_name: trigger
            for trigger_name, trigger in self.triggers.items()
            if trigger.table != key
        }
        return True

    # -- schemas -----------------------------------------------------------

    def create_schema(self, name: str, if_not_exists: bool = False) -> bool:
        key = name.lower()
        if key in self.schemas:
            if if_not_exists:
                return False
            raise DuplicateObjectError(f"schema {name!r} already exists")
        self.schemas[key] = None
        return True

    def drop_schema(self, name: str, if_exists: bool = False) -> bool:
        if name.lower() not in self.schemas:
            if if_exists:
                return False
            raise NameError_(f"no schema {name!r}")
        del self.schemas[name.lower()]
        return True

    # -- sequences ----------------------------------------------------------

    def create_sequence(self, sequence: Sequence) -> None:
        key = sequence.name.lower()
        if key in self.sequences:
            raise DuplicateObjectError(f"sequence {sequence.name!r} already exists")
        self.sequences[key] = sequence

    def sequence(self, name: str) -> Sequence:
        sequence = self.sequences.get(name.lower())
        if sequence is None:
            raise NameError_(f"no sequence {name!r} in database {self.name!r}")
        return sequence

    def drop_sequence(self, name: str, if_exists: bool = False) -> bool:
        if name.lower() not in self.sequences:
            if if_exists:
                return False
            raise NameError_(f"no sequence {name!r}")
        del self.sequences[name.lower()]
        return True

    # -- triggers ----------------------------------------------------------

    def create_trigger(self, trigger: Trigger) -> None:
        key = trigger.name.lower()
        if key in self.triggers:
            raise DuplicateObjectError(f"trigger {trigger.name!r} already exists")
        if trigger.table not in self.tables:
            raise NameError_(
                f"trigger {trigger.name!r} references missing table {trigger.table!r}")
        self.triggers[key] = trigger

    def drop_trigger(self, name: str, if_exists: bool = False) -> bool:
        if name.lower() not in self.triggers:
            if if_exists:
                return False
            raise NameError_(f"no trigger {name!r}")
        del self.triggers[name.lower()]
        return True

    def triggers_for(self, table: str, timing: str, event: str,
                     user: str) -> List[Trigger]:
        return [
            trigger for trigger in self.triggers.values()
            if trigger.table == table.lower()
            and trigger.timing == timing.upper()
            and trigger.fires_for(event, user)
        ]

    # -- procedures ----------------------------------------------------------

    def create_procedure(self, procedure: Procedure) -> None:
        key = procedure.name.lower()
        if key in self.procedures:
            raise DuplicateObjectError(
                f"procedure {procedure.name!r} already exists")
        self.procedures[key] = procedure

    def procedure(self, name: str) -> Procedure:
        procedure = self.procedures.get(name.lower())
        if procedure is None:
            raise NameError_(f"no procedure {name!r} in database {self.name!r}")
        return procedure

    def drop_procedure(self, name: str, if_exists: bool = False) -> bool:
        if name.lower() not in self.procedures:
            if if_exists:
                return False
            raise NameError_(f"no procedure {name!r}")
        del self.procedures[name.lower()]
        return True
