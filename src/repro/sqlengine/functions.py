"""Scalar SQL functions, including the non-deterministic ones.

``NOW()`` and ``RAND()`` are the two functions the paper singles out
(section 4.3.2): under statement-based replication they produce different
results on different replicas unless the middleware rewrites them.  To make
that reproducible, every engine owns a :class:`FunctionEnvironment` whose
clock and RNG are *per-engine* — two replicas evaluating ``RAND()`` will
genuinely diverge unless the middleware intervenes.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from .errors import NameError_, TypeError_

# Names the replication middleware must treat as non-deterministic.
NONDETERMINISTIC_FUNCTIONS = frozenset({
    "NOW", "CURRENT_TIMESTAMP", "CURRENT_TIME", "CURRENT_DATE",
    "RAND", "RANDOM", "UUID", "NEXTVAL",
})

AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


class FunctionEnvironment:
    """Per-engine evaluation environment for scalar functions.

    Attributes:
        clock: returns the engine's current wall time (simulated seconds).
            Distinct replicas may be skewed — pass a shared clock to model
            perfectly synchronized replicas.
        rng: the engine-local random source.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 seed: Optional[int] = None):
        self._clock = clock or (lambda: 0.0)
        self.rng = random.Random(seed)
        self._uuid_counter = 0
        self._uuid_space = self.rng.getrandbits(48)

    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def now(self) -> float:
        return float(self._clock())

    def rand(self) -> float:
        return self.rng.random()

    def uuid(self) -> str:
        self._uuid_counter += 1
        return f"{self._uuid_space:012x}-{self._uuid_counter:08d}"


def call_scalar(env: FunctionEnvironment, name: str, args: List[Any],
                session_user: str = "") -> Any:
    """Evaluate scalar function ``name`` over already-evaluated ``args``."""
    handler = _SCALAR_FUNCTIONS.get(name)
    if handler is None:
        raise NameError_(f"unknown function {name}()")
    return handler(env, args, session_user)


def _fn_now(env, args, user):
    return env.now()


def _fn_rand(env, args, user):
    return env.rand()


def _fn_uuid(env, args, user):
    return env.uuid()


def _fn_user(env, args, user):
    return user


def _fn_coalesce(env, args, user):
    for value in args:
        if value is not None:
            return value
    return None


def _fn_nullif(env, args, user):
    _require_args("NULLIF", args, 2)
    return None if args[0] == args[1] else args[0]


def _fn_upper(env, args, user):
    _require_args("UPPER", args, 1)
    return None if args[0] is None else str(args[0]).upper()


def _fn_lower(env, args, user):
    _require_args("LOWER", args, 1)
    return None if args[0] is None else str(args[0]).lower()


def _fn_length(env, args, user):
    _require_args("LENGTH", args, 1)
    return None if args[0] is None else len(str(args[0]))


def _fn_substr(env, args, user):
    if len(args) not in (2, 3):
        raise TypeError_("SUBSTR takes 2 or 3 arguments")
    value = args[0]
    if value is None:
        return None
    start = int(args[1]) - 1  # SQL is 1-based
    if start < 0:
        start = 0
    if len(args) == 3:
        return str(value)[start:start + int(args[2])]
    return str(value)[start:]


def _fn_concat(env, args, user):
    if any(a is None for a in args):
        return None
    return "".join(str(a) for a in args)


def _fn_abs(env, args, user):
    _require_args("ABS", args, 1)
    return None if args[0] is None else abs(args[0])


def _fn_mod(env, args, user):
    _require_args("MOD", args, 2)
    if args[0] is None or args[1] is None:
        return None
    return args[0] % args[1]


def _fn_floor(env, args, user):
    _require_args("FLOOR", args, 1)
    import math
    return None if args[0] is None else math.floor(args[0])


def _fn_ceil(env, args, user):
    _require_args("CEIL", args, 1)
    import math
    return None if args[0] is None else math.ceil(args[0])


def _fn_round(env, args, user):
    if len(args) == 1:
        return None if args[0] is None else round(args[0])
    _require_args("ROUND", args, 2)
    return None if args[0] is None else round(args[0], int(args[1]))


def _fn_greatest(env, args, user):
    if not args or any(a is None for a in args):
        return None
    return max(args)


def _fn_least(env, args, user):
    if not args or any(a is None for a in args):
        return None
    return min(args)


def _require_args(name: str, args: List[Any], count: int) -> None:
    if len(args) != count:
        raise TypeError_(f"{name} takes {count} argument(s), got {len(args)}")


_SCALAR_FUNCTIONS: Dict[str, Callable] = {
    "NOW": _fn_now,
    "CURRENT_TIMESTAMP": _fn_now,
    "CURRENT_TIME": _fn_now,
    "CURRENT_DATE": _fn_now,
    "RAND": _fn_rand,
    "RANDOM": _fn_rand,
    "UUID": _fn_uuid,
    "USER": _fn_user,
    "CURRENT_USER": _fn_user,
    "COALESCE": _fn_coalesce,
    "NULLIF": _fn_nullif,
    "UPPER": _fn_upper,
    "LOWER": _fn_lower,
    "LENGTH": _fn_length,
    "SUBSTR": _fn_substr,
    "SUBSTRING": _fn_substr,
    "CONCAT": _fn_concat,
    "ABS": _fn_abs,
    "MOD": _fn_mod,
    "FLOOR": _fn_floor,
    "CEIL": _fn_ceil,
    "CEILING": _fn_ceil,
    "ROUND": _fn_round,
    "GREATEST": _fn_greatest,
    "LEAST": _fn_least,
}


def is_scalar_function(name: str) -> bool:
    return name in _SCALAR_FUNCTIONS or name in ("NEXTVAL", "CURRVAL", "SETVAL")
