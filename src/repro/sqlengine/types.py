"""Column types and value coercion.

Values at runtime are plain Python objects (``None``, ``bool``, ``int``,
``float``, ``str``, ``bytes`` and :class:`~repro.sqlengine.lobs.LobHandle`).
Column types describe what a table column stores and how inserted values
are coerced on the way in.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from .errors import TypeError_


class ColumnType(enum.Enum):
    """The SQL column types understood by the engine."""

    INT = "INT"
    BIGINT = "BIGINT"
    FLOAT = "FLOAT"
    DECIMAL = "DECIMAL"
    VARCHAR = "VARCHAR"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    TIMESTAMP = "TIMESTAMP"
    CLOB = "CLOB"
    BLOB = "BLOB"

    @classmethod
    def from_name(cls, name: str) -> "ColumnType":
        normalized = _TYPE_ALIASES.get(name.upper())
        if normalized is None:
            raise TypeError_(f"unknown column type: {name}")
        return cls(normalized)


_TYPE_ALIASES = {
    "INT": "INT",
    "INTEGER": "INT",
    "SMALLINT": "INT",
    "SERIAL": "INT",
    "BIGINT": "BIGINT",
    "FLOAT": "FLOAT",
    "REAL": "FLOAT",
    "DOUBLE": "FLOAT",
    "NUMERIC": "DECIMAL",
    "DECIMAL": "DECIMAL",
    "VARCHAR": "VARCHAR",
    "CHAR": "VARCHAR",
    "STRING": "VARCHAR",
    "TEXT": "TEXT",
    "BOOLEAN": "BOOLEAN",
    "BOOL": "BOOLEAN",
    "TIMESTAMP": "TIMESTAMP",
    "DATETIME": "TIMESTAMP",
    "CLOB": "CLOB",
    "BLOB": "BLOB",
}

_NUMERIC_TYPES = {
    ColumnType.INT,
    ColumnType.BIGINT,
    ColumnType.FLOAT,
    ColumnType.DECIMAL,
    ColumnType.TIMESTAMP,
}


def coerce(value: Any, column_type: ColumnType) -> Any:
    """Coerce ``value`` to ``column_type``, raising :class:`TypeError_` when
    the value cannot represent the type.  ``None`` always passes through
    (NULL is valid for any type until NOT NULL is checked)."""
    if value is None:
        return None
    if column_type in (ColumnType.INT, ColumnType.BIGINT):
        return _coerce_int(value, column_type)
    if column_type in (ColumnType.FLOAT, ColumnType.DECIMAL, ColumnType.TIMESTAMP):
        return _coerce_float(value, column_type)
    if column_type in (ColumnType.VARCHAR, ColumnType.TEXT, ColumnType.CLOB):
        return _coerce_str(value, column_type)
    if column_type is ColumnType.BOOLEAN:
        return _coerce_bool(value)
    if column_type is ColumnType.BLOB:
        return _coerce_bytes(value)
    raise TypeError_(f"unhandled column type {column_type}")


def _coerce_int(value: Any, column_type: ColumnType) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            pass
    raise TypeError_(f"cannot store {value!r} in {column_type.value} column")


def _coerce_float(value: Any, column_type: ColumnType) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            pass
    raise TypeError_(f"cannot store {value!r} in {column_type.value} column")


def _coerce_str(value: Any, column_type: ColumnType) -> Any:
    # Lob handles flow through CLOB columns untouched; see lobs.py.
    from .lobs import LobHandle

    if isinstance(value, LobHandle):
        return value
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float, bool)):
        return str(value)
    raise TypeError_(f"cannot store {value!r} in {column_type.value} column")


def _coerce_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return bool(value)
    if isinstance(value, str) and value.lower() in ("true", "false", "t", "f", "0", "1"):
        return value.lower() in ("true", "t", "1")
    raise TypeError_(f"cannot store {value!r} in BOOLEAN column")


def _coerce_bytes(value: Any) -> Any:
    from .lobs import LobHandle

    if isinstance(value, LobHandle):
        return value
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    if isinstance(value, str):
        return value.encode("utf-8")
    raise TypeError_(f"cannot store {value!r} in BLOB column")


def is_numeric(column_type: ColumnType) -> bool:
    """True for types that order and compare numerically."""
    return column_type in _NUMERIC_TYPES


class Column:
    """A column definition inside a table schema."""

    __slots__ = ("name", "type", "nullable", "primary_key", "unique",
                 "auto_increment", "default")

    def __init__(
        self,
        name: str,
        column_type: ColumnType,
        nullable: bool = True,
        primary_key: bool = False,
        unique: bool = False,
        auto_increment: bool = False,
        default: Optional[Any] = None,
    ):
        self.name = name
        self.type = column_type
        self.nullable = nullable and not primary_key
        self.primary_key = primary_key
        self.unique = unique or primary_key
        self.auto_increment = auto_increment
        self.default = default

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.type.value})"

    def clone(self) -> "Column":
        return Column(
            self.name,
            self.type,
            nullable=self.nullable,
            primary_key=self.primary_key,
            unique=self.unique,
            auto_increment=self.auto_increment,
            default=self.default,
        )
