"""Row-level triggers.

Triggers matter to the paper in two ways:

* trigger-based **writeset extraction** is how middleware avoids modifying
  the engine (section 4.3.2) — ``repro.core.writesets`` installs Python
  callback triggers through the same mechanism;
* per-user triggers are why intercepted statements must be replayed as the
  original user (section 4.1.5).

A trigger body is either a list of parsed SQL statements (from
``CREATE TRIGGER``) or a Python callable registered by the middleware.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from . import ast_nodes as ast


class Trigger:
    """One trigger definition attached to a table."""

    __slots__ = ("name", "timing", "event", "table", "body", "callback",
                 "owner", "only_for_user", "enabled")

    def __init__(
        self,
        name: str,
        timing: str,
        event: str,
        table: str,
        body: Optional[List[ast.Statement]] = None,
        callback: Optional[Callable] = None,
        owner: str = "admin",
        only_for_user: Optional[str] = None,
    ):
        self.name = name
        self.timing = timing.upper()        # BEFORE | AFTER
        self.event = event.upper()          # INSERT | UPDATE | DELETE
        self.table = table.lower()
        self.body = body or []
        self.callback = callback
        self.owner = owner
        # When set, the trigger only fires for statements executed by this
        # user — the section 4.1.5 hazard for middleware that replays
        # statements under the wrong identity.
        self.only_for_user = only_for_user.lower() if only_for_user else None
        self.enabled = True

    def fires_for(self, event: str, user: str) -> bool:
        if not self.enabled or self.event != event.upper():
            return False
        if self.only_for_user is not None and user.lower() != self.only_for_user:
            return False
        return True

    def __repr__(self) -> str:
        return f"Trigger({self.name!r}, {self.timing} {self.event} ON {self.table})"


class TriggerEvent:
    """The row context passed to a firing trigger: OLD and NEW images."""

    __slots__ = ("event", "table", "old", "new", "user")

    def __init__(self, event: str, table: str,
                 old: Optional[Dict[str, Any]], new: Optional[Dict[str, Any]],
                 user: str):
        self.event = event
        self.table = table
        self.old = old
        self.new = new
        self.user = user
