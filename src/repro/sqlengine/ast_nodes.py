"""AST node classes produced by the SQL parser.

Nodes are deliberately plain (``__slots__`` + ``repr``) — the engine walks
them directly, and the replication middleware inspects them to classify
statements (read vs write, deterministic vs not, which tables are touched).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple


class Node:
    __slots__ = ()

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{slot}={getattr(self, slot)!r}"
            for slot in self.__slots__
        )
        return f"{type(self).__name__}({fields})"


# ---------------------------------------------------------------------------
# Names
# ---------------------------------------------------------------------------

class QualifiedName(Node):
    """A possibly database- and schema-qualified object name.

    ``parts`` is 1-3 identifiers: ``table``, ``db.table`` or
    ``db.schema.table``.  Multi-part names are what make *multi-database
    queries* (paper section 4.1.1) expressible.
    """

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[str]):
        self.parts = tuple(parts)

    @property
    def name(self) -> str:
        return self.parts[-1]

    @property
    def database(self) -> Optional[str]:
        return self.parts[0] if len(self.parts) >= 2 else None

    @property
    def schema(self) -> Optional[str]:
        return self.parts[1] if len(self.parts) == 3 else None

    def __str__(self) -> str:
        return ".".join(self.parts)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, QualifiedName)
            and tuple(p.lower() for p in self.parts)
            == tuple(p.lower() for p in other.parts)
        )

    def __hash__(self) -> int:
        return hash(tuple(p.lower() for p in self.parts))


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expression(Node):
    __slots__ = ()


class Literal(Expression):
    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


class Star(Expression):
    """``*`` in a select list or ``COUNT(*)``."""

    __slots__ = ("table",)

    def __init__(self, table: Optional[str] = None):
        self.table = table


class ColumnRef(Expression):
    # ``name_lower``/``table_lower`` are precomputed so the evaluator's
    # per-row column resolution does no string work on the hot path.
    __slots__ = ("table", "name", "name_lower", "table_lower")

    def __init__(self, name: str, table: Optional[str] = None):
        self.table = table
        self.name = name
        self.name_lower = name.lower()
        self.table_lower = table.lower() if table is not None else None


class Param(Expression):
    """A ``?`` placeholder, bound positionally at execution time."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index


class BinaryOp(Expression):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        self.op = op
        self.left = left
        self.right = right


class UnaryOp(Expression):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expression):
        self.op = op
        self.operand = operand


class FunctionCall(Expression):
    """Scalar or aggregate function call; aggregates are resolved by the
    executor (COUNT/SUM/AVG/MIN/MAX)."""

    __slots__ = ("name", "args", "distinct")

    def __init__(self, name: str, args: List[Expression], distinct: bool = False):
        self.name = name.upper()
        self.args = args
        self.distinct = distinct


class InList(Expression):
    __slots__ = ("expr", "items", "subquery", "negated")

    def __init__(self, expr, items=None, subquery=None, negated=False):
        self.expr = expr
        self.items = items
        self.subquery = subquery
        self.negated = negated


class Between(Expression):
    __slots__ = ("expr", "low", "high", "negated")

    def __init__(self, expr, low, high, negated=False):
        self.expr = expr
        self.low = low
        self.high = high
        self.negated = negated


class Like(Expression):
    __slots__ = ("expr", "pattern", "negated")

    def __init__(self, expr, pattern, negated=False):
        self.expr = expr
        self.pattern = pattern
        self.negated = negated


class IsNull(Expression):
    __slots__ = ("expr", "negated")

    def __init__(self, expr, negated=False):
        self.expr = expr
        self.negated = negated


class Case(Expression):
    __slots__ = ("whens", "default")

    def __init__(self, whens: List[Tuple[Expression, Expression]], default):
        self.whens = whens
        self.default = default


class ScalarSubquery(Expression):
    __slots__ = ("select",)

    def __init__(self, select: "SelectStatement"):
        self.select = select


class ExistsSubquery(Expression):
    __slots__ = ("select", "negated")

    def __init__(self, select: "SelectStatement", negated: bool = False):
        self.select = select
        self.negated = negated


# ---------------------------------------------------------------------------
# Table references
# ---------------------------------------------------------------------------

class TableRef(Node):
    __slots__ = ("name", "alias")

    def __init__(self, name: QualifiedName, alias: Optional[str] = None):
        self.name = name
        self.alias = alias

    @property
    def binding(self) -> str:
        return (self.alias or self.name.name).lower()


class Join(Node):
    __slots__ = ("left", "right", "kind", "condition")

    def __init__(self, left, right, kind: str, condition: Optional[Expression]):
        self.left = left
        self.right = right
        self.kind = kind  # "INNER" | "LEFT" | "CROSS"
        self.condition = condition


class SubquerySource(Node):
    """A derived table: ``FROM (SELECT ...) alias``."""

    __slots__ = ("select", "alias")

    def __init__(self, select: "SelectStatement", alias: str):
        self.select = select
        self.alias = alias

    @property
    def binding(self) -> str:
        return self.alias.lower()


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Statement(Node):
    __slots__ = ()


class SelectStatement(Statement):
    __slots__ = (
        "columns", "source", "where", "group_by", "having",
        "order_by", "limit", "offset", "distinct", "for_update",
    )

    def __init__(
        self,
        columns: List[Tuple[Expression, Optional[str]]],
        source,
        where: Optional[Expression] = None,
        group_by: Optional[List[Expression]] = None,
        having: Optional[Expression] = None,
        order_by: Optional[List[Tuple[Expression, bool]]] = None,
        limit: Optional[Expression] = None,
        offset: Optional[Expression] = None,
        distinct: bool = False,
        for_update: bool = False,
    ):
        self.columns = columns
        self.source = source
        self.where = where
        self.group_by = group_by or []
        self.having = having
        self.order_by = order_by or []
        self.limit = limit
        self.offset = offset
        self.distinct = distinct
        self.for_update = for_update


class InsertStatement(Statement):
    __slots__ = ("table", "columns", "rows", "select")

    def __init__(self, table: QualifiedName, columns, rows=None, select=None):
        self.table = table
        self.columns = columns
        self.rows = rows
        self.select = select


class UpdateStatement(Statement):
    __slots__ = ("table", "assignments", "where")

    def __init__(self, table: QualifiedName, assignments, where=None):
        self.table = table
        self.assignments = assignments  # list of (column_name, Expression)
        self.where = where


class DeleteStatement(Statement):
    __slots__ = ("table", "where")

    def __init__(self, table: QualifiedName, where=None):
        self.table = table
        self.where = where


class ColumnDef(Node):
    __slots__ = ("name", "type_name", "nullable", "primary_key", "unique",
                 "auto_increment", "default")

    def __init__(self, name, type_name, nullable=True, primary_key=False,
                 unique=False, auto_increment=False, default=None):
        self.name = name
        self.type_name = type_name
        self.nullable = nullable
        self.primary_key = primary_key
        self.unique = unique
        self.auto_increment = auto_increment
        self.default = default


class CreateTableStatement(Statement):
    __slots__ = ("table", "columns", "temporary", "if_not_exists")

    def __init__(self, table, columns, temporary=False, if_not_exists=False):
        self.table = table
        self.columns = columns
        self.temporary = temporary
        self.if_not_exists = if_not_exists


class CreateDatabaseStatement(Statement):
    __slots__ = ("name", "if_not_exists")

    def __init__(self, name: str, if_not_exists: bool = False):
        self.name = name
        self.if_not_exists = if_not_exists


class CreateSchemaStatement(Statement):
    __slots__ = ("name", "if_not_exists")

    def __init__(self, name: str, if_not_exists: bool = False):
        self.name = name
        self.if_not_exists = if_not_exists


class CreateIndexStatement(Statement):
    __slots__ = ("name", "table", "columns", "unique")

    def __init__(self, name, table, columns, unique=False):
        self.name = name
        self.table = table
        self.columns = columns
        self.unique = unique


class CreateSequenceStatement(Statement):
    __slots__ = ("name", "start", "increment")

    def __init__(self, name, start=1, increment=1):
        self.name = name
        self.start = start
        self.increment = increment


class CreateTriggerStatement(Statement):
    __slots__ = ("name", "timing", "event", "table", "body")

    def __init__(self, name, timing, event, table, body):
        self.name = name
        self.timing = timing      # "BEFORE" | "AFTER"
        self.event = event        # "INSERT" | "UPDATE" | "DELETE"
        self.table = table
        self.body = body          # list of Statement


class CreateProcedureStatement(Statement):
    __slots__ = ("name", "params", "body")

    def __init__(self, name, params, body):
        self.name = name
        self.params = params      # list of parameter names
        self.body = body          # list of Statement


class CreateUserStatement(Statement):
    __slots__ = ("name", "password")

    def __init__(self, name, password):
        self.name = name
        self.password = password


class DropStatement(Statement):
    __slots__ = ("kind", "name", "if_exists")

    def __init__(self, kind: str, name, if_exists: bool = False):
        self.kind = kind          # TABLE | DATABASE | INDEX | SEQUENCE | ...
        self.name = name
        self.if_exists = if_exists


class AlterTableStatement(Statement):
    __slots__ = ("table", "action", "column", "new_name")

    def __init__(self, table, action, column=None, new_name=None):
        self.table = table
        self.action = action      # "ADD_COLUMN" | "RENAME"
        self.column = column      # ColumnDef for ADD_COLUMN
        self.new_name = new_name


class BeginStatement(Statement):
    __slots__ = ("isolation",)

    def __init__(self, isolation: Optional[str] = None):
        self.isolation = isolation


class CommitStatement(Statement):
    __slots__ = ()


class RollbackStatement(Statement):
    __slots__ = ()


class SetStatement(Statement):
    __slots__ = ("name", "value")

    def __init__(self, name: str, value):
        self.name = name
        self.value = value


class GrantStatement(Statement):
    __slots__ = ("privileges", "object_name", "user")

    def __init__(self, privileges, object_name, user):
        self.privileges = privileges  # list like ["SELECT", "INSERT"] or ["ALL"]
        self.object_name = object_name
        self.user = user


class RevokeStatement(Statement):
    __slots__ = ("privileges", "object_name", "user")

    def __init__(self, privileges, object_name, user):
        self.privileges = privileges
        self.object_name = object_name
        self.user = user


class UseStatement(Statement):
    __slots__ = ("database",)

    def __init__(self, database: str):
        self.database = database


class CallStatement(Statement):
    __slots__ = ("name", "args")

    def __init__(self, name, args):
        self.name = name
        self.args = args


class ExplainStatement(Statement):
    """``EXPLAIN <statement>`` — report the planned access path without
    executing."""

    __slots__ = ("statement",)

    def __init__(self, statement: Statement):
        self.statement = statement


class LockTableStatement(Statement):
    __slots__ = ("table", "mode")

    def __init__(self, table, mode: str):
        self.table = table
        self.mode = mode          # "SHARE" | "EXCLUSIVE"
