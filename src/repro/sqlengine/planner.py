"""Lightweight access-path planning for the execution hot path.

The planner looks at a statement's WHERE clause, pulls the equality and
``IN``-list conjuncts that bind columns of one table, and — when an index
covers all of an index's key columns — turns them into hash-index probe
keys.  Everything else falls back to a sequential scan.  The probe result
is always a *superset* of the rows the full predicate accepts (the
executor re-evaluates the complete WHERE on the candidates), so planning
can only change cost, never results.

This is the piece the paper's §3.4/§5 critique asks middleware
evaluations to get right: without it, every point lookup, uniqueness
check and writeset apply is O(table) and scale-out numbers measure scan
cost rather than replication cost.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence

from . import ast_nodes as ast
from .errors import SQLError
from .storage import IndexDef, Table
from .types import coerce

# Multi-column IN-lists multiply; beyond this many probe keys a scan is
# cheaper anyway.
_MAX_PROBE_KEYS = 64

SEQ_SCAN = "seq-scan"
INDEX_PROBE = "index-probe"


class AccessPlan:
    """The chosen access path for one table reference."""

    __slots__ = ("kind", "table", "index", "keys")

    def __init__(self, kind: str, table: Table,
                 index: Optional[IndexDef] = None,
                 keys: Optional[List[tuple]] = None):
        self.kind = kind
        self.table = table
        self.index = index
        self.keys = keys or []

    @property
    def is_index(self) -> bool:
        return self.kind == INDEX_PROBE

    def describe(self) -> str:
        if self.is_index:
            columns = ",".join(self.index.columns)
            return (f"index-probe {self.table.name}.{self.index.name} "
                    f"({columns}) keys={len(self.keys)}")
        return f"seq-scan {self.table.name}"

    def __repr__(self) -> str:
        return f"AccessPlan({self.describe()})"


def and_conjuncts(where: Optional[ast.Expression]):
    """Flatten a predicate into its top-level AND conjuncts."""
    if where is None:
        return
    stack = [where]
    while stack:
        expr = stack.pop()
        if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
            stack.append(expr.left)
            stack.append(expr.right)
        else:
            yield expr


def _is_value_expr(expr: ast.Expression) -> bool:
    """Expressions safe to evaluate at plan time: no column references,
    no side effects, no subqueries."""
    if isinstance(expr, (ast.Literal, ast.Param)):
        return True
    if isinstance(expr, ast.UnaryOp):
        return _is_value_expr(expr.operand)
    return False


def _column_of(expr: ast.Expression, binding: str,
               table: Table) -> Optional[str]:
    """The table column ``expr`` names, if it belongs to ``binding``."""
    if not isinstance(expr, ast.ColumnRef):
        return None
    if expr.table is not None and expr.table.lower() != binding:
        return None
    name = expr.name.lower()
    if not table.has_column(name):
        return None
    return name


def equality_candidates(where: Optional[ast.Expression], binding: str,
                        table: Table) -> Dict[str, List[ast.Expression]]:
    """Map column -> candidate value expressions, from ``col = value`` and
    ``col IN (values...)`` conjuncts of ``where``."""
    candidates: Dict[str, List[ast.Expression]] = {}

    def record(column: str, values: List[ast.Expression]) -> None:
        # A column constrained twice: either conjunct's value set already
        # covers the intersection, keep the smaller one.
        existing = candidates.get(column)
        if existing is None or len(values) < len(existing):
            candidates[column] = values

    for conjunct in and_conjuncts(where):
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
            for column_side, value_side in ((conjunct.left, conjunct.right),
                                            (conjunct.right, conjunct.left)):
                column = _column_of(column_side, binding, table)
                if column is not None and _is_value_expr(value_side):
                    record(column, [value_side])
                    break
        elif isinstance(conjunct, ast.InList) and not conjunct.negated \
                and conjunct.items is not None:
            column = _column_of(conjunct.expr, binding, table)
            if column is not None and all(
                    _is_value_expr(item) for item in conjunct.items):
                record(column, list(conjunct.items))
    return candidates


def _choose_index(table: Table,
                  bound_columns: Sequence[str]) -> Optional[IndexDef]:
    """The best index whose key columns are all equality-bound: unique
    beats non-unique, then longer keys (more selective) win."""
    bound = set(bound_columns)
    best = None
    best_rank = None
    for index in table.indexes.values():
        if not index.columns or not all(c in bound for c in index.columns):
            continue
        rank = (index.unique, len(index.columns))
        if best_rank is None or rank > best_rank:
            best, best_rank = index, rank
    return best


def plan_table_access(table: Table, binding: str,
                      where: Optional[ast.Expression],
                      ctx) -> AccessPlan:
    """Pick the access path for one table: an index probe when an index's
    key columns are fully equality-bound, a sequential scan otherwise."""
    if where is None or not table.indexes:
        return AccessPlan(SEQ_SCAN, table)
    candidates = equality_candidates(where, binding, table)
    if not candidates:
        return AccessPlan(SEQ_SCAN, table)
    index = _choose_index(table, list(candidates.keys()))
    if index is None:
        return AccessPlan(SEQ_SCAN, table)

    per_column_values: List[List[Any]] = []
    total = 1
    for column in index.columns:
        exprs = candidates[column]
        total *= len(exprs)
        if total > _MAX_PROBE_KEYS:
            return AccessPlan(SEQ_SCAN, table)
        column_type = table.column(column).type
        values = []
        for expr in exprs:
            try:
                value = coerce(evaluate_value(expr, ctx), column_type)
            except SQLError:
                return AccessPlan(SEQ_SCAN, table)
            # `col = NULL` / `col IN (..., NULL)` never matches under SQL
            # semantics; dropping the key keeps the probe a superset.
            if value is not None:
                values.append(value)
        per_column_values.append(values)

    keys = [tuple(key) for key in itertools.product(*per_column_values)]
    return AccessPlan(INDEX_PROBE, table, index, keys)


def evaluate_value(expr: ast.Expression, ctx):
    """Evaluate a row-independent value expression at plan time."""
    from .expressions import evaluate
    return evaluate(expr, ctx)


# -- compiled plan shapes ---------------------------------------------------
#
# Conjunct extraction and index choice depend only on the statement shape
# and the table schema, not on parameter values, so they are compiled once
# per (WHERE clause, table) and revalidated against ``table.schema_epoch``.
# Re-executions of a cached statement only re-evaluate the probe-key
# values.  ``PLAN_CACHE_ENABLED`` is a module toggle so benchmarks can
# A/B the compiled path against per-call planning.

PLAN_CACHE_ENABLED = True
_PLAN_CACHE_CAPACITY = 4096
_plan_cache: dict = {}


class _ProbeShape:
    """The schema-dependent half of an index-probe plan: the chosen index
    and, per key column, the candidate value expressions plus the column
    type their values coerce to."""

    __slots__ = ("index", "columns")

    def __init__(self, index: IndexDef,
                 columns: List[tuple]):
        self.index = index
        self.columns = columns  # [(exprs, column_type)] per key column


def plan_table_access_cached(table: Table, binding: str,
                             where: Optional[ast.Expression],
                             ctx) -> AccessPlan:
    """Memoized :func:`plan_table_access`.

    Entries are keyed by object identity of the WHERE clause and table
    (the parse cache keeps statement trees alive, so identity is stable)
    and carry strong references, which also guards against ``id()``
    reuse.  A shape is recompiled whenever ``table.schema_epoch`` moves
    (new/dropped index, added column).  The cache is cleared wholesale at
    capacity — repopulating a working set is cheaper than tracking LRU
    order on the hot path.
    """
    if not PLAN_CACHE_ENABLED:
        return plan_table_access(table, binding, where, ctx)
    if where is None or not table.indexes:
        return AccessPlan(SEQ_SCAN, table)
    key = (id(where), id(table))
    hit = _plan_cache.get(key)
    if hit is None or hit[0] is not where or hit[1] is not table \
            or hit[2] != table.schema_epoch or hit[3] != binding:
        shape = _compile_shape(table, binding, where)
        if len(_plan_cache) >= _PLAN_CACHE_CAPACITY:
            _plan_cache.clear()
        hit = (where, table, table.schema_epoch, binding, shape)
        _plan_cache[key] = hit
    shape = hit[4]
    if shape is None:
        return AccessPlan(SEQ_SCAN, table)
    return _probe_from_shape(table, shape, ctx)


def _compile_shape(table: Table, binding: str,
                   where: ast.Expression) -> Optional[_ProbeShape]:
    """The value-independent part of :func:`plan_table_access`; ``None``
    means the statement always sequential-scans this table."""
    candidates = equality_candidates(where, binding, table)
    if not candidates:
        return None
    index = _choose_index(table, list(candidates.keys()))
    if index is None:
        return None
    columns: List[tuple] = []
    total = 1
    for column in index.columns:
        exprs = candidates[column]
        total *= len(exprs)
        if total > _MAX_PROBE_KEYS:
            return None
        columns.append((exprs, table.column(column).type))
    return _ProbeShape(index, columns)


def _probe_from_shape(table: Table, shape: _ProbeShape, ctx) -> AccessPlan:
    """Evaluate a compiled shape's probe keys against one execution's
    context.  Matches :func:`plan_table_access` exactly: an uncoercible
    value falls back to a scan, NULL keys are dropped (``col = NULL``
    never matches)."""
    per_column_values: List[List[Any]] = []
    for exprs, column_type in shape.columns:
        values = []
        for expr in exprs:
            try:
                value = coerce(evaluate_value(expr, ctx), column_type)
            except SQLError:
                return AccessPlan(SEQ_SCAN, table)
            if value is not None:
                values.append(value)
        per_column_values.append(values)
    if len(per_column_values) == 1:
        keys = [(value,) for value in per_column_values[0]]
    else:
        keys = [tuple(key) for key in itertools.product(*per_column_values)]
    return AccessPlan(INDEX_PROBE, table, shape.index, keys)


def select_has_subquery(select: ast.SelectStatement) -> bool:
    """Whether any part of ``select`` contains a subquery (scalar, EXISTS,
    ``IN (SELECT ...)`` or a derived table).  Read-dependency extraction
    (``repro.cache``) uses this: a probe proof only covers the outer
    table, so a statement with subqueries must fall back to broad
    table-level dependencies on everything it reads."""
    if isinstance(select.source, (ast.SubquerySource, ast.Join)):
        if _source_has_subquery(select.source):
            return True
    exprs = [expr for expr, _alias in select.columns]
    exprs.append(select.where)
    exprs.extend(select.group_by)
    exprs.append(select.having)
    exprs.extend(expr for expr, _asc in select.order_by)
    return any(_expr_has_subquery(expr) for expr in exprs)


def _source_has_subquery(source) -> bool:
    if isinstance(source, ast.SubquerySource):
        return True
    if isinstance(source, ast.Join):
        return (_source_has_subquery(source.left)
                or _source_has_subquery(source.right)
                or _expr_has_subquery(source.condition))
    return False


def _expr_has_subquery(expr) -> bool:
    if expr is None or isinstance(expr, (ast.Literal, ast.ColumnRef,
                                         ast.Param, ast.Star)):
        return False
    if isinstance(expr, (ast.ScalarSubquery, ast.ExistsSubquery)):
        return True
    if isinstance(expr, ast.InList):
        if expr.subquery is not None:
            return True
        return (_expr_has_subquery(expr.expr)
                or any(_expr_has_subquery(item)
                       for item in expr.items or []))
    if isinstance(expr, ast.FunctionCall):
        return any(_expr_has_subquery(arg) for arg in expr.args)
    if isinstance(expr, ast.BinaryOp):
        return (_expr_has_subquery(expr.left)
                or _expr_has_subquery(expr.right))
    if isinstance(expr, ast.UnaryOp):
        return _expr_has_subquery(expr.operand)
    if isinstance(expr, ast.Between):
        return any(_expr_has_subquery(sub)
                   for sub in (expr.expr, expr.low, expr.high))
    if isinstance(expr, ast.Like):
        return (_expr_has_subquery(expr.expr)
                or _expr_has_subquery(expr.pattern))
    if isinstance(expr, ast.IsNull):
        return _expr_has_subquery(expr.expr)
    if isinstance(expr, ast.Case):
        if _expr_has_subquery(expr.default):
            return True
        return any(_expr_has_subquery(c) or _expr_has_subquery(r)
                   for c, r in expr.whens)
    return False
