"""Multi-version concurrency control: snapshots and visibility.

The engine runs transactions under one of four isolation levels:

* ``READ UNCOMMITTED`` — the newest non-rolled-back version wins.
* ``READ COMMITTED``   — a fresh snapshot per statement (every engine's
  default, and what "most production applications use for performance
  reasons" per paper section 4.1.2).
* ``SNAPSHOT`` / ``REPEATABLE READ`` — one snapshot for the whole
  transaction plus first-updater-wins write-conflict detection.
* ``SERIALIZABLE`` — snapshot reads plus two-phase table locking
  (a pragmatic 1SR implementation; see locks.py).

Visibility is the classic MVCC rule: a version is visible to transaction T
with snapshot S when it was created by T itself or committed no later than
S, and not deleted by T or by a transaction that committed no later than S.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from .storage import RowVersion, Table


# Isolation level constants (normalized spellings).
READ_UNCOMMITTED = "READ UNCOMMITTED"
READ_COMMITTED = "READ COMMITTED"
REPEATABLE_READ = "REPEATABLE READ"
SNAPSHOT = "SNAPSHOT"
SERIALIZABLE = "SERIALIZABLE"

SNAPSHOT_LEVELS = frozenset({SNAPSHOT, REPEATABLE_READ, SERIALIZABLE})


class Snapshot:
    """An immutable read timestamp: everything committed at or before
    ``timestamp`` is visible."""

    __slots__ = ("timestamp",)

    def __init__(self, timestamp: int):
        self.timestamp = timestamp

    def __repr__(self) -> str:
        return f"Snapshot({self.timestamp})"


def version_visible(version: RowVersion, snapshot: Snapshot,
                    txn_id: Optional[int]) -> bool:
    """True when ``version`` is visible to the transaction ``txn_id``
    reading at ``snapshot``."""
    created_by_me = txn_id is not None and version.creator_txn == txn_id
    if not created_by_me:
        if version.created_ts is None or version.created_ts > snapshot.timestamp:
            return False
    deleted_by_me = txn_id is not None and version.deleter_txn == txn_id
    if deleted_by_me:
        return False
    if version.deleted_ts is not None and version.deleted_ts <= snapshot.timestamp:
        return False
    return True


def version_visible_dirty(version: RowVersion) -> bool:
    """READ UNCOMMITTED visibility: any version that is neither deleted
    nor superseded — including uncommitted ones."""
    return version.deleter_txn is None and version.deleted_ts is None


def visible_rows(table: Table, snapshot: Snapshot,
                 txn_id: Optional[int],
                 dirty: bool = False) -> Iterable[RowVersion]:
    """Yield the visible version of every logical row in ``table``."""
    for row_id in list(table._rows.keys()):
        version = visible_version(table, row_id, snapshot, txn_id, dirty=dirty)
        if version is not None:
            yield version


def visible_version(table: Table, row_id: int, snapshot: Snapshot,
                    txn_id: Optional[int],
                    dirty: bool = False) -> Optional[RowVersion]:
    """The visible version of one logical row, or None when the row does
    not exist for this reader.

    Among the versions passing the visibility test, the one with the
    highest commit timestamp wins (the reader's own uncommitted version
    ranks newest).  Chain position alone is not enough: concurrent
    writeset application can append an older-committed version after a
    local uncommitted one.
    """
    chain = table.version_chain(row_id)
    best = None
    best_key = None
    for index, version in enumerate(chain):
        if dirty:
            if not version_visible_dirty(version):
                continue
        elif not version_visible(version, snapshot, txn_id):
            continue
        own = txn_id is not None and version.creator_txn == txn_id \
            and version.created_ts is None
        key = (float("inf") if own else (version.created_ts or 0), index)
        if best_key is None or key > best_key:
            best = version
            best_key = key
    return best


def latest_committed_change(chain: List[RowVersion]) -> int:
    """The commit timestamp of the newest committed create/delete event on a
    version chain; 0 when nothing committed yet.  Used by first-updater-wins
    conflict detection."""
    newest = 0
    for version in chain:
        if version.created_ts is not None:
            newest = max(newest, version.created_ts)
        if version.deleted_ts is not None:
            newest = max(newest, version.deleted_ts)
    return newest


def uncommitted_writer(chain: List[RowVersion],
                       txn_id: Optional[int]) -> Optional[int]:
    """The id of another in-flight transaction that created or deleted a
    version on this chain, or None.  A non-None answer means a write-write
    conflict for MVCC writers."""
    for version in chain:
        if version.created_ts is None and version.creator_txn != txn_id:
            return version.creator_txn
        if (version.deleter_txn is not None and version.deleted_ts is None
                and version.deleter_txn != txn_id):
            return version.deleter_txn
    return None


class CommitClock:
    """Monotonic commit-timestamp source shared by all transactions of one
    engine.  Timestamps double as the global committed-state version."""

    def __init__(self):
        self._now = 0

    @property
    def now(self) -> int:
        return self._now

    def tick(self) -> int:
        self._now += 1
        return self._now

    def snapshot(self) -> Snapshot:
        return Snapshot(self._now)


def row_as_dict(version: RowVersion) -> Dict[str, Any]:
    """A defensive copy of the version's values."""
    return dict(version.values)
