"""A small SQL tokenizer.

Produces a flat list of :class:`Token` objects consumed by the recursive
descent parser in :mod:`repro.sqlengine.parser`.  Keywords are recognized
case-insensitively; identifiers keep their original spelling but compare
case-insensitively throughout the engine.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from .errors import ParseError


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PARAM = "PARAM"          # a `?` placeholder
    EOF = "EOF"


KEYWORDS = frozenset("""
    SELECT FROM WHERE GROUP BY HAVING ORDER ASC DESC LIMIT OFFSET
    INSERT INTO VALUES UPDATE SET DELETE
    CREATE DROP ALTER TABLE DATABASE SCHEMA INDEX SEQUENCE TRIGGER PROCEDURE
    TEMPORARY TEMP VIEW USER IF EXISTS NOT NULL PRIMARY KEY UNIQUE DEFAULT
    AUTO_INCREMENT REFERENCES
    BEGIN START TRANSACTION COMMIT ROLLBACK WORK
    AND OR IN IS LIKE BETWEEN
    JOIN INNER LEFT RIGHT OUTER ON AS DISTINCT
    UNION ALL ANY
    GRANT REVOKE TO IDENTIFIED WITH PASSWORD PRIVILEGES
    CASE WHEN THEN ELSE END
    BEFORE AFTER FOR EACH ROW EXECUTE CALL RETURNS DECLARE
    USE ISOLATION LEVEL READ COMMITTED UNCOMMITTED REPEATABLE SERIALIZABLE SNAPSHOT
    TRUE FALSE
    ADD COLUMN RENAME
    LOCK SHARE EXCLUSIVE MODE
    NEXTVAL CURRVAL SETVAL
    CASCADE RESTRICT
    INCREMENT CACHE
    EXPLAIN
""".split())


class Token:
    __slots__ = ("type", "value", "position")

    def __init__(self, token_type: TokenType, value: str, position: int):
        self.type = token_type
        self.value = value
        self.position = position

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r})"

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def is_operator(self, *ops: str) -> bool:
        return self.type is TokenType.OPERATOR and self.value in ops


_TWO_CHAR_OPERATORS = ("<=", ">=", "<>", "!=", "||", ":=")
_ONE_CHAR_OPERATORS = "=<>+-*/%(),.;"


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql``; raises :class:`ParseError` on unexpected input."""
    tokens: List[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char in " \t\r\n":
            index += 1
            continue
        if sql.startswith("--", index):
            newline = sql.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if sql.startswith("/*", index):
            end = sql.find("*/", index + 2)
            if end < 0:
                raise ParseError("unterminated block comment")
            index = end + 2
            continue
        if char == "'":
            token, index = _read_string(sql, index)
            tokens.append(token)
            continue
        if char == '"' or char == "`":
            token, index = _read_quoted_ident(sql, index, char)
            tokens.append(token)
            continue
        if char.isdigit() or (char == "." and index + 1 < length and sql[index + 1].isdigit()):
            token, index = _read_number(sql, index)
            tokens.append(token)
            continue
        if char.isalpha() or char == "_":
            token, index = _read_word(sql, index)
            tokens.append(token)
            continue
        if char == "?":
            tokens.append(Token(TokenType.PARAM, "?", index))
            index += 1
            continue
        two = sql[index:index + 2]
        if two in _TWO_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, two, index))
            index += 2
            continue
        if char in _ONE_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, char, index))
            index += 1
            continue
        raise ParseError(f"unexpected character {char!r} at position {index}")
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _read_string(sql: str, start: int) -> tuple:
    """Read a single-quoted string with '' escaping."""
    index = start + 1
    parts: List[str] = []
    while index < len(sql):
        char = sql[index]
        if char == "'":
            if sql.startswith("''", index):
                parts.append("'")
                index += 2
                continue
            return Token(TokenType.STRING, "".join(parts), start), index + 1
        parts.append(char)
        index += 1
    raise ParseError("unterminated string literal")


def _read_quoted_ident(sql: str, start: int, quote: str) -> tuple:
    end = sql.find(quote, start + 1)
    if end < 0:
        raise ParseError("unterminated quoted identifier")
    return Token(TokenType.IDENT, sql[start + 1:end], start), end + 1


def _read_number(sql: str, start: int) -> tuple:
    index = start
    seen_dot = False
    seen_exp = False
    while index < len(sql):
        char = sql[index]
        if char.isdigit():
            index += 1
        elif char == "." and not seen_dot and not seen_exp:
            # Guard against `1.foo` style member access on numbers: a dot is
            # part of the number only when followed by a digit.
            if index + 1 < len(sql) and sql[index + 1].isdigit():
                seen_dot = True
                index += 1
            else:
                break
        elif char in "eE" and not seen_exp and index + 1 < len(sql) and (
            sql[index + 1].isdigit() or sql[index + 1] in "+-"
        ):
            seen_exp = True
            index += 2
        else:
            break
    return Token(TokenType.NUMBER, sql[start:index], start), index


def _read_word(sql: str, start: int) -> tuple:
    index = start
    while index < len(sql) and (sql[index].isalnum() or sql[index] == "_"):
        index += 1
    word = sql[start:index]
    upper = word.upper()
    if upper in KEYWORDS:
        return Token(TokenType.KEYWORD, upper, start), index
    return Token(TokenType.IDENT, word, start), index


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    def peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._index + ahead, len(self._tokens) - 1)]

    def next(self) -> Token:
        token = self.peek()
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def at_end(self) -> bool:
        return self.peek().type is TokenType.EOF

    def accept_keyword(self, *names: str) -> Optional[Token]:
        if self.peek().is_keyword(*names):
            return self.next()
        return None

    def accept_operator(self, *ops: str) -> Optional[Token]:
        if self.peek().is_operator(*ops):
            return self.next()
        return None

    def expect_keyword(self, *names: str) -> Token:
        token = self.accept_keyword(*names)
        if token is None:
            raise ParseError(
                f"expected {'/'.join(names)}, got {self.peek().value!r}"
            )
        return token

    def expect_operator(self, op: str) -> Token:
        token = self.accept_operator(op)
        if token is None:
            raise ParseError(f"expected {op!r}, got {self.peek().value!r}")
        return token

    def expect_ident(self) -> Token:
        token = self.peek()
        # Unreserved keywords may double as identifiers in a few spots
        # (e.g. a column called `level`); accept keywords where an
        # identifier is mandatory only if they are "soft".
        if token.type is TokenType.IDENT:
            return self.next()
        if token.type is TokenType.KEYWORD and token.value in _SOFT_KEYWORDS:
            return self.next()
        raise ParseError(f"expected identifier, got {token.value!r}")


_SOFT_KEYWORDS = frozenset({
    "LEVEL", "USER", "VIEW", "MODE", "KEY", "ROW", "WORK", "CACHE",
    "COLUMN", "SHARE", "READ", "ALL", "ANY", "SCHEMA", "DATABASE",
})
