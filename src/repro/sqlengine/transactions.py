"""Transaction objects, writeset capture and commit/rollback bookkeeping.

A transaction tracks:

* the row versions it created or marked deleted (its undo log),
* a :class:`Writeset` — the logical changes, in order, keyed by primary
  key where available.  The writeset is what transaction-replication
  middleware propagates (paper footnote 2: "the set of data W updated by a
  transaction T, such that applying W to a replica is equivalent to
  executing T on it"),
* the set of tables read and written (readset/writeset table names), used
  by certification and by the memory-aware load balancer,
* sequence and auto-increment side effects, which are *not* undone by
  rollback and are *not* part of the writeset — reproducing the divergence
  gap of section 4.3.2.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Set, Tuple

from .mvcc import SNAPSHOT_LEVELS, Snapshot
from .storage import RowVersion, Table


class TransactionStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"
    # PostgreSQL-style dialects park a transaction here after any error;
    # further statements fail until ROLLBACK (paper section 4.1.2).
    FAILED = "failed"


class WritesetEntry:
    """One logical row change."""

    __slots__ = ("database", "table", "op", "primary_key", "old_values",
                 "new_values", "row_id")

    def __init__(self, database: str, table: str, op: str,
                 primary_key: Optional[Tuple], old_values: Optional[Dict[str, Any]],
                 new_values: Optional[Dict[str, Any]], row_id: int):
        self.database = database
        self.table = table
        self.op = op                  # "INSERT" | "UPDATE" | "DELETE"
        self.primary_key = primary_key
        self.old_values = old_values
        self.new_values = new_values
        self.row_id = row_id

    def __repr__(self) -> str:
        return f"WritesetEntry({self.op} {self.database}.{self.table} pk={self.primary_key})"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "database": self.database,
            "table": self.table,
            "op": self.op,
            "primary_key": self.primary_key,
            "old_values": self.old_values,
            "new_values": self.new_values,
        }


class Writeset:
    """Ordered list of row changes made by one transaction."""

    def __init__(self):
        self.entries: List[WritesetEntry] = []

    def add(self, entry: WritesetEntry) -> None:
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def tables(self) -> Set[Tuple[str, str]]:
        return {(e.database, e.table) for e in self.entries}

    def keys(self) -> Set[Tuple[str, str, Optional[Tuple]]]:
        """(database, table, primary key) triples — the conflict footprint
        used by snapshot-isolation certification."""
        return {(e.database, e.table, e.primary_key) for e in self.entries}

    def is_empty(self) -> bool:
        return not self.entries


class Transaction:
    """A transaction running inside one engine."""

    def __init__(self, txn_id: int, isolation: str, snapshot: Snapshot,
                 user: str, explicit: bool = True):
        self.id = txn_id
        self.isolation = isolation
        self.snapshot = snapshot
        self.user = user
        self.explicit = explicit
        self.status = TransactionStatus.ACTIVE
        self.start_ts = snapshot.timestamp
        self.commit_ts: Optional[int] = None

        self.writeset = Writeset()
        self.tables_read: Set[Tuple[str, str]] = set()
        self.tables_written: Set[Tuple[str, str]] = set()

        # Undo information: versions created by this txn and versions this
        # txn marked deleted (so rollback can clear the marks).
        self.created_versions: List[Tuple[Table, RowVersion]] = []
        self.deleted_versions: List[RowVersion] = []

        # Side effects that survive rollback (section 4.2.3 / 4.3.2).
        self.sequence_effects: List[Tuple[str, str, int]] = []   # (db, seq, value)
        self.auto_increment_effects: List[Tuple[str, str, int]] = []

        # Temp tables created inside the transaction (Sybase-like dialects
        # forbid this; transaction-scoped temp tables are dropped at end).
        self.temp_tables_created: List[str] = []

        self._statement_error: Optional[str] = None

    # -- snapshots --------------------------------------------------------

    def read_snapshot(self, statement_snapshot: Snapshot) -> Snapshot:
        """The snapshot a statement should read at: the transaction-wide one
        for snapshot-class isolation, the per-statement one otherwise."""
        if self.isolation in SNAPSHOT_LEVELS:
            return self.snapshot
        return statement_snapshot

    @property
    def uses_transaction_snapshot(self) -> bool:
        return self.isolation in SNAPSHOT_LEVELS

    # -- bookkeeping --------------------------------------------------------

    def note_created(self, table: Table, version: RowVersion) -> None:
        self.created_versions.append((table, version))

    def note_deleted(self, version: RowVersion) -> None:
        self.deleted_versions.append(version)

    def mark_failed(self, message: str) -> None:
        self.status = TransactionStatus.FAILED
        self._statement_error = message

    @property
    def failed_message(self) -> Optional[str]:
        return self._statement_error

    @property
    def is_active(self) -> bool:
        return self.status is TransactionStatus.ACTIVE

    @property
    def is_read_only(self) -> bool:
        return self.writeset.is_empty() and not self.tables_written

    def __repr__(self) -> str:
        return f"Transaction(id={self.id}, status={self.status.value}, iso={self.isolation!r})"
