"""Versioned row storage.

Each table keeps, per logical row, an append-only chain of
:class:`RowVersion` objects stamped with the creating / deleting
transaction and, once those transactions commit, with monotonically
increasing commit timestamps.  Snapshot visibility (``mvcc.py``) is
evaluated against these stamps, which gives the engine MVCC semantics for
snapshot isolation and read-committed, and lets rollback simply unlink the
versions a transaction created.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .errors import IntegrityError, NameError_
from .types import Column, ColumnType, coerce


class RowVersion:
    """One version of one logical row.

    ``created_ts``/``deleted_ts`` are ``None`` while the creating/deleting
    transaction is still in flight and get stamped at commit time.
    """

    __slots__ = ("row_id", "values", "creator_txn", "created_ts",
                 "deleter_txn", "deleted_ts")

    def __init__(self, row_id: int, values: Dict[str, Any], creator_txn: int):
        self.row_id = row_id
        self.values = values
        self.creator_txn = creator_txn
        self.created_ts: Optional[int] = None
        self.deleter_txn: Optional[int] = None
        self.deleted_ts: Optional[int] = None

    def __repr__(self) -> str:
        return (
            f"RowVersion(row={self.row_id}, created_ts={self.created_ts}, "
            f"deleted_ts={self.deleted_ts}, values={self.values})"
        )


class Table:
    """A versioned table: schema + row version chains + indexes."""

    def __init__(self, name: str, columns: Sequence[Column], temporary: bool = False):
        self.name = name
        self.columns: List[Column] = list(columns)
        self.temporary = temporary
        self._column_map = {c.name.lower(): c for c in self.columns}
        self._rows: Dict[int, List[RowVersion]] = {}
        self._row_counter = itertools.count(1)
        # Auto-increment counters are deliberately *non-transactional*:
        # a rollback does not give numbers back (paper section 4.2.3 /
        # 4.3.2 — "an auto-incremented key ... is not decremented at
        # rollback time").
        self._auto_counters: Dict[str, int] = {
            c.name.lower(): 0 for c in self.columns if c.auto_increment
        }
        # Interleaved key generation (MySQL's auto_increment_increment /
        # auto_increment_offset) — the standard multi-master mitigation for
        # duplicate auto keys: replica k of n hands out k, k+n, k+2n, ...
        self.auto_step = 1
        self.auto_offset = 1
        self.indexes: Dict[str, "IndexDef"] = {}
        self.last_inserted_id: Optional[int] = None
        # Unique key maps: column tuple -> key tuple -> versions having that
        # key.  Uniqueness checks are then O(1) per candidate instead of a
        # table scan.
        self._unique_maps: Dict[tuple, Dict[tuple, set]] = {}
        pk_columns = tuple(
            c.name.lower() for c in self.columns if c.primary_key)
        if pk_columns:
            self._unique_maps[pk_columns] = {}
        for c in self.columns:
            if c.unique and not c.primary_key:
                self._unique_maps[(c.name.lower(),)] = {}

    # -- schema ------------------------------------------------------------

    def column(self, name: str) -> Column:
        column = self._column_map.get(name.lower())
        if column is None:
            raise NameError_(f"no column {name!r} in table {self.name!r}")
        return column

    def has_column(self, name: str) -> bool:
        return name.lower() in self._column_map

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    @property
    def primary_key_columns(self) -> List[Column]:
        return [c for c in self.columns if c.primary_key]

    def add_column(self, column: Column) -> None:
        if self.has_column(column.name):
            raise IntegrityError(
                f"column {column.name!r} already exists in {self.name!r}")
        self.columns.append(column)
        self._column_map[column.name.lower()] = column
        default = None
        for versions in self._rows.values():
            for version in versions:
                version.values.setdefault(column.name.lower(), default)

    # -- auto increment ------------------------------------------------------

    def next_auto_value(self, column_name: str) -> int:
        key = column_name.lower()
        current = self._auto_counters.get(key, 0)
        candidate = current + 1
        # advance to the next value in this replica's congruence class
        remainder = (self.auto_offset - candidate) % self.auto_step
        candidate += remainder
        self._auto_counters[key] = candidate
        return candidate

    def set_auto_interleave(self, step: int, offset: int) -> None:
        """Configure interleaved auto-increment generation (offset must be
        in 1..step)."""
        if step < 1 or not (1 <= offset <= step):
            raise ValueError("need step >= 1 and 1 <= offset <= step")
        self.auto_step = step
        self.auto_offset = offset

    def bump_auto_value(self, column_name: str, value: int) -> None:
        """Move the counter past an explicitly supplied value."""
        key = column_name.lower()
        if value > self._auto_counters.get(key, 0):
            self._auto_counters[key] = value

    def auto_counter_state(self) -> Dict[str, int]:
        return dict(self._auto_counters)

    # -- rows -----------------------------------------------------------------

    def new_row_id(self) -> int:
        return next(self._row_counter)

    def insert_version(self, values: Dict[str, Any], creator_txn: int,
                       row_id: Optional[int] = None) -> RowVersion:
        if row_id is None:
            row_id = self.new_row_id()
        version = RowVersion(row_id, values, creator_txn)
        self._rows.setdefault(row_id, []).append(version)
        for columns, key_map in self._unique_maps.items():
            key = tuple(values.get(c) for c in columns)
            key_map.setdefault(key, set()).add(version)
        return version

    def versions(self) -> Iterable[RowVersion]:
        for chain in self._rows.values():
            yield from chain

    def version_chain(self, row_id: int) -> List[RowVersion]:
        return self._rows.get(row_id, [])

    def remove_version(self, version: RowVersion) -> None:
        chain = self._rows.get(version.row_id)
        if chain is None:
            return
        try:
            chain.remove(version)
        except ValueError:
            pass
        if not chain:
            del self._rows[version.row_id]
        for columns, key_map in self._unique_maps.items():
            key = tuple(version.values.get(c) for c in columns)
            versions = key_map.get(key)
            if versions is not None:
                versions.discard(version)
                if not versions:
                    del key_map[key]

    # -- unique constraints ---------------------------------------------------

    def register_unique(self, columns: Sequence[str]) -> None:
        """Start enforcing uniqueness on a column tuple (CREATE UNIQUE
        INDEX).  Existing versions are indexed immediately."""
        key_columns = tuple(c.lower() for c in columns)
        if key_columns in self._unique_maps:
            return
        key_map: Dict[tuple, set] = {}
        for version in self.versions():
            key = tuple(version.values.get(c) for c in key_columns)
            key_map.setdefault(key, set()).add(version)
        self._unique_maps[key_columns] = key_map

    def unique_column_sets(self) -> List[tuple]:
        return list(self._unique_maps.keys())

    def unique_candidates(self, columns: tuple, key: tuple) -> set:
        """Versions sharing ``key`` on the unique column tuple ``columns``
        (uniqueness/visibility filtering is the executor's job)."""
        return self._unique_maps.get(columns, {}).get(key, set())

    def coerce_row(self, values: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and coerce a column->value mapping into a full row dict
        keyed by lowercase column name."""
        row: Dict[str, Any] = {}
        for column in self.columns:
            key = column.name.lower()
            row[key] = coerce(values.get(key), column.type)
        return row

    def check_not_null(self, row: Dict[str, Any]) -> None:
        for column in self.columns:
            if not column.nullable and row.get(column.name.lower()) is None:
                raise IntegrityError(
                    f"null value in column {column.name!r} of table "
                    f"{self.name!r} violates not-null constraint")

    # -- stats ------------------------------------------------------------------

    def version_count(self) -> int:
        return sum(len(chain) for chain in self._rows.values())

    def clone_schema(self) -> "Table":
        table = Table(self.name, [c.clone() for c in self.columns], self.temporary)
        for index in self.indexes.values():
            table.indexes[index.name.lower()] = IndexDef(
                index.name, index.columns, index.unique)
        return table


class IndexDef:
    """Index metadata.  Uniqueness is the semantically relevant part; the
    engine enforces unique indexes and treats non-unique indexes as advisory
    (scans are in-memory and small in this reproduction)."""

    __slots__ = ("name", "columns", "unique")

    def __init__(self, name: str, columns: Sequence[str], unique: bool = False):
        self.name = name
        self.columns = [c.lower() for c in columns]
        self.unique = unique

    def key_for(self, row: Dict[str, Any]) -> tuple:
        return tuple(row.get(c) for c in self.columns)
