"""Versioned row storage.

Each table keeps, per logical row, an append-only chain of
:class:`RowVersion` objects stamped with the creating / deleting
transaction and, once those transactions commit, with monotonically
increasing commit timestamps.  Snapshot visibility (``mvcc.py``) is
evaluated against these stamps, which gives the engine MVCC semantics for
snapshot isolation and read-committed, and lets rollback simply unlink the
versions a transaction created.

Indexes are *maintained* hash structures (:class:`IndexDef`): every row
version is entered under its key tuple on insert and removed on
unlink/GC, so equality probes touch only the versions carrying the
probed key instead of the whole table.  Primary keys and unique columns
get an index automatically; ``CREATE INDEX`` adds more.  Index entries
carry versions, not rows — visibility filtering stays the reader's job,
exactly as for a scan.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .errors import IntegrityError, NameError_
from .types import Column, coerce


class RowVersion:
    """One version of one logical row.

    ``created_ts``/``deleted_ts`` are ``None`` while the creating/deleting
    transaction is still in flight and get stamped at commit time.
    """

    __slots__ = ("row_id", "values", "creator_txn", "created_ts",
                 "deleter_txn", "deleted_ts")

    def __init__(self, row_id: int, values: Dict[str, Any], creator_txn: int):
        self.row_id = row_id
        self.values = values
        self.creator_txn = creator_txn
        self.created_ts: Optional[int] = None
        self.deleter_txn: Optional[int] = None
        self.deleted_ts: Optional[int] = None

    def __repr__(self) -> str:
        return (
            f"RowVersion(row={self.row_id}, created_ts={self.created_ts}, "
            f"deleted_ts={self.deleted_ts}, values={self.values})"
        )


class Table:
    """A versioned table: schema + row version chains + indexes."""

    def __init__(self, name: str, columns: Sequence[Column], temporary: bool = False):
        self.name = name
        self.columns: List[Column] = list(columns)
        self.temporary = temporary
        self._column_map = {c.name.lower(): c for c in self.columns}
        self._rows: Dict[int, List[RowVersion]] = {}
        self._row_counter = itertools.count(1)
        # Auto-increment counters are deliberately *non-transactional*:
        # a rollback does not give numbers back (paper section 4.2.3 /
        # 4.3.2 — "an auto-incremented key ... is not decremented at
        # rollback time").
        self._auto_counters: Dict[str, int] = {
            c.name.lower(): 0 for c in self.columns if c.auto_increment
        }
        # Interleaved key generation (MySQL's auto_increment_increment /
        # auto_increment_offset) — the standard multi-master mitigation for
        # duplicate auto keys: replica k of n hands out k, k+n, k+2n, ...
        self.auto_step = 1
        self.auto_offset = 1
        # All indexes are maintained hash maps (key tuple -> versions).
        # Constraint-backed ones (primary key, UNIQUE columns) are created
        # here with ``auto=True`` and cannot be dropped by DROP INDEX.
        self.indexes: Dict[str, "IndexDef"] = {}
        # Bumped on any schema change (columns, indexes); compiled access
        # plans (repro.sqlengine.planner) revalidate against it.
        self.schema_epoch = 0
        self.last_inserted_id: Optional[int] = None
        pk_columns = tuple(
            c.name.lower() for c in self.columns if c.primary_key)
        if pk_columns:
            self.attach_index(IndexDef(
                f"{name.lower()}_pkey", pk_columns, unique=True, auto=True))
        for c in self.columns:
            if c.unique and not c.primary_key:
                self.attach_index(IndexDef(
                    f"{name.lower()}_{c.name.lower()}_key",
                    (c.name.lower(),), unique=True, auto=True))

    # -- schema ------------------------------------------------------------

    def column(self, name: str) -> Column:
        column = self._column_map.get(name.lower())
        if column is None:
            raise NameError_(f"no column {name!r} in table {self.name!r}")
        return column

    def has_column(self, name: str) -> bool:
        return name.lower() in self._column_map

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    @property
    def primary_key_columns(self) -> List[Column]:
        return [c for c in self.columns if c.primary_key]

    def add_column(self, column: Column) -> None:
        if self.has_column(column.name):
            raise IntegrityError(
                f"column {column.name!r} already exists in {self.name!r}")
        self.columns.append(column)
        self._column_map[column.name.lower()] = column
        self.schema_epoch += 1
        default = None
        for versions in self._rows.values():
            for version in versions:
                version.values.setdefault(column.name.lower(), default)

    # -- auto increment ------------------------------------------------------

    def next_auto_value(self, column_name: str) -> int:
        key = column_name.lower()
        current = self._auto_counters.get(key, 0)
        candidate = current + 1
        # advance to the next value in this replica's congruence class
        remainder = (self.auto_offset - candidate) % self.auto_step
        candidate += remainder
        self._auto_counters[key] = candidate
        return candidate

    def set_auto_interleave(self, step: int, offset: int) -> None:
        """Configure interleaved auto-increment generation (offset must be
        in 1..step)."""
        if step < 1 or not (1 <= offset <= step):
            raise ValueError("need step >= 1 and 1 <= offset <= step")
        self.auto_step = step
        self.auto_offset = offset

    def bump_auto_value(self, column_name: str, value: int) -> None:
        """Move the counter past an explicitly supplied value."""
        key = column_name.lower()
        if value > self._auto_counters.get(key, 0):
            self._auto_counters[key] = value

    def auto_counter_state(self) -> Dict[str, int]:
        return dict(self._auto_counters)

    # -- rows -----------------------------------------------------------------

    def new_row_id(self) -> int:
        return next(self._row_counter)

    def insert_version(self, values: Dict[str, Any], creator_txn: int,
                       row_id: Optional[int] = None) -> RowVersion:
        if row_id is None:
            row_id = self.new_row_id()
        version = RowVersion(row_id, values, creator_txn)
        self._rows.setdefault(row_id, []).append(version)
        for index in self.indexes.values():
            index.add(version)
        return version

    def versions(self) -> Iterable[RowVersion]:
        for chain in self._rows.values():
            yield from chain

    def version_chain(self, row_id: int) -> List[RowVersion]:
        return self._rows.get(row_id, [])

    def remove_version(self, version: RowVersion) -> None:
        chain = self._rows.get(version.row_id)
        if chain is None:
            return
        try:
            chain.remove(version)
        except ValueError:
            pass
        if not chain:
            del self._rows[version.row_id]
        for index in self.indexes.values():
            index.discard(version)

    def gc_versions(self, horizon_ts: int) -> int:
        """Garbage-collect versions whose deletion committed at or before
        ``horizon_ts`` (no snapshot that old remains).  Unlinks them from
        the chains *and* from every index."""
        removed = 0
        for row_id in list(self._rows.keys()):
            dead = [v for v in self._rows[row_id]
                    if v.deleted_ts is not None and v.deleted_ts <= horizon_ts]
            for version in dead:
                self.remove_version(version)
                removed += 1
        return removed

    # -- indexes & unique constraints -----------------------------------------

    def attach_index(self, index: "IndexDef") -> "IndexDef":
        """Attach ``index`` and populate it from the existing versions."""
        index.rebuild(self.versions())
        self.indexes[index.name.lower()] = index
        self.schema_epoch += 1
        return index

    def create_index(self, name: str, columns: Sequence[str],
                     unique: bool = False) -> "IndexDef":
        """CREATE INDEX entry point: build, populate and attach."""
        return self.attach_index(IndexDef(name, columns, unique))

    def drop_index(self, name: str) -> bool:
        """Drop a non-constraint index by name; returns True if dropped."""
        index = self.indexes.get(name.lower())
        if index is None or index.auto:
            return False
        del self.indexes[name.lower()]
        self.schema_epoch += 1
        return True

    def index_for_columns(self, columns: Sequence[str]) -> Optional["IndexDef"]:
        """The first index whose key is exactly ``columns`` (unique indexes
        preferred), or None."""
        key_columns = tuple(c.lower() for c in columns)
        best = None
        for index in self.indexes.values():
            if index.key_columns == key_columns:
                if index.unique:
                    return index
                best = best or index
        return best

    @property
    def primary_key_index(self) -> Optional["IndexDef"]:
        pk_columns = tuple(c.name.lower() for c in self.primary_key_columns)
        if not pk_columns:
            return None
        return self.index_for_columns(pk_columns)

    def register_unique(self, columns: Sequence[str]) -> None:
        """Start enforcing uniqueness on a column tuple (CREATE UNIQUE
        INDEX).  Existing versions are indexed immediately."""
        key_columns = tuple(c.lower() for c in columns)
        for index in self.indexes.values():
            if index.unique and index.key_columns == key_columns:
                return
        self.attach_index(IndexDef(
            f"{self.name.lower()}_{'_'.join(key_columns)}_key",
            key_columns, unique=True, auto=True))

    def unique_column_sets(self) -> List[tuple]:
        seen = []
        for index in self.indexes.values():
            if index.unique and index.key_columns not in seen:
                seen.append(index.key_columns)
        return seen

    def unique_candidates(self, columns: tuple, key: tuple) -> set:
        """Versions sharing ``key`` on the unique column tuple ``columns``
        (uniqueness/visibility filtering is the executor's job)."""
        index = self.index_for_columns(columns)
        if index is None:
            return set()
        return index.probe(key)

    def coerce_row(self, values: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and coerce a column->value mapping into a full row dict
        keyed by lowercase column name."""
        row: Dict[str, Any] = {}
        for column in self.columns:
            key = column.name.lower()
            row[key] = coerce(values.get(key), column.type)
        return row

    def check_not_null(self, row: Dict[str, Any]) -> None:
        for column in self.columns:
            if not column.nullable and row.get(column.name.lower()) is None:
                raise IntegrityError(
                    f"null value in column {column.name!r} of table "
                    f"{self.name!r} violates not-null constraint")

    # -- stats ------------------------------------------------------------------

    def version_count(self) -> int:
        return sum(len(chain) for chain in self._rows.values())

    def logical_row_count(self) -> int:
        """Number of row chains — what a sequential scan has to visit."""
        return len(self._rows)

    def clone_schema(self) -> "Table":
        """An empty table with the same columns *and live indexes*.

        The clone's indexes are fresh maintained structures: constraint
        indexes come from the column flags, the rest are re-attached here,
        and all of them repopulate as rows are inserted — a replica rebuilt
        from this clone enforces uniqueness and serves index probes, it
        does not carry dead metadata shells.
        """
        table = Table(self.name, [c.clone() for c in self.columns], self.temporary)
        for index in self.indexes.values():
            if index.name.lower() in table.indexes:
                continue  # constraint index already created from the schema
            table.attach_index(IndexDef(
                index.name, index.columns, index.unique, auto=index.auto))
        return table


_EMPTY_SET: frozenset = frozenset()


class IndexDef:
    """A maintained hash index: key tuple -> set of row versions.

    Every version of every row is entered under its key; readers probe
    with a full key tuple and apply MVCC visibility to the candidates,
    exactly as they would while scanning.  Unique indexes double as the
    enforcement structure for uniqueness checks."""

    __slots__ = ("name", "columns", "unique", "auto", "entries")

    def __init__(self, name: str, columns: Sequence[str], unique: bool = False,
                 auto: bool = False):
        self.name = name
        self.columns = [c.lower() for c in columns]
        self.unique = unique
        # auto=True marks constraint-backed indexes (primary key / UNIQUE
        # column); they are created with the table and survive DROP INDEX.
        self.auto = auto
        self.entries: Dict[tuple, set] = {}

    @property
    def key_columns(self) -> tuple:
        return tuple(self.columns)

    def key_for(self, row: Dict[str, Any]) -> tuple:
        return tuple(row.get(c) for c in self.columns)

    def add(self, version: RowVersion) -> None:
        self.entries.setdefault(self.key_for(version.values), set()).add(version)

    def discard(self, version: RowVersion) -> None:
        key = self.key_for(version.values)
        versions = self.entries.get(key)
        if versions is not None:
            versions.discard(version)
            if not versions:
                del self.entries[key]

    def probe(self, key: Sequence[Any]):
        """All versions carrying ``key`` (no visibility filtering)."""
        return self.entries.get(tuple(key), _EMPTY_SET)

    def rebuild(self, versions: Iterable[RowVersion]) -> None:
        self.entries.clear()
        for version in versions:
            self.add(version)

    def entry_count(self) -> int:
        return sum(len(versions) for versions in self.entries.values())

    def __repr__(self) -> str:
        return (f"IndexDef({self.name!r}, columns={self.columns}, "
                f"unique={self.unique}, keys={len(self.entries)})")
