"""Database sequences — deliberately non-transactional.

Paper section 4.2.3: sequences "are non-transactional database objects, so
they cannot be rolled back.  Sequence numbers generated for a failed query
or transaction are lost and generate 'holes'", they "bypass isolation
mechanisms such as MVCC", and they are typically *not* persisted in the
transactional log — so naive backup/restore misses them.

This module reproduces all three properties: ``next_value`` advances
immediately and permanently; values are handed out outside any snapshot;
and the engine's binlog records statements, not sequence counters, so a
restore from a statement log can hand out duplicate keys unless the
middleware compensates.
"""

from __future__ import annotations

from typing import Dict, Optional

from .errors import NameError_


class Sequence:
    """A named monotonic counter."""

    __slots__ = ("name", "start", "increment", "_current", "_called")

    def __init__(self, name: str, start: int = 1, increment: int = 1):
        self.name = name
        self.start = start
        self.increment = increment
        self._current = start - increment
        self._called = False

    def next_value(self) -> int:
        """Advance and return.  This happens *outside* transaction control:
        the caller's rollback will not undo it."""
        self._current += self.increment
        self._called = True
        return self._current

    def current_value(self) -> int:
        if not self._called:
            raise NameError_(
                f"currval of sequence {self.name!r} is not yet defined "
                "in this engine (nextval never called)")
        return self._current

    def set_value(self, value: int) -> None:
        self._current = value
        self._called = True

    @property
    def last_value(self) -> Optional[int]:
        return self._current if self._called else None

    def state(self) -> Dict[str, int]:
        """Counter state for backup tools that *do* know how to capture
        sequences (most don't — the section 4.2.3 gap)."""
        return {
            "start": self.start,
            "increment": self.increment,
            "current": self._current,
            "called": int(self._called),
        }

    @classmethod
    def from_state(cls, name: str, state: Dict[str, int]) -> "Sequence":
        sequence = cls(name, state["start"], state["increment"])
        sequence._current = state["current"]
        sequence._called = bool(state["called"])
        return sequence

    def __repr__(self) -> str:
        return f"Sequence({self.name!r}, current={self._current}, called={self._called})"
