"""Statement execution.

The :class:`Executor` turns parsed statements into reads and writes against
the versioned storage, under the session's transaction and isolation level.
It enforces privileges, fires triggers, captures writesets, and implements
the dialect quirks the paper's gap analysis depends on.

Concurrency discipline: the engine never blocks the (single) OS thread.
A conflicting write raises :class:`~repro.sqlengine.locks.LockConflict`
(retry after the owner finishes) or a serialization/deadlock error
(abort and retry), and the caller — test code, the replication middleware
or the discrete-event simulator — decides what to do.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from . import ast_nodes as ast
from .errors import (
    AccessDeniedError, DiskFullError, IntegrityError, NameError_,
    SQLError, TypeError_, UnsupportedFeatureError,
)
from .expressions import EvalContext, evaluate, is_true, sort_key
from .functions import AGGREGATE_FUNCTIONS
from .locks import LockConflict, LockMode
from .mvcc import (
    READ_UNCOMMITTED, SERIALIZABLE, Snapshot, latest_committed_change,
    uncommitted_writer, visible_rows, visible_version,
)
from .planner import (AccessPlan, SEQ_SCAN, plan_table_access,
                      plan_table_access_cached)
from .sequences import Sequence
from .procedures import Procedure
from .storage import RowVersion, Table
from .transactions import WritesetEntry
from .triggers import Trigger, TriggerEvent
from .types import Column, ColumnType, coerce

_MAX_TRIGGER_DEPTH = 8


class Result:
    """The outcome of one statement."""

    __slots__ = ("columns", "rows", "rowcount", "lastrowid")

    def __init__(self, columns: Optional[List[str]] = None,
                 rows: Optional[List[tuple]] = None,
                 rowcount: int = 0, lastrowid: Optional[int] = None):
        self.columns = columns or []
        self.rows = rows or []
        self.rowcount = rowcount
        self.lastrowid = lastrowid

    def scalar(self) -> Any:
        """First column of the first row (None when empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def first(self) -> Optional[tuple]:
        return self.rows[0] if self.rows else None

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:
        return f"Result(rows={len(self.rows)}, rowcount={self.rowcount})"


class Executor:
    """Executes statements for one engine."""

    def __init__(self, engine):
        self.engine = engine
        self._trigger_depth = 0
        # Access paths chosen by the most recent statement, newest last —
        # EXPLAIN-style introspection for tests and benchmarks.
        self.last_access_paths: List[str] = []

    # ------------------------------------------------------------------
    # access paths
    # ------------------------------------------------------------------

    def _table_versions(self, session, table, binding, where, snapshot,
                        ctx, dirty: bool = False) -> List[RowVersion]:
        """The visible versions a statement must consider for ``table``,
        through the planned access path.

        An index probe yields a *superset* of the fully-matching rows (the
        caller still applies the complete WHERE), so routing here never
        changes results — only how many rows are touched, which the
        engine-level ``seq_scans`` / ``index_probes`` / ``rows_scanned``
        counters record.
        """
        txn_id = session.txn.id if session.txn else None
        stats = self.engine.stats
        plan = (plan_table_access_cached(table, binding, where, ctx)
                if self.engine.use_indexes else AccessPlan(SEQ_SCAN, table))
        self.last_access_paths.append(plan.describe())
        if plan.is_index:
            stats["index_probes"] += 1
            row_ids = set()
            for key in plan.keys:
                for candidate in plan.index.probe(key):
                    row_ids.add(candidate.row_id)
            stats["rows_scanned"] += len(row_ids)
            versions = []
            for row_id in row_ids:
                version = visible_version(table, row_id, snapshot, txn_id,
                                          dirty=dirty)
                if version is not None:
                    versions.append(version)
            return versions
        stats["seq_scans"] += 1
        stats["rows_scanned"] += table.logical_row_count()
        return list(visible_rows(table, snapshot, txn_id, dirty=dirty))

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def execute(self, session, statement: ast.Statement,
                params: Optional[List[Any]] = None,
                variables: Optional[Dict[str, Any]] = None) -> Result:
        params = params or []
        if self._trigger_depth == 0:
            self.last_access_paths = []
        # Exact-type checks for the four DML classes that make up ~all of
        # any OLTP run; everything else (DDL, grants, subclasses) takes
        # the isinstance chain in _execute_cold.
        cls = statement.__class__
        if cls is ast.SelectStatement:
            return self._execute_select_statement(session, statement,
                                                  params, variables)
        if cls is ast.UpdateStatement:
            return self._execute_update(session, statement, params, variables)
        if cls is ast.InsertStatement:
            return self._execute_insert(session, statement, params, variables)
        if cls is ast.DeleteStatement:
            return self._execute_delete(session, statement, params, variables)
        return self._execute_cold(session, statement, params, variables)

    def _execute_cold(self, session, statement: ast.Statement,
                      params: List[Any],
                      variables: Optional[Dict[str, Any]]) -> Result:
        if isinstance(statement, ast.SelectStatement):
            return self._execute_select_statement(session, statement, params, variables)
        if isinstance(statement, ast.ExplainStatement):
            return self._execute_explain(session, statement, params, variables)
        if isinstance(statement, ast.InsertStatement):
            return self._execute_insert(session, statement, params, variables)
        if isinstance(statement, ast.UpdateStatement):
            return self._execute_update(session, statement, params, variables)
        if isinstance(statement, ast.DeleteStatement):
            return self._execute_delete(session, statement, params, variables)
        if isinstance(statement, ast.CreateTableStatement):
            return self._execute_create_table(session, statement)
        if isinstance(statement, ast.CreateDatabaseStatement):
            return self._execute_create_database(session, statement)
        if isinstance(statement, ast.CreateSchemaStatement):
            return self._execute_create_schema(session, statement)
        if isinstance(statement, ast.CreateIndexStatement):
            return self._execute_create_index(session, statement)
        if isinstance(statement, ast.CreateSequenceStatement):
            return self._execute_create_sequence(session, statement)
        if isinstance(statement, ast.CreateTriggerStatement):
            return self._execute_create_trigger(session, statement)
        if isinstance(statement, ast.CreateProcedureStatement):
            return self._execute_create_procedure(session, statement)
        if isinstance(statement, ast.CreateUserStatement):
            self.engine.users.add_user(statement.name, statement.password)
            return Result()
        if isinstance(statement, ast.DropStatement):
            return self._execute_drop(session, statement)
        if isinstance(statement, ast.AlterTableStatement):
            return self._execute_alter(session, statement)
        if isinstance(statement, ast.SetStatement):
            return self._execute_set(session, statement, params)
        if isinstance(statement, ast.GrantStatement):
            return self._execute_grant(session, statement)
        if isinstance(statement, ast.RevokeStatement):
            return self._execute_revoke(session, statement)
        if isinstance(statement, ast.UseStatement):
            session.use_database(statement.database)
            return Result()
        if isinstance(statement, ast.CallStatement):
            return self._execute_call(session, statement, params, variables)
        if isinstance(statement, ast.LockTableStatement):
            return self._execute_lock(session, statement)
        if isinstance(statement, (ast.BeginStatement, ast.CommitStatement,
                                  ast.RollbackStatement)):
            raise TypeError_(
                "transaction control must go through the connection")
        raise TypeError_(f"unsupported statement {type(statement).__name__}")

    # ------------------------------------------------------------------
    # name resolution / privileges
    # ------------------------------------------------------------------

    def _resolve_table(self, session, name: ast.QualifiedName,
                       privilege: Optional[str] = None):
        """Return (database_name, table).  Unqualified names check the
        session's temp-table space first (section 4.1.4)."""
        if name.database is None:
            temp = session.temp_space.get(name.name)
            if temp is not None:
                return ("#temp", temp)
        database_name = name.database or session.current_database_name()
        from . import information_schema
        if information_schema.is_information_schema(database_name):
            if privilege not in (None, "SELECT"):
                raise AccessDeniedError(
                    "information_schema views are read-only")
            view = information_schema.build_view(self.engine, name.name)
            return (information_schema.DATABASE_NAME, view)
        database = self.engine.database(database_name)
        table = database.table(name.name)
        if privilege is not None:
            self._check_privilege(session, privilege, database_name, name.name)
        return (database_name, table)

    def _resolve_database(self, session, name: ast.QualifiedName):
        database_name = name.database or session.current_database_name()
        return database_name, self.engine.database(database_name)

    def _check_privilege(self, session, privilege: str,
                         database: str, table: str) -> None:
        if not self.engine.enforce_privileges:
            return
        if not session.user.has_privilege(privilege, database, table):
            raise AccessDeniedError(
                f"user {session.user_name!r} lacks {privilege} on "
                f"{database}.{table}")

    def _check_write_allowed(self) -> None:
        if self.engine.disk_full:
            raise DiskFullError(
                f"engine {self.engine.name!r}: data partition out of space")

    # ------------------------------------------------------------------
    # snapshots & locks
    # ------------------------------------------------------------------

    def _read_snapshot(self, session) -> Snapshot:
        statement_snapshot = self.engine.clock.snapshot()
        txn = session.txn
        if txn is None:
            return statement_snapshot
        return txn.read_snapshot(statement_snapshot)

    def _lock_for_read(self, session, database: str, table: Table) -> None:
        txn = session.txn
        if txn is not None and txn.isolation == SERIALIZABLE and not table.temporary:
            self.engine.locks.acquire(
                txn.id, f"{database}.{table.name}".lower(), LockMode.SHARED)

    def _lock_for_write(self, session, database: str, table: Table) -> None:
        txn = session.txn
        if txn is not None and txn.isolation == SERIALIZABLE and not table.temporary:
            self.engine.locks.acquire(
                txn.id, f"{database}.{table.name}".lower(), LockMode.EXCLUSIVE)

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def _execute_select_statement(self, session, statement, params,
                                  variables) -> Result:
        ctx = EvalContext(self, session, params=params, variables=variables or {})
        return self._run_select(session, statement, ctx)

    def _run_select(self, session, statement: ast.SelectStatement,
                    outer_ctx: EvalContext) -> Result:
        snapshot = self._read_snapshot(session)
        dirty = session.txn is not None and session.txn.isolation == READ_UNCOMMITTED

        source_rows, source_columns = self._build_source(
            session, statement.source, snapshot, dirty, outer_ctx,
            where=statement.where)

        if statement.for_update and isinstance(statement.source, ast.TableRef):
            database_name, table = self._resolve_table(
                session, statement.source.name, privilege="SELECT")
            txn = session.txn
            if txn is not None and not table.temporary:
                self.engine.locks.acquire(
                    txn.id, f"{database_name}.{table.name}".lower(),
                    LockMode.EXCLUSIVE)

        if statement.where is not None:
            filtered = []
            for bindings in source_rows:
                ctx = outer_ctx.child(bindings)
                if is_true(evaluate(statement.where, ctx)):
                    filtered.append(bindings)
            source_rows = filtered

        has_aggregates = any(
            _contains_aggregate(expr) for expr, _ in statement.columns
        ) or (statement.having is not None and _contains_aggregate(statement.having))

        grouped = bool(statement.group_by) or has_aggregates
        row_bindings: Optional[List[Dict]] = None
        if grouped:
            rows, columns = self._grouped_output(
                session, statement, source_rows, outer_ctx)
        else:
            rows, columns = self._plain_output(
                session, statement, source_rows, source_columns, outer_ctx)
            row_bindings = source_rows

        if statement.distinct:
            seen = set()
            unique_rows = []
            unique_bindings = []
            for index, row in enumerate(rows):
                key = tuple(sort_key(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    unique_rows.append(row)
                    if row_bindings is not None:
                        unique_bindings.append(row_bindings[index])
            rows = unique_rows
            if row_bindings is not None:
                row_bindings = unique_bindings

        if statement.order_by:
            rows = self._order_rows(statement, rows, columns, row_bindings,
                                    outer_ctx)

        rows = self._apply_limit(statement, rows, outer_ctx)
        return Result(columns=columns, rows=rows, rowcount=len(rows))

    def _build_source(self, session, source, snapshot, dirty, outer_ctx,
                      where=None):
        """Returns (list of binding dicts, ordered [(binding, column_names)]).

        ``where`` is the enclosing statement's predicate, pushed down so
        table references can serve equality conjuncts from an index probe
        instead of a full scan; the caller still applies the complete
        predicate to whatever comes back.
        """
        if source is None:
            return [{}], []
        if isinstance(source, ast.TableRef):
            database_name, table = self._resolve_table(
                session, source.name, privilege="SELECT")
            self._lock_for_read(session, database_name, table)
            binding = source.binding
            rows = [
                {binding: dict(version.values)}
                for version in self._table_versions(
                    session, table, binding, where, snapshot, outer_ctx,
                    dirty=dirty)
            ]
            if session.txn is not None:
                session.txn.tables_read.add((database_name, table.name.lower()))
            session.note_table_access(database_name, table.name, table.temporary)
            return rows, [(binding, [c.lower() for c in table.column_names])]
        if isinstance(source, ast.SubquerySource):
            result = self._run_select(session, source.select, outer_ctx)
            binding = source.binding
            columns = [c.lower() for c in result.columns]
            rows = [
                {binding: dict(zip(columns, row))}
                for row in result.rows
            ]
            return rows, [(binding, columns)]
        if isinstance(source, ast.Join):
            return self._build_join(session, source, snapshot, dirty,
                                    outer_ctx, where=where)
        raise TypeError_(f"unsupported FROM clause {type(source).__name__}")

    def _build_join(self, session, join: ast.Join, snapshot, dirty, outer_ctx,
                    where=None):
        # WHERE conjuncts push through joins: a conjunct binding one side's
        # columns restricts only rows the full predicate would reject
        # anyway (null-extended LEFT JOIN rows fail the conjunct too).
        left_rows, left_columns = self._build_source(
            session, join.left, snapshot, dirty, outer_ctx, where=where)
        right_rows, right_columns = self._build_source(
            session, join.right, snapshot, dirty, outer_ctx, where=where)
        combined: List[Dict[str, Dict]] = []
        for left in left_rows:
            matched = False
            for right in right_rows:
                bindings = {**left, **right}
                if join.condition is not None:
                    ctx = outer_ctx.child(bindings)
                    if not is_true(evaluate(join.condition, ctx)):
                        continue
                matched = True
                combined.append(bindings)
            if join.kind == "LEFT" and not matched:
                null_right: Dict[str, Dict] = {}
                for binding, columns in right_columns:
                    null_right[binding] = {c: None for c in columns}
                combined.append({**left, **null_right})
        return combined, left_columns + right_columns

    def _plain_output(self, session, statement, source_rows, source_columns,
                      outer_ctx):
        columns = self._output_column_names(statement, source_columns)
        rows = []
        for bindings in source_rows:
            ctx = outer_ctx.child(bindings)
            row = []
            for expr, _alias in statement.columns:
                if isinstance(expr, ast.Star):
                    row.extend(self._expand_star(expr, bindings, source_columns))
                else:
                    row.append(evaluate(expr, ctx))
            rows.append(tuple(row))
        return rows, columns

    def _expand_star(self, star: ast.Star, bindings, source_columns):
        values = []
        for binding, columns in source_columns:
            if star.table is not None and binding != star.table.lower():
                continue
            row = bindings.get(binding, {})
            values.extend(row.get(c) for c in columns)
        return values

    def _output_column_names(self, statement, source_columns) -> List[str]:
        names: List[str] = []
        for index, (expr, alias) in enumerate(statement.columns):
            if isinstance(expr, ast.Star):
                for binding, columns in source_columns:
                    if expr.table is not None and binding != expr.table.lower():
                        continue
                    names.extend(columns)
            elif alias:
                names.append(alias)
            elif isinstance(expr, ast.ColumnRef):
                names.append(expr.name.lower())
            elif isinstance(expr, ast.FunctionCall):
                names.append(expr.name.lower())
            else:
                names.append(f"col{index}")
        return names

    def _grouped_output(self, session, statement, source_rows, outer_ctx):
        groups: Dict[tuple, List[Dict]] = {}
        order: List[tuple] = []
        if statement.group_by:
            for bindings in source_rows:
                ctx = outer_ctx.child(bindings)
                key = tuple(
                    sort_key(evaluate(expr, ctx)) for expr in statement.group_by)
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(bindings)
        else:
            # implicit single group (aggregate without GROUP BY)
            groups[()] = list(source_rows)
            order.append(())

        columns = self._output_column_names(statement, [])
        rows = []
        for key in order:
            group_rows = groups[key]
            if statement.having is not None:
                value = self._eval_aggregate_expr(
                    statement.having, group_rows, outer_ctx)
                if not is_true(value):
                    continue
            row = []
            for expr, _alias in statement.columns:
                if isinstance(expr, ast.Star):
                    raise TypeError_("'*' not allowed with GROUP BY")
                row.append(self._eval_aggregate_expr(expr, group_rows, outer_ctx))
            rows.append(tuple(row))
        return rows, columns

    def _eval_aggregate_expr(self, expr, group_rows, outer_ctx):
        """Evaluate an expression that may contain aggregate calls, over a
        group of rows.  Non-aggregate parts are evaluated on the first row
        of the group (they should be group-by expressions)."""
        if isinstance(expr, ast.FunctionCall) and expr.name in AGGREGATE_FUNCTIONS:
            return self._compute_aggregate(expr, group_rows, outer_ctx)
        if isinstance(expr, ast.BinaryOp):
            left = self._eval_aggregate_expr(expr.left, group_rows, outer_ctx)
            right = self._eval_aggregate_expr(expr.right, group_rows, outer_ctx)
            clone = ast.BinaryOp(expr.op, ast.Literal(left), ast.Literal(right))
            return evaluate(clone, outer_ctx.child(group_rows[0] if group_rows else {}))
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval_aggregate_expr(expr.operand, group_rows, outer_ctx)
            clone = ast.UnaryOp(expr.op, ast.Literal(operand))
            return evaluate(clone, outer_ctx.child(group_rows[0] if group_rows else {}))
        if not group_rows:
            return None
        return evaluate(expr, outer_ctx.child(group_rows[0]))

    def _compute_aggregate(self, call: ast.FunctionCall, group_rows, outer_ctx):
        name = call.name
        if name == "COUNT" and (not call.args or isinstance(call.args[0], ast.Star)):
            return len(group_rows)
        if not call.args:
            raise TypeError_(f"{name}() needs an argument")
        values = []
        for bindings in group_rows:
            ctx = outer_ctx.child(bindings)
            value = evaluate(call.args[0], ctx)
            if value is not None:
                values.append(value)
        if call.distinct:
            seen = set()
            distinct_values = []
            for value in values:
                key = sort_key(value)
                if key not in seen:
                    seen.add(key)
                    distinct_values.append(value)
            values = distinct_values
        if name == "COUNT":
            return len(values)
        if not values:
            return None
        if name == "SUM":
            return sum(values)
        if name == "AVG":
            return sum(values) / len(values)
        if name == "MIN":
            return min(values, key=sort_key)
        if name == "MAX":
            return max(values, key=sort_key)
        raise TypeError_(f"unknown aggregate {name}")

    def _order_rows(self, statement, rows, columns, row_bindings, outer_ctx):
        """Sort output rows.  When source bindings are available (plain
        queries), ORDER BY expressions may reference source columns that
        were not projected; otherwise they resolve against the output."""
        lowered = [c.lower() for c in columns]
        indexed = list(range(len(rows)))

        def value_for(index, expr):
            row = rows[index]
            # alias / output column name
            if isinstance(expr, ast.ColumnRef) and expr.table is None:
                name = expr.name.lower()
                if name in lowered:
                    return row[lowered.index(name)]
            # ordinal: ORDER BY 2
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                ordinal = expr.value - 1
                if 0 <= ordinal < len(row):
                    return row[ordinal]
            if row_bindings is not None:
                ctx = outer_ctx.child(row_bindings[index])
                try:
                    return evaluate(expr, ctx)
                except SQLError:
                    pass
            bindings = {"__out__": dict(zip(lowered, row))}
            ctx = outer_ctx.child(bindings)
            try:
                return evaluate(expr, ctx)
            except SQLError:
                return None

        # Stable multi-key sort: apply keys from last to first.
        for expr, ascending in reversed(statement.order_by):
            indexed = sorted(
                indexed,
                key=lambda i: sort_key(value_for(i, expr)),
                reverse=not ascending,
            )
        return [rows[i] for i in indexed]

    def _apply_limit(self, statement, rows, outer_ctx):
        offset = 0
        if statement.offset is not None:
            offset = int(evaluate(statement.offset, outer_ctx))
        if statement.limit is not None:
            limit = int(evaluate(statement.limit, outer_ctx))
            return rows[offset:offset + limit]
        if offset:
            return rows[offset:]
        return rows

    # ------------------------------------------------------------------
    # EXPLAIN
    # ------------------------------------------------------------------

    def _execute_explain(self, session, statement: ast.ExplainStatement,
                         params, variables) -> Result:
        """Describe the access path the planner would choose, without
        executing the statement."""
        ctx = EvalContext(self, session, params=params,
                          variables=variables or {})
        inner = statement.statement
        rows: List[tuple] = []
        if isinstance(inner, ast.SelectStatement):
            self._explain_source(session, inner.source, inner.where, ctx, rows)
        elif isinstance(inner, ast.UpdateStatement):
            _db, table = self._resolve_table(session, inner.table)
            rows.append(self._explain_row(
                "UPDATE", table, inner.table.name.lower(), inner.where, ctx))
        elif isinstance(inner, ast.DeleteStatement):
            _db, table = self._resolve_table(session, inner.table)
            rows.append(self._explain_row(
                "DELETE", table, inner.table.name.lower(), inner.where, ctx))
        else:
            raise TypeError_(
                f"cannot EXPLAIN {type(inner).__name__}")
        return Result(columns=["operation", "table", "access_path", "keys"],
                      rows=rows, rowcount=len(rows))

    def _explain_source(self, session, source, where, ctx,
                        rows: List[tuple]) -> None:
        if isinstance(source, ast.TableRef):
            _db, table = self._resolve_table(session, source.name)
            rows.append(self._explain_row(
                "SELECT", table, source.binding, where, ctx))
        elif isinstance(source, ast.Join):
            self._explain_source(session, source.left, where, ctx, rows)
            self._explain_source(session, source.right, where, ctx, rows)
        elif isinstance(source, ast.SubquerySource):
            rows.append(("SELECT", source.binding, "derived-table", 0))

    def _explain_row(self, operation: str, table: Table, binding: str,
                     where, ctx) -> tuple:
        plan = (plan_table_access(table, binding, where, ctx)
                if self.engine.use_indexes else AccessPlan(SEQ_SCAN, table))
        access = (f"index-probe ({plan.index.name})" if plan.is_index
                  else "seq-scan")
        return (operation, table.name, access, len(plan.keys))

    # -- subquery hooks (called from expressions.py) -----------------------

    def scalar_subquery(self, select: ast.SelectStatement, ctx: EvalContext):
        result = self._run_select(ctx.session, select, ctx)
        if not result.rows:
            return None
        return result.rows[0][0]

    def exists_subquery(self, select: ast.SelectStatement, ctx: EvalContext) -> bool:
        result = self._run_select(ctx.session, select, ctx)
        return bool(result.rows)

    def column_subquery(self, select: ast.SelectStatement, ctx: EvalContext):
        result = self._run_select(ctx.session, select, ctx)
        return [row[0] for row in result.rows]

    def sequence_function(self, call: ast.FunctionCall, ctx: EvalContext):
        session = ctx.session
        if not self.engine.dialect.supports_sequences:
            raise UnsupportedFeatureError(
                f"dialect {self.engine.dialect.name!r} has no sequences")
        if not call.args:
            raise TypeError_(f"{call.name} needs a sequence name")
        name = evaluate(call.args[0], ctx)
        database_name = session.current_database_name()
        database = self.engine.database(database_name)
        sequence = database.sequence(str(name))
        if call.name == "NEXTVAL":
            value = sequence.next_value()
            if session.txn is not None:
                session.txn.sequence_effects.append(
                    (database_name, sequence.name, value))
            return value
        if call.name == "CURRVAL":
            return sequence.current_value()
        if call.name == "SETVAL":
            if len(call.args) < 2:
                raise TypeError_("SETVAL needs (sequence, value)")
            value = int(evaluate(call.args[1], ctx))
            sequence.set_value(value)
            return value
        raise TypeError_(f"unknown sequence function {call.name}")

    # ------------------------------------------------------------------
    # INSERT / UPDATE / DELETE
    # ------------------------------------------------------------------

    def _execute_insert(self, session, statement: ast.InsertStatement,
                        params, variables) -> Result:
        self._check_write_allowed()
        database_name, table = self._resolve_table(
            session, statement.table, privilege="INSERT")
        self._lock_for_write(session, database_name, table)
        ctx = EvalContext(self, session, params=params, variables=variables or {})

        if statement.select is not None:
            select_result = self._run_select(session, statement.select, ctx)
            value_rows = [list(row) for row in select_result.rows]
        else:
            value_rows = [
                [evaluate(expr, ctx) for expr in row]
                for row in statement.rows
            ]

        column_names = statement.columns or table.column_names
        if any(not table.has_column(c) for c in column_names):
            missing = [c for c in column_names if not table.has_column(c)]
            raise NameError_(
                f"unknown column(s) {missing} in table {table.name!r}")

        lastrowid = None
        inserted = 0
        for values in value_rows:
            if len(values) != len(column_names):
                raise TypeError_(
                    f"INSERT has {len(column_names)} column(s) but "
                    f"{len(values)} value(s)")
            row = {c.lower(): v for c, v in zip(column_names, values)}
            lastrowid = self._insert_row(session, database_name, table, row)
            inserted += 1
        result = Result(rowcount=inserted, lastrowid=lastrowid)
        session.last_insert_id = lastrowid
        return result

    def _insert_row(self, session, database_name: str, table: Table,
                    row: Dict[str, Any]) -> Optional[int]:
        txn = session.txn
        ctx = EvalContext(self, session)
        lastrowid = None
        # defaults + auto increment (auto counters survive rollback: 4.2.3)
        for column in table.columns:
            key = column.name.lower()
            if row.get(key) is None:
                if column.auto_increment:
                    row[key] = table.next_auto_value(key)
                    lastrowid = row[key]
                    if txn is not None:
                        txn.auto_increment_effects.append(
                            (database_name, table.name, row[key]))
                elif column.default is not None and key not in row:
                    row[key] = evaluate(column.default, ctx)
            elif column.auto_increment and row.get(key) is not None:
                table.bump_auto_value(key, int(row[key]))
                lastrowid = row[key]

        full_row = table.coerce_row(row)
        table.check_not_null(full_row)
        self._check_unique(session, database_name, table, full_row,
                           exclude_row_id=None)

        self._fire_triggers(session, database_name, table, "INSERT",
                            timing="BEFORE", old=None, new=full_row)

        txn_id = txn.id if txn is not None else 0
        version = table.insert_version(full_row, txn_id)
        table.last_inserted_id = lastrowid
        if txn is not None:
            txn.note_created(table, version)
            if not table.temporary:
                txn.tables_written.add((database_name, table.name.lower()))
                txn.writeset.add(WritesetEntry(
                    database_name, table.name.lower(), "INSERT",
                    self._primary_key_of(table, full_row), None,
                    dict(full_row), version.row_id))

        self._fire_triggers(session, database_name, table, "INSERT",
                            timing="AFTER", old=None, new=full_row)
        return lastrowid

    def _primary_key_of(self, table: Table, row: Dict[str, Any]):
        pk_columns = table.primary_key_columns
        if not pk_columns:
            return None
        return tuple(row.get(c.name.lower()) for c in pk_columns)

    def _check_unique(self, session, database_name: str, table: Table,
                      row: Dict[str, Any], exclude_row_id: Optional[int]) -> None:
        txn = session.txn
        txn_id = txn.id if txn is not None else 0
        snapshot = self.engine.clock.snapshot()
        for columns in table.unique_column_sets():
            key = tuple(row.get(c) for c in columns)
            if any(v is None for v in key):
                continue
            for candidate in table.unique_candidates(columns, key):
                if exclude_row_id is not None and candidate.row_id == exclude_row_id:
                    continue
                if candidate.creator_txn == txn_id and candidate.deleter_txn == txn_id:
                    continue  # superseded within this txn
                if candidate.created_ts is None and candidate.creator_txn != txn_id:
                    # Another in-flight transaction is inserting the same key:
                    # write-write conflict, the caller may retry later.
                    raise LockConflict(
                        f"unique:{database_name}.{table.name}:{key}",
                        candidate.creator_txn,
                        should_die=txn_id > candidate.creator_txn)
                # Committed or own version: visible -> duplicate.
                from .mvcc import version_visible
                if version_visible(candidate, snapshot, txn_id):
                    raise IntegrityError(
                        f"duplicate key {key} for unique columns "
                        f"{columns} in {database_name}.{table.name}")

    def _execute_update(self, session, statement: ast.UpdateStatement,
                        params, variables) -> Result:
        self._check_write_allowed()
        database_name, table = self._resolve_table(
            session, statement.table, privilege="UPDATE")
        self._lock_for_write(session, database_name, table)
        ctx = EvalContext(self, session, params=params, variables=variables or {})
        txn = session.txn
        txn_id = txn.id if txn is not None else 0
        snapshot = self._read_snapshot(session)
        binding = statement.table.name.lower()

        targets = self._matching_versions(
            session, table, binding, statement.where, snapshot, ctx)

        updated = 0
        for version in targets:
            self._check_write_conflict(session, database_name, table, version)
            old_values = dict(version.values)
            bindings = {binding: old_values}
            row_ctx = ctx.with_bindings(bindings)
            new_values = dict(old_values)
            for column_name, expr in statement.assignments:
                column = table.column(column_name)
                new_values[column.name.lower()] = coerce(
                    evaluate(expr, row_ctx), column.type)
            table.check_not_null(new_values)
            self._check_unique(session, database_name, table, new_values,
                               exclude_row_id=version.row_id)

            self._fire_triggers(session, database_name, table, "UPDATE",
                                timing="BEFORE", old=old_values, new=new_values)

            version.deleter_txn = txn_id
            new_version = table.insert_version(
                new_values, txn_id, row_id=version.row_id)
            if txn is not None:
                txn.note_deleted(version)
                txn.note_created(table, new_version)
                if not table.temporary:
                    txn.tables_written.add((database_name, table.name.lower()))
                    txn.writeset.add(WritesetEntry(
                        database_name, table.name.lower(), "UPDATE",
                        self._primary_key_of(table, old_values),
                        old_values, dict(new_values), version.row_id))
            else:
                # autocommit single statement: stamp immediately
                self._stamp_autocommit(version, new_version)

            self._fire_triggers(session, database_name, table, "UPDATE",
                                timing="AFTER", old=old_values, new=new_values)
            updated += 1
        return Result(rowcount=updated)

    def _execute_delete(self, session, statement: ast.DeleteStatement,
                        params, variables) -> Result:
        self._check_write_allowed()
        database_name, table = self._resolve_table(
            session, statement.table, privilege="DELETE")
        self._lock_for_write(session, database_name, table)
        ctx = EvalContext(self, session, params=params, variables=variables or {})
        txn = session.txn
        txn_id = txn.id if txn is not None else 0
        snapshot = self._read_snapshot(session)
        binding = statement.table.name.lower()

        targets = self._matching_versions(
            session, table, binding, statement.where, snapshot, ctx)

        deleted = 0
        for version in targets:
            self._check_write_conflict(session, database_name, table, version)
            old_values = dict(version.values)
            self._fire_triggers(session, database_name, table, "DELETE",
                                timing="BEFORE", old=old_values, new=None)
            version.deleter_txn = txn_id
            if txn is not None:
                txn.note_deleted(version)
                if not table.temporary:
                    txn.tables_written.add((database_name, table.name.lower()))
                    txn.writeset.add(WritesetEntry(
                        database_name, table.name.lower(), "DELETE",
                        self._primary_key_of(table, old_values),
                        old_values, None, version.row_id))
            else:
                version.deleted_ts = self.engine.clock.tick()
            self._fire_triggers(session, database_name, table, "DELETE",
                                timing="AFTER", old=old_values, new=None)
            deleted += 1
        return Result(rowcount=deleted)

    def _stamp_autocommit(self, old_version: Optional[RowVersion],
                          new_version: Optional[RowVersion]) -> None:
        ts = self.engine.clock.tick()
        if old_version is not None:
            old_version.deleted_ts = ts
        if new_version is not None:
            new_version.created_ts = ts

    def _matching_versions(self, session, table: Table, binding: str,
                           where, snapshot, ctx) -> List[RowVersion]:
        candidates = self._table_versions(
            session, table, binding, where, snapshot, ctx)
        matches = []
        for version in candidates:
            if where is not None:
                row_ctx = ctx.with_bindings({binding: dict(version.values)})
                if not is_true(evaluate(where, row_ctx)):
                    continue
            matches.append(version)
        return matches

    def _check_write_conflict(self, session, database_name: str,
                              table: Table, version: RowVersion) -> None:
        """Write-write conflict detection.

        * another in-flight writer on the row chain -> LockConflict
          (wait or die, the caller decides using should_die);
        * under snapshot-class isolation, a *committed* change newer than
          our snapshot -> first-updater-wins serialization failure.
        """
        from .errors import SerializationError

        txn = session.txn
        txn_id = txn.id if txn is not None else 0
        chain = table.version_chain(version.row_id)
        other = uncommitted_writer(chain, txn_id)
        if other is not None:
            raise LockConflict(
                f"row:{database_name}.{table.name}:{version.row_id}",
                other, should_die=txn_id > other)
        if txn is not None and txn.uses_transaction_snapshot:
            newest = latest_committed_change(chain)
            if newest > txn.snapshot.timestamp:
                raise SerializationError(
                    f"could not serialize update of row {version.row_id} in "
                    f"{database_name}.{table.name}: concurrent committed "
                    f"update (first-updater-wins)")

    # ------------------------------------------------------------------
    # triggers
    # ------------------------------------------------------------------

    def _fire_triggers(self, session, database_name: str, table: Table,
                       event: str, timing: str,
                       old: Optional[Dict], new: Optional[Dict]) -> None:
        if table.temporary or database_name == "#temp":
            return
        database = self.engine.database(database_name)
        triggers = database.triggers_for(table.name, timing, event,
                                         session.user_name)
        if not triggers:
            return
        if self._trigger_depth >= _MAX_TRIGGER_DEPTH:
            raise SQLError("trigger recursion depth exceeded")
        self._trigger_depth += 1
        try:
            for trigger in triggers:
                trigger_event = TriggerEvent(event, table.name, old, new,
                                             session.user_name)
                if trigger.callback is not None:
                    trigger.callback(trigger_event, session)
                if trigger.body:
                    variables = {}
                    for prefix, image in (("old_", old), ("new_", new)):
                        for key, value in (image or {}).items():
                            variables[prefix + key] = value
                    for body_statement in trigger.body:
                        self.execute(session, body_statement,
                                     variables=variables)
        finally:
            self._trigger_depth -= 1

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def _execute_create_table(self, session, statement) -> Result:
        self._check_write_allowed()
        columns = [
            Column(
                c.name,
                ColumnType.from_name(c.type_name),
                nullable=c.nullable,
                primary_key=c.primary_key,
                unique=c.unique,
                auto_increment=c.auto_increment,
                default=c.default,
            )
            for c in statement.columns
        ]
        if statement.temporary:
            return self._create_temp_table(session, statement, columns)
        database_name, database = self._resolve_database(session, statement.table)
        table = Table(statement.table.name, columns)
        database.create_table(table, if_not_exists=statement.if_not_exists)
        return Result()

    def _create_temp_table(self, session, statement, columns) -> Result:
        dialect = self.engine.dialect
        if session.txn is not None and session.txn.explicit \
                and not dialect.temp_tables_in_transaction:
            raise UnsupportedFeatureError(
                f"dialect {dialect.name!r} does not allow temporary tables "
                "inside transactions")
        table = Table(statement.table.name, columns, temporary=True)
        session.temp_space.create(table, if_not_exists=statement.if_not_exists)
        if session.txn is not None:
            session.txn.temp_tables_created.append(statement.table.name.lower())
        return Result()

    def _execute_create_database(self, session, statement) -> Result:
        self.engine.create_database(statement.name,
                                    if_not_exists=statement.if_not_exists)
        return Result()

    def _execute_create_schema(self, session, statement) -> Result:
        if not self.engine.dialect.supports_schemas:
            raise UnsupportedFeatureError(
                f"dialect {self.engine.dialect.name!r} has no schema support")
        database = self.engine.database(session.current_database_name())
        database.create_schema(statement.name,
                               if_not_exists=statement.if_not_exists)
        return Result()

    def _execute_create_index(self, session, statement) -> Result:
        database_name, table = self._resolve_table(session, statement.table)
        key_columns = [c.lower() for c in statement.columns]
        if statement.unique:
            # Reject if existing committed data already violates uniqueness.
            snapshot = self.engine.clock.snapshot()
            seen = set()
            for version in visible_rows(table, snapshot, None):
                key = tuple(version.values.get(c) for c in key_columns)
                if key in seen and not any(v is None for v in key):
                    raise IntegrityError(
                        f"cannot create unique index {statement.name!r}: "
                        f"duplicate key {key}")
                seen.add(key)
        table.create_index(statement.name, key_columns, statement.unique)
        return Result()

    def _execute_create_sequence(self, session, statement) -> Result:
        if not self.engine.dialect.supports_sequences:
            raise UnsupportedFeatureError(
                f"dialect {self.engine.dialect.name!r} has no sequences")
        database_name, database = self._resolve_database(session, statement.name)
        database.create_sequence(Sequence(
            statement.name.name, statement.start, statement.increment))
        return Result()

    def _execute_create_trigger(self, session, statement) -> Result:
        database_name, database = self._resolve_database(session, statement.table)
        trigger = Trigger(
            statement.name, statement.timing, statement.event,
            statement.table.name, body=statement.body,
            owner=session.user_name)
        database.create_trigger(trigger)
        return Result()

    def _execute_create_procedure(self, session, statement) -> Result:
        database_name, database = self._resolve_database(session, statement.name)
        database.create_procedure(Procedure(
            statement.name.name, statement.params, statement.body,
            owner=session.user_name))
        return Result()

    def _execute_drop(self, session, statement) -> Result:
        kind = statement.kind
        name = statement.name
        if kind == "TABLE":
            if name.database is None and session.temp_space.get(name.name):
                session.temp_space.drop(name.name)
                return Result()
            database_name, database = self._resolve_database(session, name)
            database.drop_table(name.name, if_exists=statement.if_exists)
            return Result()
        if kind == "DATABASE":
            self.engine.drop_database(name.name, if_exists=statement.if_exists)
            return Result()
        if kind == "SCHEMA":
            database = self.engine.database(session.current_database_name())
            database.drop_schema(name.name, if_exists=statement.if_exists)
            return Result()
        if kind == "SEQUENCE":
            database_name, database = self._resolve_database(session, name)
            database.drop_sequence(name.name, if_exists=statement.if_exists)
            return Result()
        if kind == "TRIGGER":
            database_name, database = self._resolve_database(session, name)
            database.drop_trigger(name.name, if_exists=statement.if_exists)
            return Result()
        if kind == "PROCEDURE":
            database_name, database = self._resolve_database(session, name)
            database.drop_procedure(name.name, if_exists=statement.if_exists)
            return Result()
        if kind == "USER":
            self.engine.users.drop_user(name.name)
            return Result()
        if kind == "INDEX":
            # find the index in the current database's tables; constraint
            # indexes (primary key / UNIQUE column) are not droppable
            database = self.engine.database(session.current_database_name())
            for table in database.tables.values():
                if table.drop_index(name.name):
                    return Result()
            if statement.if_exists:
                return Result()
            raise NameError_(f"no index {name.name!r}")
        raise TypeError_(f"unsupported DROP {kind}")

    def _execute_alter(self, session, statement) -> Result:
        database_name, table = self._resolve_table(session, statement.table)
        if statement.action == "ADD_COLUMN":
            c = statement.column
            table.add_column(Column(
                c.name, ColumnType.from_name(c.type_name),
                nullable=True, unique=c.unique,
                auto_increment=c.auto_increment, default=c.default))
            return Result()
        if statement.action == "RENAME":
            database = self.engine.database(
                statement.table.database or session.current_database_name())
            old_key = statement.table.name.lower()
            new_key = statement.new_name.lower()
            if new_key in database.tables:
                raise IntegrityError(
                    f"table {statement.new_name!r} already exists")
            database.tables[new_key] = database.tables.pop(old_key)
            database.tables[new_key].name = statement.new_name
            return Result()
        raise TypeError_(f"unsupported ALTER action {statement.action}")

    # ------------------------------------------------------------------
    # SET / GRANT / CALL / LOCK
    # ------------------------------------------------------------------

    def _execute_set(self, session, statement, params) -> Result:
        if statement.name == "isolation_level":
            session.default_isolation = statement.value
            if session.txn is not None and session.txn.is_active \
                    and session.txn.writeset.is_empty():
                session.txn.isolation = session.normalize_isolation(
                    statement.value)
            return Result()
        ctx = EvalContext(self, session, params=params)
        value = statement.value
        if isinstance(value, ast.Expression):
            value = evaluate(value, ctx)
        session.variables[statement.name] = value
        return Result()

    def _execute_grant(self, session, statement) -> Result:
        user = self.engine.users.get(statement.user)
        object_name = self._privilege_object(session, statement.object_name)
        user.grant(statement.privileges, object_name)
        return Result()

    def _execute_revoke(self, session, statement) -> Result:
        user = self.engine.users.get(statement.user)
        object_name = self._privilege_object(session, statement.object_name)
        user.revoke(statement.privileges, object_name)
        return Result()

    def _privilege_object(self, session, name: ast.QualifiedName) -> str:
        if name.database is not None:
            return f"{name.database}.{name.name}"
        if name.name == "*":
            return "*.*"
        return f"{session.current_database_name()}.{name.name}"

    def _execute_call(self, session, statement, params, variables) -> Result:
        database_name = (statement.name.database
                         or session.current_database_name())
        database = self.engine.database(database_name)
        procedure = database.procedure(statement.name.name)
        self._check_privilege(session, "EXECUTE", database_name,
                              procedure.name)
        ctx = EvalContext(self, session, params=params,
                          variables=variables or {})
        args = [evaluate(arg, ctx) for arg in statement.args]
        if len(args) != len(procedure.params):
            raise TypeError_(
                f"procedure {procedure.name!r} takes {len(procedure.params)} "
                f"argument(s), got {len(args)}")
        call_variables = dict(zip((p.lower() for p in procedure.params), args))
        last_result = Result()
        total_rowcount = 0
        for body_statement in procedure.body:
            result = self.execute(session, body_statement,
                                  variables=call_variables)
            total_rowcount += result.rowcount
            if result.columns:
                last_result = result
        if last_result.columns:
            return last_result
        return Result(rowcount=total_rowcount)

    def _execute_lock(self, session, statement) -> Result:
        database_name, table = self._resolve_table(session, statement.table)
        txn = session.txn
        if txn is None:
            return Result()
        mode = LockMode.EXCLUSIVE if statement.mode == "EXCLUSIVE" else LockMode.SHARED
        self.engine.locks.acquire(
            txn.id, f"{database_name}.{table.name}".lower(), mode)
        return Result()


def _contains_aggregate(expr) -> bool:
    if isinstance(expr, ast.FunctionCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            return True
        return any(_contains_aggregate(arg) for arg in expr.args)
    if isinstance(expr, ast.BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.Case):
        for condition, result in expr.whens:
            if _contains_aggregate(condition) or _contains_aggregate(result):
                return True
        return expr.default is not None and _contains_aggregate(expr.default)
    if isinstance(expr, (ast.InList,)):
        if _contains_aggregate(expr.expr):
            return True
        return any(_contains_aggregate(i) for i in expr.items or [])
    if isinstance(expr, ast.Between):
        return any(_contains_aggregate(e) for e in (expr.expr, expr.low, expr.high))
    if isinstance(expr, ast.IsNull):
        return _contains_aggregate(expr.expr)
    if isinstance(expr, ast.Like):
        return _contains_aggregate(expr.expr) or _contains_aggregate(expr.pattern)
    return False
