"""Large objects (CLOB/BLOB) with explicit streaming handles.

Section 4.2.2 of the paper describes the two practical hazards of large
objects behind a replication middleware:

* streams left open indefinitely after a client error leak resources, and
* "fake streaming" drivers that buffer the whole object in memory can
  overwhelm the middleware when several objects are streamed at once.

This module gives the engine an object-relational style LOB facility:
objects live in a per-engine :class:`LobStore`, rows store an opaque
:class:`LobHandle` (an OID), and readers obtain a :class:`LobStream` that
must be closed.  The store tracks open streams and peak buffered bytes so
tests and benchmarks can observe both hazards.
"""

from __future__ import annotations

from typing import Dict, Union

from .errors import LobError


class LobHandle:
    """An opaque object identifier stored in a CLOB/BLOB column."""

    __slots__ = ("oid",)

    def __init__(self, oid: int):
        self.oid = oid

    def __repr__(self) -> str:
        return f"LobHandle({self.oid})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LobHandle) and other.oid == self.oid

    def __hash__(self) -> int:
        return hash(("lob", self.oid))


class LobStream:
    """A chunked reader over one large object.

    The stream holds ``chunk_size`` bytes in memory at a time; a *fake
    streaming* driver (``fake_streaming=True`` on the store) instead
    materializes the full object on open, reproducing the memory hazard
    described in the paper.
    """

    def __init__(self, store: "LobStore", oid: int, chunk_size: int = 65536):
        self._store = store
        self._oid = oid
        self._position = 0
        self._chunk_size = chunk_size
        self.closed = False
        if store.fake_streaming:
            # The whole object is buffered up front.
            self._buffer = store.payload(oid)
            store._note_buffered(len(self._buffer))
        else:
            self._buffer = None

    def read(self, size: int = -1) -> Union[str, bytes]:
        if self.closed:
            raise LobError("read from closed LOB stream")
        data = self._buffer if self._buffer is not None else self._store.payload(self._oid)
        if size < 0:
            size = len(data) - self._position
        size = min(size, max(0, self._chunk_size if self._buffer is None else size))
        chunk = data[self._position:self._position + size]
        self._position += len(chunk)
        if self._buffer is None:
            self._store._note_buffered(len(chunk))
        return chunk

    def read_all(self) -> Union[str, bytes]:
        if self.closed:
            raise LobError("read from closed LOB stream")
        data = self._buffer if self._buffer is not None else self._store.payload(self._oid)
        remaining = data[self._position:]
        self._position = len(data)
        self._store._note_buffered(len(remaining))
        return remaining

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._buffer = None
            self._store._stream_closed(self)

    def __enter__(self) -> "LobStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LobStore:
    """Per-engine storage for large objects.

    Attributes:
        fake_streaming: emulate drivers whose streaming API buffers the
            whole object in memory (section 4.2.2).
        open_streams: number of currently open streams; a growing number
            indicates leaked streams.
        peak_buffered_bytes: high-water mark of bytes buffered at once.
    """

    def __init__(self, fake_streaming: bool = False):
        self.fake_streaming = fake_streaming
        self._payloads: Dict[int, Union[str, bytes]] = {}
        self._next_oid = 1
        self._open: Dict[int, LobStream] = {}
        self._buffered_now = 0
        self.peak_buffered_bytes = 0
        self.total_streams_opened = 0

    @property
    def open_streams(self) -> int:
        return len(self._open)

    def create(self, payload: Union[str, bytes]) -> LobHandle:
        """Store ``payload`` and return a handle for column storage."""
        oid = self._next_oid
        self._next_oid += 1
        self._payloads[oid] = payload
        return LobHandle(oid)

    def payload(self, oid: int) -> Union[str, bytes]:
        if oid not in self._payloads:
            raise LobError(f"no large object with oid {oid}")
        return self._payloads[oid]

    def size(self, handle: LobHandle) -> int:
        return len(self.payload(handle.oid))

    def open(self, handle: LobHandle, chunk_size: int = 65536) -> LobStream:
        """Open a stream; callers must :meth:`LobStream.close` it."""
        stream = LobStream(self, handle.oid, chunk_size=chunk_size)
        self._open[id(stream)] = stream
        self.total_streams_opened += 1
        return stream

    def delete(self, handle: LobHandle) -> None:
        self._payloads.pop(handle.oid, None)

    def close_leaked_streams(self) -> int:
        """Force-close every open stream (middleware resource-tracking duty,
        section 4.2.2).  Returns how many streams were leaked."""
        leaked = list(self._open.values())
        for stream in leaked:
            stream.close()
        return len(leaked)

    # -- internal bookkeeping -------------------------------------------

    def _note_buffered(self, nbytes: int) -> None:
        self._buffered_now += nbytes
        self.peak_buffered_bytes = max(self.peak_buffered_bytes, self._buffered_now)

    def _stream_closed(self, stream: LobStream) -> None:
        self._open.pop(id(stream), None)
        # A closed stream releases whatever it had buffered.  We approximate
        # by resetting the running counter when nothing is open.
        if not self._open:
            self._buffered_now = 0
