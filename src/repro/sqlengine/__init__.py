"""``repro.sqlengine`` — the in-memory multi-database SQL engine substrate.

This package stands in for the commercial/open-source RDBMS engines of the
paper (PostgreSQL, MySQL, Sybase, Oracle...).  It implements MVCC with
snapshot isolation, two-phase-locking serializability, triggers, stored
procedures, sequences, temporary tables, access control, large objects, a
binlog and dump/restore — with per-dialect quirks that reproduce the gaps
catalogued in section 4 of the paper.
"""

from .auth import User, UserStore
from .backup import BackupOptions, EngineDump, dump_engine, restore_engine
from .binlog import Binlog, BinlogRecord
from .catalog import Database
from .dialects import Dialect, by_name, generic, mysql, oracle, postgresql, sybase
from .engine import Connection, Engine
from .errors import (
    AccessDeniedError, ConnectionError_, DeadlockError, DiskFullError,
    DuplicateObjectError, IntegrityError, LobError, NameError_, ParseError,
    SerializationError, SQLError, TransactionAbortedError, TypeError_,
    UnsupportedFeatureError,
)
from .executor import Result
from .information_schema import (
    DATABASE_NAME as INFORMATION_SCHEMA, build_view, view_names,
)
from .lobs import LobHandle, LobStore, LobStream
from .locks import LockConflict, LockManager, LockMode
from .mvcc import (
    READ_COMMITTED, READ_UNCOMMITTED, REPEATABLE_READ, SERIALIZABLE,
    SNAPSHOT, Snapshot,
)
from .parser import parse, parse_script
from .planner import AccessPlan, plan_table_access
from .procedures import Procedure, ProcedureAnalysis, analyze_procedure
from .sequences import Sequence
from .storage import IndexDef, Table
from .transactions import Transaction, TransactionStatus, Writeset, WritesetEntry
from .triggers import Trigger, TriggerEvent
from .types import Column, ColumnType

__all__ = [
    "AccessDeniedError", "AccessPlan", "BackupOptions", "Binlog",
    "BinlogRecord", "Column", "IndexDef", "plan_table_access",
    "ColumnType", "Connection", "ConnectionError_", "Database",
    "DeadlockError", "Dialect", "DiskFullError", "DuplicateObjectError",
    "Engine", "EngineDump", "INFORMATION_SCHEMA", "IntegrityError", "LobError", "LobHandle",
    "LobStore", "LobStream", "LockConflict", "LockManager", "LockMode",
    "NameError_", "ParseError", "Procedure", "ProcedureAnalysis",
    "READ_COMMITTED", "READ_UNCOMMITTED", "REPEATABLE_READ", "Result",
    "SERIALIZABLE", "SNAPSHOT", "SQLError", "SerializationError", "Sequence",
    "Snapshot", "Table", "Transaction", "TransactionAbortedError",
    "TransactionStatus", "Trigger", "TriggerEvent", "TypeError_",
    "UnsupportedFeatureError", "User", "UserStore", "Writeset", "build_view", "view_names",
    "WritesetEntry", "analyze_procedure", "by_name", "dump_engine",
    "generic", "mysql", "oracle", "parse", "parse_script", "postgresql",
    "restore_engine", "sybase",
]
