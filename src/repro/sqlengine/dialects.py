"""Per-engine behavioural quirks ("dialects").

Section 4 of the paper is largely a catalogue of the ways real engines
disagree: error handling (4.1.2), snapshot isolation availability (4.1.2),
schema support (4.1.1), temporary-table scoping and transactional rules
(4.1.4).  A :class:`Dialect` bundles those switches so one engine codebase
can faithfully impersonate a PostgreSQL-like, MySQL-like, Sybase-like or
Oracle-like backend — which is exactly the heterogeneity a middleware
replication layer has to absorb (4.1.3).
"""

from __future__ import annotations

from typing import FrozenSet, Optional


class Dialect:
    """Behaviour switches for one engine personality.

    Attributes:
        name: dialect family name ("postgresql", "mysql", ...).
        version: dotted version string; middleware uses it to detect
            mixed-version clusters during rolling upgrades (section 4.4.3).
        error_aborts_transaction: PostgreSQL aborts the transaction on the
            first failed statement; MySQL keeps it usable (section 4.1.2).
        supports_snapshot_isolation: Oracle/PostgreSQL/SQL Server 2005 yes;
            Sybase/MySQL no (section 4.1.2).
        supports_serializable: whether SERIALIZABLE (2PL) can be requested.
        supports_schemas: MySQL "does not support the notion of schema at
            all" (section 4.1.1).
        supports_sequences: CREATE SEQUENCE availability; MySQL-likes rely
            on AUTO_INCREMENT instead.
        temp_table_scope: "connection" (visible until the connection drops)
            or "transaction" (freed at commit) — section 4.1.4 notes both
            exist in the wild.
        temp_tables_in_transaction: Sybase "does not authorize the use of
            temporary tables within transactions" (section 4.1.4).
        default_isolation: "the default setting in all DBMS is the weaker
            read-committed form" (section 4.1.2) — kept configurable anyway.
        features: free-form feature tags; queries can be marked as needing a
            feature so routing can avoid replicas that lack it (4.1.3).
    """

    __slots__ = (
        "name", "version", "error_aborts_transaction",
        "supports_snapshot_isolation", "supports_serializable",
        "supports_schemas", "supports_sequences", "temp_table_scope",
        "temp_tables_in_transaction", "default_isolation", "features",
    )

    def __init__(
        self,
        name: str,
        version: str = "1.0",
        error_aborts_transaction: bool = True,
        supports_snapshot_isolation: bool = True,
        supports_serializable: bool = True,
        supports_schemas: bool = True,
        supports_sequences: bool = True,
        temp_table_scope: str = "connection",
        temp_tables_in_transaction: bool = True,
        default_isolation: str = "READ COMMITTED",
        features: Optional[FrozenSet[str]] = None,
    ):
        self.name = name
        self.version = version
        self.error_aborts_transaction = error_aborts_transaction
        self.supports_snapshot_isolation = supports_snapshot_isolation
        self.supports_serializable = supports_serializable
        self.supports_schemas = supports_schemas
        self.supports_sequences = supports_sequences
        self.temp_table_scope = temp_table_scope
        self.temp_tables_in_transaction = temp_tables_in_transaction
        self.default_isolation = default_isolation
        self.features = features or frozenset()

    def with_version(self, version: str,
                     extra_features: Optional[FrozenSet[str]] = None) -> "Dialect":
        """A copy at a different version (rolling-upgrade scenarios)."""
        return Dialect(
            self.name,
            version=version,
            error_aborts_transaction=self.error_aborts_transaction,
            supports_snapshot_isolation=self.supports_snapshot_isolation,
            supports_serializable=self.supports_serializable,
            supports_schemas=self.supports_schemas,
            supports_sequences=self.supports_sequences,
            temp_table_scope=self.temp_table_scope,
            temp_tables_in_transaction=self.temp_tables_in_transaction,
            default_isolation=self.default_isolation,
            features=self.features | (extra_features or frozenset()),
        )

    def __repr__(self) -> str:
        return f"Dialect({self.name!r}, version={self.version!r})"


def postgresql(version: str = "8.2") -> Dialect:
    """PostgreSQL-like: SI available, errors poison the transaction."""
    return Dialect(
        "postgresql", version=version,
        error_aborts_transaction=True,
        supports_snapshot_isolation=True,
        supports_schemas=True,
        supports_sequences=True,
        temp_table_scope="connection",
    )


def mysql(version: str = "5.0") -> Dialect:
    """MySQL-like: no SI, no schemas, errors leave the transaction open."""
    return Dialect(
        "mysql", version=version,
        error_aborts_transaction=False,
        supports_snapshot_isolation=False,
        supports_schemas=False,
        supports_sequences=False,
        temp_table_scope="connection",
    )


def sybase(version: str = "15.0") -> Dialect:
    """Sybase-like: no SI; temp tables forbidden inside transactions."""
    return Dialect(
        "sybase", version=version,
        error_aborts_transaction=False,
        supports_snapshot_isolation=False,
        supports_schemas=True,
        supports_sequences=False,
        temp_tables_in_transaction=False,
        temp_table_scope="connection",
    )


def oracle(version: str = "10g") -> Dialect:
    """Oracle-like: strongest isolation support, transaction-scoped temps."""
    return Dialect(
        "oracle", version=version,
        error_aborts_transaction=False,
        supports_snapshot_isolation=True,
        supports_schemas=True,
        supports_sequences=True,
        temp_table_scope="transaction",
    )


def generic(version: str = "1.0") -> Dialect:
    """A permissive dialect for tests that don't exercise quirks."""
    return Dialect("generic", version=version)


DIALECTS = {
    "postgresql": postgresql,
    "mysql": mysql,
    "sybase": sybase,
    "oracle": oracle,
    "generic": generic,
}


def by_name(name: str, version: Optional[str] = None) -> Dialect:
    factory = DIALECTS.get(name.lower())
    if factory is None:
        raise ValueError(f"unknown dialect {name!r}")
    return factory(version) if version else factory()
