"""The engine's transaction log (binlog).

Committed transactions are appended in commit order, carrying both the
*statements* the transaction executed and the *writeset* it produced.
Master/slave log shipping (Figure 1 of the paper), the Sequoia-style
recovery log and the hot-standby apply stream are all built on this.

The log intentionally does **not** capture sequence counters or
auto-increment state (section 4.2.3: sequences "are not persisted in the
transactional log") — replaying a binlog onto a fresh engine can therefore
produce duplicate sequence numbers unless the restore path compensates.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple


class BinlogRecord:
    """One committed transaction."""

    __slots__ = ("sequence", "commit_ts", "txn_id", "user", "database",
                 "statements", "writeset", "tables_written")

    def __init__(self, sequence: int, commit_ts: int, txn_id: int, user: str,
                 database: Optional[str],
                 statements: List[Tuple[str, list]],
                 writeset: List[Dict[str, Any]],
                 tables_written: List[Tuple[str, str]]):
        self.sequence = sequence
        self.commit_ts = commit_ts
        self.txn_id = txn_id
        self.user = user
        self.database = database
        self.statements = statements
        self.writeset = writeset
        self.tables_written = tables_written

    def __repr__(self) -> str:
        return (f"BinlogRecord(seq={self.sequence}, commit_ts={self.commit_ts}, "
                f"statements={len(self.statements)}, writeset={len(self.writeset)})")


class Binlog:
    """Append-only commit log with tail subscriptions."""

    def __init__(self, capacity: Optional[int] = None):
        self.records: List[BinlogRecord] = []
        self._sequence = 0
        self._subscribers: List[Callable[[BinlogRecord], None]] = []
        # A bounded log models the section 4.4.2 failure mode "a replica
        # might stop working because its log is full".
        self.capacity = capacity
        self.full = False

    def append(self, commit_ts: int, txn_id: int, user: str,
               database: Optional[str],
               statements: List[Tuple[str, list]],
               writeset: List[Dict[str, Any]],
               tables_written: List[Tuple[str, str]]) -> BinlogRecord:
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.full = True
            from .errors import DiskFullError
            raise DiskFullError("binlog full")
        self._sequence += 1
        record = BinlogRecord(self._sequence, commit_ts, txn_id, user,
                              database, statements, writeset, tables_written)
        self.records.append(record)
        for subscriber in list(self._subscribers):
            subscriber(record)
        return record

    def subscribe(self, callback: Callable[[BinlogRecord], None]) -> Callable[[], None]:
        """Register a tailing callback; returns an unsubscribe function."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._subscribers:
                self._subscribers.remove(callback)
        return unsubscribe

    def since(self, sequence: int) -> List[BinlogRecord]:
        """Records with sequence strictly greater than ``sequence``."""
        return [r for r in self.records if r.sequence > sequence]

    @property
    def head_sequence(self) -> int:
        return self._sequence

    def truncate_before(self, sequence: int) -> int:
        """Purge records up to and including ``sequence`` (routine log
        maintenance, section 4.4.4).  Returns how many were purged."""
        kept = [r for r in self.records if r.sequence > sequence]
        purged = len(self.records) - len(kept)
        self.records = kept
        self.full = self.capacity is not None and len(self.records) >= self.capacity
        return purged
