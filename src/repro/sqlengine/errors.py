"""Error hierarchy for the SQL engine.

The paper (section 4.1.2) stresses that *how* a database reacts to request
failures varies between engines: PostgreSQL aborts the whole transaction as
soon as a statement errors, MySQL leaves the transaction open.  The engine
therefore distinguishes error categories precisely so that the dialect layer
can apply the right reaction, and so that the replication middleware can
tell "this statement failed everywhere consistently" apart from "replicas
disagree".
"""

from __future__ import annotations


class SQLError(Exception):
    """Base class for every error raised by the engine.

    Attributes:
        sqlstate: a five-character code loosely modelled on SQLSTATE.
    """

    sqlstate = "HY000"

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class ParseError(SQLError):
    """Malformed SQL text."""

    sqlstate = "42601"


class NameError_(SQLError):
    """Unknown database, table, column, sequence, procedure or user."""

    sqlstate = "42P01"


class DuplicateObjectError(SQLError):
    """CREATE of an object that already exists."""

    sqlstate = "42710"


class TypeError_(SQLError):
    """Value incompatible with a column type or an operator."""

    sqlstate = "42804"


class IntegrityError(SQLError):
    """Constraint violation (primary key / unique / not null)."""

    sqlstate = "23505"


class SerializationError(SQLError):
    """First-committer-wins conflict under snapshot isolation, or a
    serialization failure under one-copy serializability.  Clients are
    expected to retry the transaction."""

    sqlstate = "40001"


class DeadlockError(SQLError):
    """Lock-manager deadlock; the victim transaction is aborted."""

    sqlstate = "40P01"


class TransactionAbortedError(SQLError):
    """Raised by PostgreSQL-style dialects when a statement is issued in a
    transaction that already failed (section 4.1.2 of the paper)."""

    sqlstate = "25P02"


class AccessDeniedError(SQLError):
    """Authentication failure or missing privilege."""

    sqlstate = "42501"


class UnsupportedFeatureError(SQLError):
    """Statement is valid SQL but the dialect does not support the feature
    (e.g. snapshot isolation on a MySQL-like engine, temp tables inside a
    transaction on a Sybase-like engine)."""

    sqlstate = "0A000"


class DiskFullError(SQLError):
    """The simulated node ran out of log or data space (section 4.4.2:
    'a replica might stop working because its log is full')."""

    sqlstate = "53100"


class ConnectionError_(SQLError):
    """The (simulated) connection to the engine is broken."""

    sqlstate = "08006"


class LobError(SQLError):
    """Invalid large-object handle or a stream that was left open/closed
    incorrectly (section 4.2.2)."""

    sqlstate = "0F001"
