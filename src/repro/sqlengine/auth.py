"""Users, authentication and per-object privileges.

Paper section 4.1.5: middleware that intercepts connections "necessarily
tamper[s] with the database authentication mechanisms"; it must capture the
client identity so statements are replayed *as the right user* — each user
may have their own triggers, so the same SQL can do different things for
different users.  Access-control data is also "often considered orthogonal
to database content", so backup tools skip it, which breaks replica
cloning.  The engine therefore keeps users in a separate store that backup
captures only when explicitly asked (see backup.py).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Set

from .errors import AccessDeniedError, DuplicateObjectError, NameError_

ALL_PRIVILEGES = frozenset({"SELECT", "INSERT", "UPDATE", "DELETE", "EXECUTE"})


def _hash_password(password: str) -> str:
    return hashlib.sha256(password.encode("utf-8")).hexdigest()


class User:
    """One database user account."""

    __slots__ = ("name", "password_hash", "superuser", "grants")

    def __init__(self, name: str, password: str = "", superuser: bool = False):
        self.name = name
        self.password_hash = _hash_password(password)
        self.superuser = superuser
        # object name (lowercased "db.table" or "db.*") -> set of privileges
        self.grants: Dict[str, Set[str]] = {}

    def check_password(self, password: str) -> bool:
        return self.password_hash == _hash_password(password)

    def grant(self, privileges: List[str], object_name: str) -> None:
        target = self.grants.setdefault(object_name.lower(), set())
        if "ALL" in privileges:
            target.update(ALL_PRIVILEGES)
        else:
            target.update(privileges)

    def revoke(self, privileges: List[str], object_name: str) -> None:
        target = self.grants.get(object_name.lower())
        if target is None:
            return
        if "ALL" in privileges:
            target.clear()
        else:
            target.difference_update(privileges)

    def has_privilege(self, privilege: str, database: str, table: str) -> bool:
        if self.superuser:
            return True
        for key in (f"{database}.{table}".lower(), f"{database}.*".lower(), "*.*"):
            if privilege in self.grants.get(key, ()):
                return True
        return False

    def clone(self) -> "User":
        user = User(self.name, superuser=self.superuser)
        user.password_hash = self.password_hash
        user.grants = {k: set(v) for k, v in self.grants.items()}
        return user


class UserStore:
    """All accounts of one engine.  A default superuser ``admin`` (empty
    password) always exists so tests and middleware can bootstrap."""

    def __init__(self):
        self._users: Dict[str, User] = {}
        self.add_user("admin", "", superuser=True)

    def add_user(self, name: str, password: str = "",
                 superuser: bool = False) -> User:
        key = name.lower()
        if key in self._users:
            raise DuplicateObjectError(f"user {name!r} already exists")
        user = User(name, password, superuser=superuser)
        self._users[key] = user
        return user

    def drop_user(self, name: str) -> None:
        if name.lower() not in self._users:
            raise NameError_(f"no user {name!r}")
        del self._users[name.lower()]

    def get(self, name: str) -> User:
        user = self._users.get(name.lower())
        if user is None:
            raise NameError_(f"no user {name!r}")
        return user

    def exists(self, name: str) -> bool:
        return name.lower() in self._users

    def authenticate(self, name: str, password: str) -> User:
        user = self._users.get(name.lower())
        if user is None or not user.check_password(password):
            raise AccessDeniedError(f"authentication failed for user {name!r}")
        return user

    def all_users(self) -> List[User]:
        return list(self._users.values())

    def restore_user(self, user: User) -> None:
        """Overwrite/insert an account during a restore that includes
        user-related information."""
        self._users[user.name.lower()] = user
