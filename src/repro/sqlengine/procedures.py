"""Stored procedures.

Paper section 4.2.1: statement replication "can only broadcast calls to
stored procedures, so stored procedure execution must be deterministic, to
prevent cluster divergence", there is "no schema describing the behavior of
a stored procedure, so it is usually impossible to know which tables it
accesses", and broadcasting a call makes every replica execute the embedded
reads too.

The engine stores the parsed body, and — because this reproduction *can*
inspect the AST — also offers :func:`analyze_procedure`, the kind of
static analysis the paper says middleware would need the DBMS to expose.
The default middleware behaviour treats procedures as the opaque black box
real systems face; the analysis is available for the "agenda" experiments.
"""

from __future__ import annotations

from typing import List, Set

from . import ast_nodes as ast
from .functions import NONDETERMINISTIC_FUNCTIONS


class Procedure:
    """One stored procedure definition."""

    __slots__ = ("name", "params", "body", "owner")

    def __init__(self, name: str, params: List[str],
                 body: List[ast.Statement], owner: str = "admin"):
        self.name = name
        self.params = params
        self.body = body
        self.owner = owner

    def __repr__(self) -> str:
        return f"Procedure({self.name!r}({', '.join(self.params)}))"


class ProcedureAnalysis:
    """What a middleware would need to know and normally cannot (4.2.1)."""

    __slots__ = ("reads_tables", "writes_tables", "deterministic", "has_reads")

    def __init__(self, reads_tables: Set[str], writes_tables: Set[str],
                 deterministic: bool):
        self.reads_tables = reads_tables
        self.writes_tables = writes_tables
        self.deterministic = deterministic
        self.has_reads = bool(reads_tables)


def analyze_procedure(procedure: Procedure) -> ProcedureAnalysis:
    """Static analysis of a procedure body: accessed tables and whether any
    expression calls a non-deterministic function."""
    reads: Set[str] = set()
    writes: Set[str] = set()
    nondeterministic = [False]

    def walk_expression(expr) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.FunctionCall):
            if expr.name in NONDETERMINISTIC_FUNCTIONS:
                nondeterministic[0] = True
            for arg in expr.args:
                walk_expression(arg)
        elif isinstance(expr, ast.BinaryOp):
            walk_expression(expr.left)
            walk_expression(expr.right)
        elif isinstance(expr, ast.UnaryOp):
            walk_expression(expr.operand)
        elif isinstance(expr, ast.InList):
            walk_expression(expr.expr)
            for item in expr.items or []:
                walk_expression(item)
            if expr.subquery is not None:
                walk_select(expr.subquery)
        elif isinstance(expr, ast.Between):
            walk_expression(expr.expr)
            walk_expression(expr.low)
            walk_expression(expr.high)
        elif isinstance(expr, ast.Like):
            walk_expression(expr.expr)
            walk_expression(expr.pattern)
        elif isinstance(expr, ast.IsNull):
            walk_expression(expr.expr)
        elif isinstance(expr, ast.Case):
            for condition, result in expr.whens:
                walk_expression(condition)
                walk_expression(result)
            walk_expression(expr.default)
        elif isinstance(expr, (ast.ScalarSubquery, ast.ExistsSubquery)):
            walk_select(expr.select)

    def walk_source(source) -> None:
        if source is None:
            return
        if isinstance(source, ast.TableRef):
            reads.add(str(source.name).lower())
        elif isinstance(source, ast.Join):
            walk_source(source.left)
            walk_source(source.right)
            walk_expression(source.condition)
        elif isinstance(source, ast.SubquerySource):
            walk_select(source.select)

    def walk_select(select: ast.SelectStatement) -> None:
        for expr, _alias in select.columns:
            walk_expression(expr)
        walk_source(select.source)
        walk_expression(select.where)
        for expr in select.group_by:
            walk_expression(expr)
        walk_expression(select.having)
        for expr, _asc in select.order_by:
            walk_expression(expr)

    def walk_statement(statement: ast.Statement) -> None:
        if isinstance(statement, ast.SelectStatement):
            walk_select(statement)
        elif isinstance(statement, ast.InsertStatement):
            writes.add(str(statement.table).lower())
            for row in statement.rows or []:
                for expr in row:
                    walk_expression(expr)
            if statement.select is not None:
                walk_select(statement.select)
        elif isinstance(statement, ast.UpdateStatement):
            writes.add(str(statement.table).lower())
            for _column, expr in statement.assignments:
                walk_expression(expr)
            walk_expression(statement.where)
        elif isinstance(statement, ast.DeleteStatement):
            writes.add(str(statement.table).lower())
            walk_expression(statement.where)
        elif isinstance(statement, ast.CallStatement):
            # Nested call: conservatively non-deterministic and unknown
            # footprint — exactly the opacity the paper describes.
            nondeterministic[0] = True

    for statement in procedure.body:
        walk_statement(statement)

    return ProcedureAnalysis(reads, writes, deterministic=not nondeterministic[0])
