"""Expression evaluation.

Evaluates parsed expressions against a row context.  SQL three-valued
logic is approximated: comparisons with NULL yield NULL, AND/OR propagate
NULL, and WHERE treats NULL as false.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from . import ast_nodes as ast
from .errors import NameError_, TypeError_
from .functions import call_scalar

# SELECT-level aggregate handling lives in the executor; the evaluator
# refuses aggregates so misuse is caught early.
_AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


class EvalContext:
    """Everything an expression might need.

    ``bindings`` maps a table binding name (alias or table name, lowercase)
    to the current row dict (column name lowercase -> value).  ``parent``
    chains to an outer query's context for correlated subqueries.
    ``variables`` holds stored-procedure parameters.
    """

    __slots__ = ("executor", "session", "bindings", "params", "variables",
                 "parent")

    def __init__(self, executor, session, bindings: Optional[Dict[str, Dict]] = None,
                 params: Optional[List[Any]] = None,
                 variables: Optional[Dict[str, Any]] = None,
                 parent: Optional["EvalContext"] = None):
        self.executor = executor
        self.session = session
        self.bindings = bindings or {}
        self.params = params or []
        self.variables = variables or {}
        self.parent = parent

    def child(self, bindings: Dict[str, Dict]) -> "EvalContext":
        return EvalContext(self.executor, self.session, bindings,
                           self.params, self.variables, parent=self)

    def with_bindings(self, bindings: Dict[str, Dict]) -> "EvalContext":
        return EvalContext(self.executor, self.session, bindings,
                           self.params, self.variables, parent=self.parent)


def evaluate(expr: ast.Expression, ctx: EvalContext) -> Any:
    """Evaluate ``expr`` in ``ctx`` and return a plain Python value.

    Dispatch is one dict lookup on the node's concrete class instead of
    an isinstance chain — ``evaluate`` runs once per row per predicate,
    so it is the innermost loop of every scan (ROADMAP item 4).
    Subclassed nodes (or compat mode, see :func:`use_compat_dispatch`)
    fall back to the chain.
    """
    handler = _active_dispatch.get(expr.__class__)
    if handler is not None:
        return handler(expr, ctx)
    return _evaluate_compat(expr, ctx)


def _evaluate_compat(expr: ast.Expression, ctx: EvalContext) -> Any:
    """The historical isinstance-chain evaluator.  Kept both as the
    fallback for Expression subclasses and as the "BENCH_e23-era"
    reference arm E28 measures the dispatch rework against."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Param):
        return _eval_param(expr, ctx)
    if isinstance(expr, ast.ColumnRef):
        return _resolve_column(expr, ctx)
    if isinstance(expr, ast.BinaryOp):
        return _eval_binary(expr, ctx)
    if isinstance(expr, ast.UnaryOp):
        return _eval_unary(expr, ctx)
    if isinstance(expr, ast.FunctionCall):
        return _eval_function(expr, ctx)
    if isinstance(expr, ast.InList):
        return _eval_in(expr, ctx)
    if isinstance(expr, ast.Between):
        return _eval_between(expr, ctx)
    if isinstance(expr, ast.Like):
        return _eval_like(expr, ctx)
    if isinstance(expr, ast.IsNull):
        return _eval_isnull(expr, ctx)
    if isinstance(expr, ast.Case):
        return _eval_case(expr, ctx)
    if isinstance(expr, ast.ScalarSubquery):
        return _eval_scalar_subquery(expr, ctx)
    if isinstance(expr, ast.ExistsSubquery):
        return _eval_exists(expr, ctx)
    if isinstance(expr, ast.Star):
        raise TypeError_("'*' is only valid in a select list or COUNT(*)")
    raise TypeError_(f"cannot evaluate expression {expr!r}")


def _eval_literal(expr: ast.Literal, ctx: EvalContext) -> Any:
    return expr.value


def _eval_param(expr: ast.Param, ctx: EvalContext) -> Any:
    if expr.index >= len(ctx.params):
        raise TypeError_(
            f"statement has parameter ${expr.index + 1} but only "
            f"{len(ctx.params)} value(s) were bound")
    return ctx.params[expr.index]


def _eval_isnull(expr: ast.IsNull, ctx: EvalContext) -> Any:
    value = evaluate(expr.expr, ctx)
    return (value is not None) if expr.negated else (value is None)


def _eval_case(expr: ast.Case, ctx: EvalContext) -> Any:
    for condition, result in expr.whens:
        if is_true(evaluate(condition, ctx)):
            return evaluate(result, ctx)
    return evaluate(expr.default, ctx) if expr.default is not None else None


def _eval_scalar_subquery(expr: ast.ScalarSubquery, ctx: EvalContext) -> Any:
    return ctx.executor.scalar_subquery(expr.select, ctx)


def _eval_exists(expr: ast.ExistsSubquery, ctx: EvalContext) -> Any:
    exists = ctx.executor.exists_subquery(expr.select, ctx)
    return not exists if expr.negated else exists


def _eval_star(expr: ast.Star, ctx: EvalContext) -> Any:
    raise TypeError_("'*' is only valid in a select list or COUNT(*)")


def _build_dispatch() -> Dict[type, Any]:
    return {
        ast.Literal: _eval_literal,
        ast.Param: _eval_param,
        ast.ColumnRef: _resolve_column,
        ast.BinaryOp: _eval_binary,
        ast.UnaryOp: _eval_unary,
        ast.FunctionCall: _eval_function,
        ast.InList: _eval_in,
        ast.Between: _eval_between,
        ast.Like: _eval_like,
        ast.IsNull: _eval_isnull,
        ast.Case: _eval_case,
        ast.ScalarSubquery: _eval_scalar_subquery,
        ast.ExistsSubquery: _eval_exists,
        ast.Star: _eval_star,
    }


_DISPATCH: Dict[type, Any] = {}  # populated below, after handlers exist
_active_dispatch: Dict[type, Any] = _DISPATCH


def use_compat_dispatch(enabled: bool) -> None:
    """Route every ``evaluate`` through the isinstance-chain reference
    implementation (True) or the type-dispatch table (False).  E28 uses
    this to measure the same run both ways; semantics are identical."""
    global _active_dispatch
    _active_dispatch = {} if enabled else _DISPATCH


def compat_dispatch_enabled() -> bool:
    return _active_dispatch is not _DISPATCH


def is_true(value: Any) -> bool:
    """WHERE-clause truth: NULL and false are both rejected."""
    return value is not None and bool(value)


_MISSING = object()


def _resolve_column(expr: ast.ColumnRef, ctx: EvalContext) -> Any:
    # expr.name_lower / expr.table_lower are precomputed at parse time;
    # the single-binding unqualified case (every single-table WHERE) runs
    # with no allocation and no string work.
    name = expr.name_lower
    table = expr.table_lower
    context: Optional[EvalContext] = ctx
    while context is not None:
        bindings = context.bindings
        if table is not None:
            row = bindings.get(table)
            if row is not None and name in row:
                return row[name]
        elif len(bindings) == 1:
            for row in bindings.values():
                value = row.get(name, _MISSING)
                if value is not _MISSING:
                    return value
            if name in context.variables:
                return context.variables[name]
        else:
            matches = [row for row in bindings.values() if name in row]
            if len(matches) > 1:
                raise NameError_(f"ambiguous column reference {expr.name!r}")
            if matches:
                return matches[0][name]
            if name in context.variables:
                return context.variables[name]
        context = context.parent
    # Unqualified names also serve as procedure variables at top level.
    if table is None and name in ctx.variables:
        return ctx.variables[name]
    qualifier = f"{expr.table}." if expr.table else ""
    raise NameError_(f"unknown column {qualifier}{expr.name}")


def _eval_binary(expr: ast.BinaryOp, ctx: EvalContext) -> Any:
    op = expr.op
    if op == "AND":
        left = evaluate(expr.left, ctx)
        if left is not None and not left:
            return False
        right = evaluate(expr.right, ctx)
        if right is not None and not right:
            return False
        if left is None or right is None:
            return None
        return True
    if op == "OR":
        left = evaluate(expr.left, ctx)
        if left is not None and left:
            return True
        right = evaluate(expr.right, ctx)
        if right is not None and right:
            return True
        if left is None or right is None:
            return None
        return False

    left = evaluate(expr.left, ctx)
    right = evaluate(expr.right, ctx)
    if op == "||":
        if left is None or right is None:
            return None
        return str(left) + str(right)
    if left is None or right is None:
        return None
    func = _BINOP_FUNCS.get(op)
    if func is None:
        raise TypeError_(f"unknown operator {op}")
    try:
        return func(left, right)
    except TypeError as exc:
        raise TypeError_(f"operator {op} not supported between "
                         f"{type(left).__name__} and {type(right).__name__}") from exc


def _sql_equal(left: Any, right: Any) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        return bool(left) == bool(right)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    if type(left) is not type(right):
        # Permissive string/number comparison mirrors the loose typing of
        # MySQL-family engines.
        if isinstance(left, str) and isinstance(right, (int, float)):
            try:
                return float(left) == float(right)
            except ValueError:
                return False
        if isinstance(right, str) and isinstance(left, (int, float)):
            try:
                return float(right) == float(left)
            except ValueError:
                return False
    return left == right


def _coerce_pair(left: Any, right: Any, op: str) -> bool:
    if isinstance(left, str) and isinstance(right, (int, float)) and not isinstance(right, bool):
        try:
            left = float(left)
        except ValueError:
            raise TypeError_(f"cannot compare {left!r} with a number")
    if isinstance(right, str) and isinstance(left, (int, float)) and not isinstance(left, bool):
        try:
            right = float(right)
        except ValueError:
            raise TypeError_(f"cannot compare {right!r} with a number")
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _op_div(left: Any, right: Any) -> Any:
    if right == 0:
        return None
    if isinstance(left, int) and isinstance(right, int) and left % right == 0:
        return left // right
    return left / right


def _op_mod(left: Any, right: Any) -> Any:
    if right == 0:
        return None
    return left % right


# One dict lookup per comparison/arithmetic op instead of a string-compare
# chain; AND/OR/|| stay inline in _eval_binary for their short-circuit and
# NULL handling.
_BINOP_FUNCS = {
    "=": _sql_equal,
    "<>": lambda left, right: not _sql_equal(left, right),
    "<": lambda left, right: _coerce_pair(left, right, "<"),
    "<=": lambda left, right: _coerce_pair(left, right, "<="),
    ">": lambda left, right: _coerce_pair(left, right, ">"),
    ">=": lambda left, right: _coerce_pair(left, right, ">="),
    "+": lambda left, right: left + right,
    "-": lambda left, right: left - right,
    "*": lambda left, right: left * right,
    "/": _op_div,
    "%": _op_mod,
}


def _eval_unary(expr: ast.UnaryOp, ctx: EvalContext) -> Any:
    value = evaluate(expr.operand, ctx)
    if expr.op == "NOT":
        if value is None:
            return None
        return not value
    if expr.op == "-":
        if value is None:
            return None
        return -value
    raise TypeError_(f"unknown unary operator {expr.op}")


def _eval_function(expr: ast.FunctionCall, ctx: EvalContext) -> Any:
    if expr.name in _AGGREGATES:
        raise TypeError_(
            f"aggregate {expr.name}() is not allowed in this context")
    if expr.name in ("NEXTVAL", "CURRVAL", "SETVAL"):
        return ctx.executor.sequence_function(expr, ctx)
    args = [evaluate(arg, ctx) for arg in expr.args]
    return call_scalar(ctx.session.engine.functions, expr.name, args,
                       session_user=ctx.session.user_name)


def _eval_in(expr: ast.InList, ctx: EvalContext) -> Any:
    value = evaluate(expr.expr, ctx)
    if value is None:
        return None
    if expr.subquery is not None:
        candidates = ctx.executor.column_subquery(expr.subquery, ctx)
    else:
        candidates = [evaluate(item, ctx) for item in expr.items]
    found = any(candidate is not None and _sql_equal(value, candidate)
                for candidate in candidates)
    if not found and any(candidate is None for candidate in candidates):
        return None
    return not found if expr.negated else found


def _eval_between(expr: ast.Between, ctx: EvalContext) -> Any:
    value = evaluate(expr.expr, ctx)
    low = evaluate(expr.low, ctx)
    high = evaluate(expr.high, ctx)
    if value is None or low is None or high is None:
        return None
    result = _coerce_pair(low, value, "<=") and _coerce_pair(value, high, "<=")
    return not result if expr.negated else result


def _eval_like(expr: ast.Like, ctx: EvalContext) -> Any:
    value = evaluate(expr.expr, ctx)
    pattern = evaluate(expr.pattern, ctx)
    if value is None or pattern is None:
        return None
    regex = _like_to_regex(str(pattern))
    result = regex.match(str(value)) is not None
    return not result if expr.negated else result


_LIKE_CACHE: Dict[str, "re.Pattern"] = {}


def _like_to_regex(pattern: str) -> "re.Pattern":
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for char in pattern:
            if char == "%":
                parts.append(".*")
            elif char == "_":
                parts.append(".")
            else:
                parts.append(re.escape(char))
        compiled = re.compile("^" + "".join(parts) + "$", re.DOTALL)
        if len(_LIKE_CACHE) < 1024:
            _LIKE_CACHE[pattern] = compiled
    return compiled


def sort_key(value: Any) -> tuple:
    """A total-order sort key over heterogeneous SQL values (NULLs first)."""
    if value is None:
        return (0, 0, 0)
    if isinstance(value, bool):
        return (1, 0, int(value))
    if isinstance(value, (int, float)):
        return (1, 0, float(value))
    if isinstance(value, str):
        return (1, 1, value)
    if isinstance(value, bytes):
        return (1, 2, value)
    return (1, 3, str(value))


_DISPATCH.update(_build_dispatch())
