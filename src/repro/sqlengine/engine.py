"""The engine: one simulated RDBMS hosting many database instances.

Public entry points:

* :class:`Engine` — create databases, accept connections, expose the
  binlog, crash/recover for fault injection.
* :class:`Connection` — the client session: ``execute(sql, params)`` plus
  explicit ``begin``/``commit``/``rollback``.  Autocommit wraps each
  statement in an implicit transaction.

Dialect quirks (section 4 of the paper) surface here: error handling
poisons PostgreSQL-style transactions, temporary-table scoping follows the
dialect, snapshot isolation is refused by engines that lack it.
"""

from __future__ import annotations

import hashlib
import itertools
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import ast_nodes as ast
from .auth import User, UserStore
from .binlog import Binlog, BinlogRecord
from .catalog import Database
from .dialects import Dialect, generic
from .errors import (
    ConnectionError_, DuplicateObjectError, NameError_, SQLError,
    TransactionAbortedError, UnsupportedFeatureError,
)
from .executor import Executor, Result
from .functions import FunctionEnvironment
from .lobs import LobStore
from .locks import LockConflict, LockManager
from .mvcc import (
    CommitClock, READ_COMMITTED, READ_UNCOMMITTED, REPEATABLE_READ,
    SERIALIZABLE, SNAPSHOT,
)
from .parser import parameterize_literals, parse_script
from .storage import Table
from .transactions import Transaction, TransactionStatus

_VALID_ISOLATION = {
    READ_UNCOMMITTED, READ_COMMITTED, REPEATABLE_READ, SNAPSHOT, SERIALIZABLE,
}

# Statements whose text is captured into the binlog for statement shipping.
_WRITE_STATEMENTS = (
    ast.InsertStatement, ast.UpdateStatement, ast.DeleteStatement,
    ast.CreateTableStatement, ast.CreateIndexStatement,
    ast.CreateSequenceStatement, ast.CreateTriggerStatement,
    ast.CreateProcedureStatement, ast.DropStatement,
    ast.AlterTableStatement, ast.CallStatement,
)


class TempSpace:
    """Per-connection temporary table namespace (section 4.1.4)."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}

    def create(self, table: Table, if_not_exists: bool = False) -> None:
        key = table.name.lower()
        if key in self._tables and not if_not_exists:
            raise DuplicateObjectError(
                f"temporary table {table.name!r} already exists")
        self._tables.setdefault(key, table)

    def get(self, name: str) -> Optional[Table]:
        return self._tables.get(name.lower())

    def drop(self, name: str) -> None:
        self._tables.pop(name.lower(), None)

    def names(self) -> List[str]:
        return list(self._tables.keys())

    def clear(self) -> None:
        self._tables.clear()


class Connection:
    """One client session against one engine."""

    def __init__(self, engine: "Engine", user: User,
                 database: Optional[str] = None):
        self.engine = engine
        self.user = user
        self._database = database
        self.txn: Optional[Transaction] = None
        self.temp_space = TempSpace()
        self.variables: Dict[str, Any] = {}
        self.default_isolation = engine.dialect.default_isolation
        self.last_insert_id: Optional[int] = None
        self.closed = False
        # Raw text of write statements in the current transaction, captured
        # for the binlog / statement replication.
        self._txn_statements: List[Tuple[str, list]] = []
        # Temp tables this session has touched — the middleware reads this
        # to keep the session sticky to one replica (section 4.1.4).
        self.temp_tables_touched: set = set()

    # -- identity / catalog ------------------------------------------------

    @property
    def user_name(self) -> str:
        return self.user.name

    def current_database_name(self) -> str:
        if self._database is None:
            raise NameError_("no database selected (USE <db> first)")
        return self._database

    @property
    def database_or_none(self) -> Optional[str]:
        return self._database

    def use_database(self, name: str) -> None:
        self.engine.database(name)  # validate
        self._database = name

    def note_table_access(self, database: str, table: str,
                          temporary: bool) -> None:
        if temporary:
            self.temp_tables_touched.add(table.lower())

    # -- transaction control ----------------------------------------------

    def normalize_isolation(self, level: Optional[str]) -> str:
        if level is None:
            level = self.default_isolation
        level = level.upper()
        if level not in _VALID_ISOLATION:
            raise UnsupportedFeatureError(f"unknown isolation level {level!r}")
        dialect = self.engine.dialect
        if level in (SNAPSHOT, REPEATABLE_READ) \
                and not dialect.supports_snapshot_isolation:
            raise UnsupportedFeatureError(
                f"dialect {dialect.name!r} does not provide snapshot "
                "isolation (section 4.1.2)")
        if level == SERIALIZABLE and not dialect.supports_serializable:
            raise UnsupportedFeatureError(
                f"dialect {dialect.name!r} does not provide SERIALIZABLE")
        return level

    def begin(self, isolation: Optional[str] = None) -> Transaction:
        self._check_usable()
        if self.txn is not None and self.txn.is_active:
            raise SQLError("transaction already in progress")
        level = self.normalize_isolation(isolation)
        self.txn = self.engine.begin_transaction(self, level, explicit=True)
        self._txn_statements = []
        return self.txn

    def commit(self) -> None:
        self._check_usable()
        txn = self.txn
        if txn is None:
            return  # commit outside a transaction is a no-op
        if txn.status is TransactionStatus.FAILED:
            # A poisoned transaction commits as a rollback.
            self.rollback()
            return
        self.engine.commit(txn, self, self._txn_statements)
        self.txn = None
        self._txn_statements = []
        self._drop_transaction_temp_tables(txn)

    def rollback(self) -> None:
        self._check_usable()
        txn = self.txn
        if txn is None:
            return
        self.engine.rollback(txn, self)
        self.txn = None
        self._txn_statements = []
        self._drop_transaction_temp_tables(txn)

    def _drop_transaction_temp_tables(self, txn: Transaction) -> None:
        if self.engine.dialect.temp_table_scope == "transaction":
            for name in txn.temp_tables_created:
                self.temp_space.drop(name)

    @property
    def in_transaction(self) -> bool:
        return self.txn is not None

    # -- statement execution ----------------------------------------------

    def execute(self, sql: str, params: Optional[List[Any]] = None) -> Result:
        """Parse and execute ``sql`` (one or more ``;``-separated
        statements); returns the result of the last one."""
        self._check_usable()
        engine = self.engine
        statements = None
        if not params and engine.auto_parameterize:
            prepared = engine.prepare_parameterized(sql)
            if prepared is not None:
                statements, params = prepared
        if statements is None:
            statements = engine.parse(sql)
        result = Result()
        for statement in statements:
            result = self._execute_one(statement, sql, params or [])
        return result

    def execute_statement(self, statement: ast.Statement,
                          sql_text: str = "",
                          params: Optional[List[Any]] = None) -> Result:
        """Execute an already-parsed statement (middleware fast path)."""
        self._check_usable()
        return self._execute_one(statement, sql_text, params or [])

    def _execute_one(self, statement: ast.Statement, sql_text: str,
                     params: List[Any]) -> Result:
        if isinstance(statement, ast.BeginStatement):
            self.begin(statement.isolation)
            return Result()
        if isinstance(statement, ast.CommitStatement):
            self.commit()
            return Result()
        if isinstance(statement, ast.RollbackStatement):
            self.rollback()
            return Result()

        implicit = self.txn is None
        if implicit:
            self.txn = self.engine.begin_transaction(
                self, self.normalize_isolation(None), explicit=False)
            self._txn_statements = []
        txn = self.txn

        if txn.status is TransactionStatus.FAILED:
            raise TransactionAbortedError(
                "current transaction is aborted, commands ignored until "
                "end of transaction block (PostgreSQL-style dialect)")

        created_mark = len(txn.created_versions)
        deleted_mark = len(txn.deleted_versions)
        writeset_mark = len(txn.writeset.entries)
        try:
            result = self.engine.executor.execute(self, statement, params)
        except LockConflict:
            # Lock waits do not poison the transaction; the statement had
            # no effect yet (conflicts are detected before mutation).
            self._undo_statement(txn, created_mark, deleted_mark, writeset_mark)
            if implicit:
                self.rollback()
            raise
        except SQLError:
            self._undo_statement(txn, created_mark, deleted_mark, writeset_mark)
            if implicit:
                self.rollback()
            elif self.engine.dialect.error_aborts_transaction:
                txn.mark_failed("statement failed")
            raise
        if isinstance(statement, _WRITE_STATEMENTS):
            self._txn_statements.append((sql_text, list(params)))
        if result.lastrowid is not None:
            self.last_insert_id = result.lastrowid
        if implicit:
            self.commit()
        return result

    def _undo_statement(self, txn: Transaction, created_mark: int,
                        deleted_mark: int, writeset_mark: int) -> None:
        """Statement-level atomicity: roll back this statement's row effects
        (sequence and auto-increment side effects survive — the 4.2.3 gap)."""
        while len(txn.created_versions) > created_mark:
            table, version = txn.created_versions.pop()
            table.remove_version(version)
        while len(txn.deleted_versions) > deleted_mark:
            version = txn.deleted_versions.pop()
            if version.deleted_ts is None:
                version.deleter_txn = None
        del txn.writeset.entries[writeset_mark:]

    def close(self) -> None:
        if self.closed:
            return
        if self.txn is not None and self.txn.status in (
                TransactionStatus.ACTIVE, TransactionStatus.FAILED):
            self.engine.rollback(self.txn, self)
            self.txn = None
        self.temp_space.clear()
        self.closed = True

    def _check_usable(self) -> None:
        if self.closed:
            raise ConnectionError_("connection is closed")
        if self.engine.crashed:
            raise ConnectionError_(
                f"engine {self.engine.name!r} is down")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Engine:
    """One RDBMS instance."""

    def __init__(self, name: str = "engine", dialect: Optional[Dialect] = None,
                 seed: Optional[int] = None,
                 binlog_capacity: Optional[int] = None,
                 parse_cache_capacity: int = 4096):
        self.name = name
        self.dialect = dialect or generic()
        self.databases: Dict[str, Database] = {}
        self.users = UserStore()
        self.locks = LockManager()
        self.clock = CommitClock()
        self.functions = FunctionEnvironment(seed=seed)
        self.lobs = LobStore()
        self.executor = Executor(self)
        self.binlog = Binlog(capacity=binlog_capacity)
        self.enforce_privileges = True
        self.crashed = False
        self.disk_full = False
        self._txn_counter = itertools.count(1)
        self.active_transactions: Dict[int, Transaction] = {}
        self._commit_listeners: List[Callable[[Transaction, BinlogRecord], None]] = []
        # Parsed-statement cache with LRU eviction: long-running sessions
        # with churning SQL text keep their hot statements cached instead
        # of the cache freezing once it fills.
        self._parse_cache: "OrderedDict[str, List[ast.Statement]]" = OrderedDict()
        self._parse_cache_capacity = max(1, parse_cache_capacity)
        # Index-backed access paths can be disabled to measure the
        # sequential-scan baseline (benchmark E23); results are identical.
        self.use_indexes = True
        # Auto-parameterization: rewrite bare integer literals to ``?``
        # before the parse cache, so point statements that differ only in
        # key values share one parsed template (E28 hot path).  Disabled
        # = the BENCH_e23-era parse-per-key behaviour.
        self.auto_parameterize = True
        self._param_fail: set = set()
        # sql text -> (parsed template statements, extracted values):
        # repeated statements (hot Zipf keys) skip the rewrite regex and
        # the template lookup entirely.
        self._param_memo: "OrderedDict[str, tuple]" = OrderedDict()
        # Autovacuum: run :meth:`vacuum` every N commits so update-heavy
        # runs keep version chains bounded (a hot Zipf key otherwise
        # accumulates one dead version per update and every read walks
        # the whole chain).  0 disables.
        self.autovacuum_interval = 512
        self._commits_since_vacuum = 0
        # Engine-observable statistics.
        self.stats = {
            "commits": 0, "rollbacks": 0, "statements": 0,
            "seq_scans": 0, "index_probes": 0, "rows_scanned": 0,
            "parse_cache_hits": 0, "parse_cache_misses": 0,
            "versions_gced": 0,
        }

    # -- catalog --------------------------------------------------------------

    def create_database(self, name: str, if_not_exists: bool = False) -> Database:
        key = name.lower()
        if key in self.databases:
            if if_not_exists:
                return self.databases[key]
            raise DuplicateObjectError(f"database {name!r} already exists")
        database = Database(name)
        self.databases[key] = database
        return database

    def drop_database(self, name: str, if_exists: bool = False) -> None:
        if name.lower() not in self.databases:
            if if_exists:
                return
            raise NameError_(f"no database {name!r}")
        del self.databases[name.lower()]

    def database(self, name: str) -> Database:
        database = self.databases.get(name.lower())
        if database is None:
            raise NameError_(f"no database {name!r} on engine {self.name!r}")
        return database

    def database_names(self) -> List[str]:
        return sorted(self.databases.keys())

    # -- connections ------------------------------------------------------------

    def connect(self, user: str = "admin", password: str = "",
                database: Optional[str] = None) -> Connection:
        if self.crashed:
            raise ConnectionError_(f"engine {self.name!r} is down")
        account = self.users.authenticate(user, password)
        if database is not None:
            self.database(database)  # validate
        return Connection(self, account, database)

    # -- parsing ----------------------------------------------------------------

    def parse(self, sql: str) -> List[ast.Statement]:
        cached = self._parse_cache.get(sql)
        if cached is not None:
            self._parse_cache.move_to_end(sql)
            self.stats["parse_cache_hits"] += 1
        else:
            cached = parse_script(sql)
            self.stats["parse_cache_misses"] += 1
            self._parse_cache[sql] = cached
            while len(self._parse_cache) > self._parse_cache_capacity:
                self._parse_cache.popitem(last=False)
        self.stats["statements"] += len(cached)
        return cached

    def prepare_parameterized(self, sql: str):
        """Auto-parameterize ``sql`` and parse the template through the
        parse cache.  Returns ``(statements, values)`` or ``None`` when
        the statement is not rewritable (the caller then parses the
        original text).  Templates that fail to parse are remembered so
        a pathological shape costs one attempt, not one per key."""
        memo = self._param_memo.get(sql)
        if memo is not None:
            self._param_memo.move_to_end(sql)
            # the memo fronts the parse cache: a hit here is a (cheaper)
            # parse-cache hit and must count as one
            self.stats["parse_cache_hits"] += 1
            return memo
        prepared = parameterize_literals(sql)
        if prepared is None:
            return None
        template, values = prepared
        if template in self._param_fail:
            return None
        try:
            statements = self.parse(template)
        except SQLError:
            if len(self._param_fail) < 1024:
                self._param_fail.add(template)
            return None
        memo = (statements, values)
        self._param_memo[sql] = memo
        while len(self._param_memo) > self._parse_cache_capacity:
            self._param_memo.popitem(last=False)
        return memo

    # -- transactions -------------------------------------------------------------

    def begin_transaction(self, session: Connection, isolation: str,
                          explicit: bool) -> Transaction:
        txn = Transaction(
            next(self._txn_counter), isolation, self.clock.snapshot(),
            session.user_name, explicit=explicit)
        self.active_transactions[txn.id] = txn
        return txn

    def commit(self, txn: Transaction,
               session: Optional[Connection] = None,
               statements: Optional[List[Tuple[str, list]]] = None) -> int:
        """Commit ``txn``: stamp versions, log, release locks.
        Returns the commit timestamp."""
        if txn.status is not TransactionStatus.ACTIVE:
            raise SQLError(f"cannot commit transaction in state {txn.status}")
        ts = self.clock.tick()
        for _table, version in txn.created_versions:
            version.created_ts = ts
        for version in txn.deleted_versions:
            if version.deleter_txn == txn.id:
                version.deleted_ts = ts
        txn.commit_ts = ts
        txn.status = TransactionStatus.COMMITTED
        self.locks.release_all(txn.id)
        self.active_transactions.pop(txn.id, None)
        self.stats["commits"] += 1

        record = None
        if not txn.writeset.is_empty() or statements:
            record = self.binlog.append(
                ts, txn.id, txn.user,
                session.database_or_none if session else None,
                statements or [],
                [entry.to_dict() for entry in txn.writeset],
                sorted(txn.tables_written),
            )
        for listener in list(self._commit_listeners):
            listener(txn, record)
        if self.autovacuum_interval:
            self._commits_since_vacuum += 1
            if self._commits_since_vacuum >= self.autovacuum_interval:
                self._commits_since_vacuum = 0
                self.vacuum()
        return ts

    def rollback(self, txn: Transaction,
                 session: Optional[Connection] = None) -> None:
        if txn.status is TransactionStatus.COMMITTED:
            raise SQLError("cannot roll back a committed transaction")
        for table, version in txn.created_versions:
            table.remove_version(version)
        for version in txn.deleted_versions:
            if version.deleted_ts is None and version.deleter_txn == txn.id:
                version.deleter_txn = None
        txn.status = TransactionStatus.ABORTED
        self.locks.release_all(txn.id)
        self.active_transactions.pop(txn.id, None)
        self.stats["rollbacks"] += 1

    def on_commit(self, listener: Callable[[Transaction, Optional[BinlogRecord]], None]) -> Callable[[], None]:
        """Engine-level replication hook (Figure 5 architecture): called
        after every commit with the transaction and its binlog record."""
        self._commit_listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._commit_listeners:
                self._commit_listeners.remove(listener)
        return unsubscribe

    def vacuum(self) -> int:
        """Garbage-collect row versions no live snapshot can see, keeping
        chains and indexes bounded under churn.  Returns versions removed."""
        horizon = min(
            (txn.snapshot.timestamp
             for txn in self.active_transactions.values()),
            default=self.clock.now)
        removed = 0
        for database in self.databases.values():
            for table in database.tables.values():
                removed += table.gc_versions(horizon)
        self.stats["versions_gced"] += removed
        return removed

    # -- fault injection ---------------------------------------------------------

    def crash(self) -> None:
        """Hard crash: connections break and in-flight transactions are
        lost (rolled back on recovery, like a redo-less restart)."""
        self.crashed = True
        for txn in list(self.active_transactions.values()):
            self.rollback(txn)

    def recover(self) -> None:
        self.crashed = False

    def set_disk_full(self, full: bool = True) -> None:
        self.disk_full = full

    # -- state inspection ---------------------------------------------------------

    def content_signature(self, databases: Optional[List[str]] = None) -> str:
        """A digest of all committed data — equal signatures mean replicas
        converged; used throughout the divergence experiments (E10, E17)."""
        from .mvcc import visible_rows

        snapshot = self.clock.snapshot()
        digest = hashlib.sha256()
        for db_name in sorted(databases or self.databases.keys()):
            database = self.databases.get(db_name.lower())
            if database is None:
                digest.update(f"missing:{db_name}".encode())
                continue
            for table_name in sorted(database.tables.keys()):
                table = database.tables[table_name]
                digest.update(f"{db_name}.{table_name}".encode())
                rows = [
                    tuple(sorted(
                        (k, repr(v)) for k, v in version.values.items()))
                    for version in visible_rows(table, snapshot, None)
                ]
                for row in sorted(rows):
                    digest.update(repr(row).encode())
        return digest.hexdigest()

    def row_count(self, database: str, table: str) -> int:
        from .mvcc import visible_rows
        snapshot = self.clock.snapshot()
        return sum(1 for _ in visible_rows(
            self.database(database).table(table), snapshot, None))

    def __repr__(self) -> str:
        return f"Engine({self.name!r}, dialect={self.dialect.name!r})"
