"""Table-level lock manager with wait-die deadlock avoidance.

The paper (section 4.3.2) observes that middleware-level locking is
"usually at the table level, as table information can be obtained through
simple query parsing", and that finer granularity would mean re-implementing
database logic in the middleware.  The engine's SERIALIZABLE mode uses the
same granularity, which both keeps the implementation honest and lets the
statement-replication middleware mirror the engine's regime exactly.

Because the whole system runs in one OS thread (concurrency is interleaved
by the discrete-event simulator or by test code), a conflicting acquire
cannot block the thread.  Instead it raises :class:`LockConflict` carrying
the owner; callers either retry after the owner finishes (the simulator
does this) or treat it as a deadlock-avoidance abort.  Wait-die ordering
(older transactions may wait, younger ones die) guarantees progress.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set, Tuple

from .errors import DeadlockError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class LockConflict(Exception):
    """Raised when a lock cannot be granted right now.  ``owner_txn`` is
    (one of) the conflicting holder(s); ``should_die`` tells the caller
    whether wait-die policy demands an abort rather than a wait."""

    def __init__(self, resource: str, owner_txn: int, should_die: bool):
        super().__init__(f"lock conflict on {resource} held by txn {owner_txn}")
        self.resource = resource
        self.owner_txn = owner_txn
        self.should_die = should_die


class LockManager:
    """Grants shared/exclusive locks on opaque string resources
    (``"db.table"`` by convention)."""

    def __init__(self):
        # resource -> {txn_id -> LockMode}
        self._held: Dict[str, Dict[int, LockMode]] = {}
        # txn_id -> set of resources (for release_all)
        self._by_txn: Dict[int, Set[str]] = {}

    def acquire(self, txn_id: int, resource: str, mode: LockMode) -> None:
        """Grant the lock or raise :class:`LockConflict` / :class:`DeadlockError`.

        Lock upgrades (S held, X requested) are supported when the requester
        is the only holder.
        """
        holders = self._held.setdefault(resource, {})
        current = holders.get(txn_id)
        if current is LockMode.EXCLUSIVE:
            return
        if current is LockMode.SHARED and mode is LockMode.SHARED:
            return

        conflicting = self._conflicting_holders(holders, txn_id, mode)
        if conflicting:
            owner = min(conflicting)
            # wait-die: an older (smaller id) requester may wait for a
            # younger holder; a younger requester dies immediately.
            should_die = txn_id > owner
            if should_die:
                raise DeadlockError(
                    f"txn {txn_id} aborted by wait-die on {resource} "
                    f"(held by older txn {owner})")
            raise LockConflict(resource, owner, should_die=False)

        holders[txn_id] = mode
        self._by_txn.setdefault(txn_id, set()).add(resource)

    def _conflicting_holders(self, holders: Dict[int, LockMode],
                             txn_id: int, mode: LockMode) -> List[int]:
        conflicting = []
        for holder, held_mode in holders.items():
            if holder == txn_id:
                continue
            if mode is LockMode.EXCLUSIVE or held_mode is LockMode.EXCLUSIVE:
                conflicting.append(holder)
        return conflicting

    def holds(self, txn_id: int, resource: str,
              mode: Optional[LockMode] = None) -> bool:
        held = self._held.get(resource, {}).get(txn_id)
        if held is None:
            return False
        return mode is None or held is mode or held is LockMode.EXCLUSIVE

    def release_all(self, txn_id: int) -> None:
        """Two-phase locking: everything is released at commit/abort."""
        for resource in self._by_txn.pop(txn_id, set()):
            holders = self._held.get(resource)
            if holders is not None:
                holders.pop(txn_id, None)
                if not holders:
                    del self._held[resource]

    def holders_of(self, resource: str) -> List[Tuple[int, LockMode]]:
        return list(self._held.get(resource, {}).items())

    def locked_resources(self, txn_id: int) -> Set[str]:
        return set(self._by_txn.get(txn_id, set()))
