"""The active/standby middleware pair.

:class:`HAPair` owns the whole arrangement: a leader middleware with a
:class:`~repro.ha.shipper.StateShipper` attached, a standby middleware
built over the *same* replicas (middleware replication replicates
coordinator state, not data — the replicas already hold the data), a
shared :class:`~repro.ha.state.EpochFence`, and the
:class:`~repro.core.failover.VirtualIP` clients resolve the service
through.  ``promote()`` is the Figure 3 switchover applied to the
middleware tier itself; ``arm_detector()`` wires a
:class:`~repro.cluster.heartbeat.HeartbeatDetector` so a suspected
leader triggers promotion automatically (fencing makes a *false*
suspicion safe: the deposed-but-alive leader is refused at commit).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..core.failover import VirtualIP
from ..core.loadbalancer import LoadBalancer
from ..core.middleware import MiddlewareConfig, ReplicationMiddleware
from .promotion import PromotionReport, promote
from .shipper import StateShipper
from .state import CommitLedger, EpochFence, StandbyState


def build_standby(leader: ReplicationMiddleware,
                  name: Optional[str] = None) -> ReplicationMiddleware:
    """A standby twin of ``leader``: same replicas, same policies, its
    own balancer instance (affinity is shipped state, not shared state)
    and its own (empty) result cache — cached results are soft state
    that refills after promotion, so they are deliberately not shipped."""
    source = leader.config
    config = MiddlewareConfig(
        replication=source.replication,
        consistency=source.consistency,
        balancer=LoadBalancer(type(source.balancer.policy)(),
                              source.balancer.level),
        propagation=source.propagation,
        nondeterminism=source.nondeterminism,
        compensate_counters=source.compensate_counters,
        table_locking=source.table_locking,
        detect_divergence=source.detect_divergence,
        resilience=source.resilience,
        result_cache=source.result_cache,
        tracing=source.tracing,
        trace_retention=source.trace_retention,
    )
    return ReplicationMiddleware(
        leader.replicas, config, name=name or f"{leader.name}_standby",
        monitor=leader.monitor)


class HAPair:
    """Active/standby middleware with synchronous state shipping."""

    def __init__(self, leader: ReplicationMiddleware,
                 standby: Optional[ReplicationMiddleware] = None,
                 virtual_ip: Optional[VirtualIP] = None):
        self.leader = leader
        self.standby = standby or build_standby(leader)
        self.fence = EpochFence()
        self.state = StandbyState()
        self.shipper = StateShipper(leader, self.state)
        self.shipper.bootstrap()
        leader.state_shipper = self.shipper
        if leader.commit_ledger is None:
            leader.commit_ledger = CommitLedger()
        leader.fence = self.fence
        leader.epoch = self.fence.epoch
        leader.failover_target = self.standby.name
        self.standby.fence = self.fence
        self.standby.standby_mode = True
        self.virtual_ip = virtual_ip or VirtualIP("mw-vip", leader.name)
        self._active = leader
        self._on_switch: List[Callable[[ReplicationMiddleware], None]] = []
        self.promotions: List[PromotionReport] = []

    # -- addressing ----------------------------------------------------------

    @property
    def active(self) -> ReplicationMiddleware:
        """The instance the virtual IP currently points at."""
        return self._active

    def on_switch(self,
                  callback: Callable[[ReplicationMiddleware], None]) -> None:
        """Called with the new leader whenever the virtual IP moves
        (timed harnesses repoint their cluster handle here)."""
        self._on_switch.append(callback)

    def connect(self, user: str = "admin", password: str = "",
                database: Optional[str] = None,
                client_id: Optional[str] = None):
        """Resolve the virtual IP and open a session on the active
        leader, restoring the client's shipped consistency token."""
        session = self._active.connect(user, password, database)
        if client_id is not None:
            session.client_id = client_id
            token = self.session_token(client_id)
            if token is not None:
                session.view.last_commit_seq = max(
                    session.view.last_commit_seq, token[0])
                session.view.last_seen_seq = max(
                    session.view.last_seen_seq, token[1])
        return session

    def session_token(self, client_id: str):
        return self.state.session_tokens.get(client_id)

    # -- failure + promotion -------------------------------------------------

    def kill_active(self) -> int:
        """Crash the active instance (sessions die, soft state is lost).
        Returns the number of in-flight sessions lost."""
        return self._active.fail()

    def promote(self) -> PromotionReport:
        """Fence the leader and switch the virtual IP to the standby."""
        if self._active is self.standby:
            raise RuntimeError("standby is already the active instance")
        old = self._active
        report = promote(self.standby, self.state, self.fence)
        old.state_shipper = None
        old.failover_target = None
        # no further standby exists until an operator rebuilds one
        self.standby.failover_target = None
        self._active = self.standby
        self.virtual_ip.switch(self.standby.name)
        self.promotions.append(report)
        for callback in list(self._on_switch):
            callback(self.standby)
        return report

    # -- failure detection ---------------------------------------------------

    def arm_detector(self, detector, node_name: Optional[str] = None) -> None:
        """Promote when ``detector`` suspects the leader's process node.
        Promotion on a false positive is safe — the fence advances before
        any state moves, so the still-alive old leader is refused."""
        target = node_name or self.leader.name

        def on_failure(name: str) -> None:
            if name == target and self._active is self.leader:
                self.promote()

        detector.on_failure(on_failure)

    def __repr__(self) -> str:
        return (f"HAPair(active={self._active.name!r}, "
                f"epoch={self.fence.epoch})")
