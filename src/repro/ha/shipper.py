"""Synchronous state shipping from the active middleware to its standby.

The Hihooi design (PAPERS.md): the middleware tier itself replicates by
shipping its soft state to a standby *inside* the commit path, so the
standby is never behind an acknowledged commit.  Shipping is two-phase,
mirroring the commit's own danger windows:

``ship_prepare``
    After certification / sequence assignment, before any replica
    commits.  Carries the certifier log entry, the recovery-log payload
    and the client transaction id (PENDING in the shipped ledger).

``ship_ack``
    After the commit is durable everywhere the propagation mode
    requires, before the client acknowledgement.  Flips the ledger entry
    to COMMITTED and ships the session's consistency token.

Because the ack always precedes the client's, an acknowledged commit is
COMMITTED in the standby's ledger at promotion time — RPO = 0.  A crash
between the two phases leaves a PENDING entry that promotion resolves
against the replicas' applied watermark (see ``StandbyState.ledger``).

The wall-clock price of the synchronous round-trip is charged by the
timed layer (``repro.bench.simdriver`` adds a certification round when a
shipper is attached), preserving the repo convention that state changes
are instantaneous and time is charged separately.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence, Tuple

from .state import ShippedCommit, StandbyState


class StateShipper:
    """Attached to the active middleware; writes into a
    :class:`~repro.ha.state.StandbyState`."""

    def __init__(self, middleware, state: StandbyState):
        self.middleware = middleware
        self.state = state
        self._inflight: dict = {}   # seq -> ShippedCommit awaiting ack
        self.stats = {"prepares": 0, "acks": 0, "bootstrapped": 0}

    # -- initial full state transfer ----------------------------------------

    def bootstrap(self) -> int:
        """Full state transfer at attach time: certifier log + sequence,
        the recovery log so far, balancer affinity and the master name.
        Returns the number of recovery entries copied."""
        middleware = self.middleware
        self.state.certifier_log = middleware.certifier.export_log()
        self.state.seq = middleware.certifier.current_seq
        self.state.commits = [
            ShippedCommit(entry.seq, frozenset(), entry.kind,
                          entry.payload, entry.tables, entry.user,
                          entry.database)
            for entry in middleware.recovery_log.entries
        ]
        self.state.sticky = dict(middleware.config.balancer._sticky)
        self.state.master_name = middleware._master_name
        copied = len(self.state.commits)
        self.state.stats["bootstrap_entries"] = copied
        self.stats["bootstrapped"] = copied
        middleware.monitor.record("ha_bootstrap", middleware.name,
                                  entries=copied, seq=self.state.seq)
        return copied

    # -- the per-commit synchronous path ------------------------------------

    def ship_prepare(self, session, seq: int, keys: FrozenSet, kind: str,
                     payload, tables: Sequence[str]) -> ShippedCommit:
        shipped = ShippedCommit(
            seq, frozenset(keys), kind, payload, tuple(tables),
            user=session.user, database=session.database,
            txn_id=session.client_txn_id, client_id=session.client_id)
        self.state.apply_prepare(shipped)
        self._inflight[seq] = shipped
        self.stats["prepares"] += 1
        span = getattr(session, "active_span", None)
        if span:
            span.event("ha.ship", phase="prepare", seq=seq)
        return shipped

    def ship_ack(self, session, seq: int) -> None:
        shipped = self._inflight.pop(seq, None)
        if shipped is None:
            return
        shipped.session_token = self._session_token(session)
        self.state.apply_ack(shipped)
        self.state.sticky = dict(self.middleware.config.balancer._sticky)
        self.state.master_name = self.middleware._master_name
        self.stats["acks"] += 1
        span = getattr(session, "active_span", None)
        if span:
            span.event("ha.ship", phase="ack", seq=seq)

    def ship_resolve_noop(self, session, seq: int) -> None:
        """Resolve a prepared-but-aborted entry (cross-shard 2PC presumed
        abort, ``repro.shard.twopc``) as an empty no-op at the same seq:
        the shipped PENDING entry's keys/payload/tables are rewritten to
        empty, its ledger record is dropped (an aborted client txn must
        never dedup as success), and the entry is acked so the standby's
        watermark advances past the consumed seq.  A promotion after this
        point can never resurrect the aborted writeset — there is nothing
        left to resurrect."""
        shipped = self._inflight.pop(seq, None)
        if shipped is None:
            return
        if shipped.txn_id is not None:
            self.state.ledger.drop_pending(shipped.txn_id)
        shipped.keys = frozenset()
        shipped.payload = []
        shipped.tables = ()
        shipped.txn_id = None
        shipped.client_id = None
        for index in range(len(self.state.certifier_log) - 1, -1, -1):
            if self.state.certifier_log[index][0] == seq:
                self.state.certifier_log[index] = (seq, frozenset())
                break
        self.state.apply_ack(shipped)
        self.stats["acks"] += 1
        span = getattr(session, "active_span", None)
        if span:
            span.event("ha.ship", phase="resolve_noop", seq=seq)

    @staticmethod
    def _session_token(session) -> Optional[Tuple[int, int]]:
        view = getattr(session, "view", None)
        if view is None:
            return None
        return (view.last_commit_seq, view.last_seen_seq)

    def __repr__(self) -> str:
        return (f"StateShipper({self.middleware.name!r}, "
                f"prepares={self.stats['prepares']}, "
                f"acks={self.stats['acks']})")
