"""Exactly-once client failover against an :class:`~repro.ha.pair.HAPair`.

The client side of the HA contract: a stable ``client_id``, a fresh
``client_txn_id`` per transaction, and a replay loop that on middleware
death (a) re-resolves the virtual IP, (b) restores the session's
consistency token from shipped state (read-your-writes survives the
failover), and (c) asks the new leader's commit ledger whether the
in-flight transaction already committed before replaying it.  The ledger
answer is authoritative because shipping is synchronous: COMMITTED means
durable, absent-or-dropped means no replica ever committed it.  Either
way the transaction's effects happen exactly once.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

from ..core.errors import MiddlewareDown

#: replay outcomes reported by :meth:`HAClient.run_transaction`
COMMITTED = "committed"
DEDUPED = "deduped"


class HAClient:
    """A client that survives middleware failover transparently."""

    def __init__(self, pair, client_id: str, user: str = "admin",
                 database: Optional[str] = None, max_failovers: int = 3):
        self.pair = pair
        self.client_id = client_id
        self.user = user
        self.database = database
        self.max_failovers = max_failovers
        self._txn_ids = itertools.count(1)
        self.session = None
        self.stats = {"transactions": 0, "failovers": 0, "dedup_hits": 0,
                      "replays": 0}

    # -- session management --------------------------------------------------

    def _ensure_session(self):
        if self.session is None or self.session.closed \
                or self.session.middleware is not self.pair.active:
            if self.session is not None and not self.session.closed:
                self.session.close()
            self.session = self.pair.connect(
                self.user, database=self.database,
                client_id=self.client_id)
        return self.session

    def close(self) -> None:
        if self.session is not None and not self.session.closed:
            self.session.close()
        self.session = None

    # -- the exactly-once transaction loop -----------------------------------

    def run_transaction(self, statements: Sequence[str],
                        txn_id: Optional[str] = None) -> str:
        """Run ``statements`` as one transaction with exactly-once
        semantics across middleware failover.  Returns ``"committed"``
        (this attempt applied it) or ``"deduped"`` (a previous attempt
        already committed; nothing was re-applied)."""
        if txn_id is None:
            txn_id = f"{self.client_id}:{next(self._txn_ids)}"
        self.stats["transactions"] += 1
        attempt = 0
        while True:
            try:
                session = self._ensure_session()
                if attempt > 0:
                    ledger = self.pair.active.commit_ledger
                    if ledger is not None and ledger.committed(txn_id):
                        self.stats["dedup_hits"] += 1
                        self.pair.active.monitor.record(
                            "ha_client_dedup", self.client_id,
                            txn_id=txn_id)
                        return DEDUPED
                    self.stats["replays"] += 1
                session.client_txn_id = txn_id
                try:
                    session.execute("BEGIN")
                    for sql in statements:
                        session.execute(sql)
                    session.execute("COMMIT")
                finally:
                    if not session.closed:
                        session.client_txn_id = None
                return COMMITTED
            except MiddlewareDown as exc:
                # FencedOut subclasses MiddlewareDown: both mean "this
                # instance can no longer serve me" — re-resolve the VIP
                attempt += 1
                self.stats["failovers"] += 1
                self.session = None
                if attempt > self.max_failovers:
                    raise
                if self.pair.active.failed:
                    # nobody to fail over to (yet) — surface the outage
                    raise MiddlewareDown(
                        f"no live middleware instance ({exc})") from exc

    def execute(self, sql: str, params: Optional[List] = None):
        """Autocommit convenience with the same failover handling."""
        attempt = 0
        while True:
            try:
                return self._ensure_session().execute(sql, params)
            except MiddlewareDown:
                attempt += 1
                self.stats["failovers"] += 1
                self.session = None
                if attempt > self.max_failovers or self.pair.active.failed:
                    raise

    def __repr__(self) -> str:
        return f"HAClient({self.client_id!r})"
