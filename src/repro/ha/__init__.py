"""Highly-available middleware tier (paper section 3.2 made whole).

The centralized middleware is the paper's sharpest theory/practice gap:
"a failure of the load balancer ... causes a complete system outage",
and rebuilding a certifier "requires retrieving state from every
replica".  This package eliminates the SPOF with an active/standby pair:

* :mod:`repro.ha.state` — the shipped-state data structures (commit
  ledger, epoch fence, standby mirror);
* :mod:`repro.ha.shipper` — synchronous per-commit state shipping
  (prepare before any replica commits, ack before the client's ack);
* :mod:`repro.ha.promotion` — fenced promotion and the cold
  state-retrieval restart it is benchmarked against (E26);
* :mod:`repro.ha.pair` — the :class:`HAPair` orchestration (virtual IP,
  heartbeat arming, switchover);
* :mod:`repro.ha.client` — exactly-once client failover.
"""

from .client import COMMITTED, DEDUPED, HAClient
from .pair import HAPair, build_standby
from .promotion import (
    ColdRestartReport, PromotionReport, cold_restart,
    cold_restart_duration, promote,
)
from .shipper import StateShipper
from .state import (
    CommitLedger, EpochFence, LedgerRecord, ShippedCommit, StandbyState,
)

__all__ = [
    "COMMITTED", "DEDUPED", "HAClient",
    "HAPair", "build_standby",
    "ColdRestartReport", "PromotionReport", "cold_restart",
    "cold_restart_duration", "promote",
    "StateShipper",
    "CommitLedger", "EpochFence", "LedgerRecord", "ShippedCommit",
    "StandbyState",
]
