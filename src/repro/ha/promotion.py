"""Fenced promotion and the paper's cold-restart slow path.

Two ways to bring the middleware tier back after the active instance
dies (section 3.2):

* :func:`promote` — the standby takes over.  The epoch fence advances
  first (the deposed leader is refused from this instant, even if it is
  merely suspected dead — no split-brain), then the standby middleware
  is hydrated from the shipped :class:`~repro.ha.state.StandbyState` and
  the pending ledger window is settled against the replicas' applied
  watermark.  RTO is a detection delay plus this (cheap) hydration.

* :func:`cold_restart` — no standby: the restarted middleware rebuilds
  its certifier state "by retrieving state from every replica" (the
  recovery the paper notes is "rarely described and almost never
  evaluated").  Conflict history is unrecoverable, so the rebuilt
  certifier starts with an empty log at the replicas' watermark; RTO
  grows with the cluster size (every replica must answer a scan).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .state import EpochFence, StandbyState


class PromotionReport:
    """What one standby promotion did."""

    __slots__ = ("epoch", "watermark", "resolved_committed",
                 "dropped_pending", "certifier_entries",
                 "recovery_entries", "session_tokens", "new_leader")

    def __init__(self, epoch: int, watermark: int, resolved_committed: int,
                 dropped_pending: int, certifier_entries: int,
                 recovery_entries: int, session_tokens: int,
                 new_leader: str):
        self.epoch = epoch
        self.watermark = watermark
        self.resolved_committed = resolved_committed
        self.dropped_pending = dropped_pending
        self.certifier_entries = certifier_entries
        self.recovery_entries = recovery_entries
        self.session_tokens = session_tokens
        self.new_leader = new_leader

    def __repr__(self) -> str:
        return (f"PromotionReport(epoch={self.epoch}, "
                f"leader={self.new_leader!r}, "
                f"resolved={self.resolved_committed}, "
                f"dropped={self.dropped_pending})")


class ColdRestartReport:
    """What one cold (state-retrieval) restart did."""

    __slots__ = ("replicas_queried", "watermark", "watermarks",
                 "log_entries_lost")

    def __init__(self, replicas_queried: int, watermark: int,
                 watermarks: Dict[str, int], log_entries_lost: int):
        self.replicas_queried = replicas_queried
        self.watermark = watermark
        self.watermarks = watermarks
        self.log_entries_lost = log_entries_lost

    def __repr__(self) -> str:
        return (f"ColdRestartReport(queried={self.replicas_queried}, "
                f"watermark={self.watermark})")


def promote(standby, state: StandbyState, fence: EpochFence
            ) -> PromotionReport:
    """Fence the old leader and hydrate ``standby`` from ``state``.

    Order matters: the epoch advances *before* any state moves, so from
    the first instruction of a promotion the deposed leader can no
    longer certify a commit — even when the promotion was triggered by a
    false suspicion and the old leader is still alive.
    """
    epoch = fence.advance()
    span = standby.tracer.start_span("ha.promote", epoch=epoch,
                                     leader=standby.name)
    span.event("ha.fence", epoch=epoch)

    # Settle the pending window against what physically committed.
    watermark = max((r.applied_seq for r in standby.replicas
                     if r.is_online), default=0)
    resolved, dropped = state.ledger.resolve_pending(watermark)
    dropped_seqs = {record.seq for record in dropped}

    # Certifier: shipped log minus never-committed tails.  A dropped
    # sequence number was observed by no replica, so it may be reused.
    log = [(seq, keys) for seq, keys in state.certifier_log
           if seq not in dropped_seqs]
    seq_floor = max([watermark] + [seq for seq, _keys in log])
    standby.certifier.import_log(log, seq=seq_floor)

    # Recovery log: same filter, replayed into the standby's own log.
    recovered = 0
    for shipped in state.commits:
        if shipped.seq in dropped_seqs:
            continue
        standby.recovery_log.append(
            shipped.seq, shipped.kind, shipped.payload,
            tables=shipped.tables, user=shipped.user,
            database=shipped.database)
        recovered += 1

    # Ledger, balancer affinity, master designation, session tokens.
    standby.commit_ledger = state.ledger
    standby.config.balancer._sticky = dict(state.sticky)
    if state.master_name is not None:
        try:
            standby.set_master(state.master_name)
        except Exception:  # noqa: BLE001 — master may be gone; keep default
            pass
    if standby.cache_invalidator is not None:
        # the standby's cache never saw the leader's certified stream;
        # anything cached (there should be nothing) restarts cold
        standby.cache_invalidator.reset(standby.global_seq)

    standby.epoch = epoch
    standby.standby_mode = False
    standby.failed = False

    report = PromotionReport(
        epoch=epoch, watermark=watermark,
        resolved_committed=len(resolved), dropped_pending=len(dropped),
        certifier_entries=len(log), recovery_entries=recovered,
        session_tokens=len(state.session_tokens),
        new_leader=standby.name)
    span.set_tag("resolved_committed", len(resolved))
    span.set_tag("dropped_pending", len(dropped))
    span.set_tag("certifier_entries", len(log))
    span.end()
    standby.monitor.record("ha_promoted", standby.name, epoch=epoch,
                           resolved=len(resolved), dropped=len(dropped))
    return report


def cold_restart(middleware,
                 fence: Optional[EpochFence] = None) -> ColdRestartReport:
    """The slow path: restart ``middleware`` in place, rebuilding its
    certifier by querying every reachable replica for its applied
    watermark.  Conflict history is gone — certification restarts with
    an empty window, which is safe (no in-flight transactions survived
    the crash) but loses the log a standby would have preserved."""
    span = middleware.tracer.start_span("ha.cold_restart",
                                        leader=middleware.name)
    watermarks: Dict[str, int] = {}
    for replica in middleware.replicas:
        if replica.is_online:
            watermarks[replica.name] = replica.applied_seq
            span.event("ha.watermark", replica=replica.name,
                       seq=replica.applied_seq)
    watermark = max(watermarks.values(), default=0)
    lost = middleware.certifier.log_length()
    middleware.certifier.recover(rebuild_from_replicas=watermark)
    if fence is not None:
        # the restarted instance re-registers at the current epoch
        middleware.epoch = fence.epoch
    middleware.failed = False
    if middleware.cache_invalidator is not None:
        middleware.cache_invalidator.reset(middleware.global_seq)
    report = ColdRestartReport(
        replicas_queried=len(watermarks), watermark=watermark,
        watermarks=watermarks, log_entries_lost=lost)
    span.set_tag("replicas_queried", len(watermarks))
    span.set_tag("watermark", watermark)
    span.end()
    middleware.monitor.record("ha_cold_restart", middleware.name,
                              replicas=len(watermarks), watermark=watermark)
    return report


def cold_restart_duration(n_replicas: int, base: float = 0.5,
                          per_replica: float = 0.25) -> float:
    """The simulated-time cost model for a cold restart: a fixed process
    restart plus one state-retrieval scan per replica (the scans are
    sequential in the naive recovery the paper describes)."""
    return base + per_replica * max(0, n_replicas)


def leader_watermarks(middleware) -> List[int]:
    """Per-replica applied sequences, the raw material of a cold rebuild
    (exposed for tests and benchmarks)."""
    return [r.applied_seq for r in middleware.replicas if r.is_online]
