"""Shipped middleware state: the commit ledger, the epoch fence and the
standby's mirror of the leader's soft state.

The paper's section 3.2 diagnosis is that the middleware's *soft state*
(certifier log + sequence, session consistency tokens, balancer
affinity) dies with the process.  High availability therefore reduces to
answering one question precisely: which pieces of that state must reach
a standby *before* the client sees a commit acknowledgement, so that a
promotion loses nothing the client was told happened (RPO = 0)?

This module holds the answer's data structures, deliberately free of any
import from :mod:`repro.core.middleware` (the middleware only sees them
through duck-typed hooks, so no import cycle exists):

* :class:`CommitLedger` — client-transaction-id → outcome.  The leader
  records PENDING before anything global happens and COMMITTED before the
  client is acked; a promoted standby answers replay attempts from its
  shipped copy, which is what makes client failover *exactly-once*.
* :class:`EpochFence` — the monotonically increasing promotion epoch the
  replicas (conceptually) enforce.  A deposed leader still holding an old
  epoch is refused at commit time — the split-brain guard.
* :class:`ShippedCommit` — the wire format of one synchronous state
  shipment (see docs/HA.md for the field-by-field contract).
* :class:`StandbyState` — everything the standby accumulates; promotion
  (:mod:`repro.ha.promotion`) hydrates a middleware instance from it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

PENDING = "pending"
COMMITTED = "committed"


class LedgerRecord:
    """One client transaction's fate, as the ledger knows it."""

    __slots__ = ("txn_id", "seq", "status")

    def __init__(self, txn_id: str, seq: int, status: str = PENDING):
        self.txn_id = txn_id
        self.seq = seq
        self.status = status

    def __repr__(self) -> str:
        return (f"LedgerRecord({self.txn_id!r}, seq={self.seq}, "
                f"{self.status})")


class CommitLedger:
    """Client-txn-id → outcome map with a two-phase discipline.

    ``prepare`` runs before any replica commits (outcome unknown);
    ``mark_committed`` runs once the commit is durable everywhere the
    propagation mode requires, and always *before* the client ack.  A
    replayed transaction whose id is already COMMITTED must not be
    re-applied — that is the exactly-once check.
    """

    def __init__(self):
        self._records: Dict[str, LedgerRecord] = {}
        self.stats = {"prepared": 0, "committed": 0, "dedup_hits": 0,
                      "resolved_committed": 0, "dropped_pending": 0}

    def prepare(self, txn_id: str, seq: int) -> LedgerRecord:
        record = LedgerRecord(txn_id, seq, PENDING)
        self._records[txn_id] = record
        self.stats["prepared"] += 1
        return record

    def mark_committed(self, txn_id: str,
                       seq: Optional[int] = None) -> None:
        record = self._records.get(txn_id)
        if record is None:
            record = LedgerRecord(txn_id, seq or 0)
            self._records[txn_id] = record
        if seq is not None:
            record.seq = seq
        if record.status != COMMITTED:
            record.status = COMMITTED
            self.stats["committed"] += 1

    def committed(self, txn_id: str) -> bool:
        """Exactly-once check: ``True`` means a replay of ``txn_id`` must
        be answered as success without re-applying anything."""
        record = self._records.get(txn_id)
        hit = record is not None and record.status == COMMITTED
        if hit:
            self.stats["dedup_hits"] += 1
        return hit

    def outcome(self, txn_id: str) -> Optional[LedgerRecord]:
        return self._records.get(txn_id)

    def pending_records(self) -> List[LedgerRecord]:
        return [r for r in self._records.values() if r.status == PENDING]

    def drop_pending(self, txn_id: str) -> bool:
        """Remove a PENDING record whose transaction aborted before the
        client ack (cross-shard 2PC presumed abort) — its replay must NOT
        dedup as success."""
        record = self._records.get(txn_id)
        if record is not None and record.status == PENDING:
            del self._records[txn_id]
            self.stats["dropped_pending"] += 1
            return True
        return False

    def resolve_pending(self, watermark: int
                        ) -> Tuple[List[LedgerRecord], List[LedgerRecord]]:
        """Settle every PENDING record against the replicas' applied
        watermark at promotion time.

        A pending commit with ``seq <= watermark`` physically committed at
        a replica before the leader died — it is durable, so it becomes
        COMMITTED (the client's replay will dedup).  A pending commit with
        ``seq > watermark`` never reached any replica — it is dropped, and
        its sequence number was never observed anywhere, so the new leader
        may reuse it.  Returns ``(now_committed, dropped)``.
        """
        resolved: List[LedgerRecord] = []
        dropped: List[LedgerRecord] = []
        for record in self.pending_records():
            if record.seq <= watermark:
                record.status = COMMITTED
                self.stats["committed"] += 1
                self.stats["resolved_committed"] += 1
                resolved.append(record)
            else:
                del self._records[record.txn_id]
                self.stats["dropped_pending"] += 1
                dropped.append(record)
        return resolved, dropped

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        pending = len(self.pending_records())
        return (f"CommitLedger({len(self._records)} records, "
                f"{pending} pending)")


class EpochFence:
    """The monotonic promotion epoch (split-brain guard).

    Conceptually this lives *at the replicas*: a promotion advances the
    epoch cluster-wide, and a leader presenting an older epoch is refused
    (``admits`` returns False).  The simulation keeps it as one shared
    object, which models the same property — the deposed leader cannot
    win because the authority it would need to consult has moved on.
    """

    def __init__(self):
        self.epoch = 0
        self.history: List[int] = [0]

    def advance(self) -> int:
        self.epoch += 1
        self.history.append(self.epoch)
        return self.epoch

    def admits(self, epoch: int) -> bool:
        return epoch >= self.epoch

    def __repr__(self) -> str:
        return f"EpochFence(epoch={self.epoch})"


class ShippedCommit:
    """One synchronous shipment: everything the standby must know about
    one globally-ordered update unit before the client may be acked."""

    __slots__ = ("seq", "keys", "kind", "payload", "tables", "user",
                 "database", "txn_id", "client_id", "session_token")

    def __init__(self, seq: int, keys: FrozenSet, kind: str, payload,
                 tables: Tuple[str, ...], user: str,
                 database: Optional[str],
                 txn_id: Optional[str] = None,
                 client_id: Optional[str] = None,
                 session_token: Optional[Tuple[int, int]] = None):
        self.seq = seq
        self.keys = keys
        self.kind = kind              # "statements" | "writeset" | "ddl"
        self.payload = payload        # recovery-log payload, same shapes
        self.tables = tables
        self.user = user
        self.database = database
        self.txn_id = txn_id          # client transaction id (exactly-once)
        self.client_id = client_id
        self.session_token = session_token  # (last_commit_seq, last_seen_seq)

    def __repr__(self) -> str:
        return (f"ShippedCommit(seq={self.seq}, kind={self.kind!r}, "
                f"txn={self.txn_id!r})")


class StandbyState:
    """The standby's mirror of the leader's soft state.

    Updated synchronously by :class:`repro.ha.shipper.StateShipper` on
    every commit; read exactly once, at promotion, to hydrate the standby
    middleware.  Holding it as plain data (rather than poking the standby
    middleware live) keeps the shipping path cheap and makes the
    promotion-time resolution of the pending window explicit.
    """

    def __init__(self):
        self.certifier_log: List[Tuple[int, FrozenSet]] = []
        self.seq = 0
        self.commits: List[ShippedCommit] = []   # recovery-log mirror
        self.ledger = CommitLedger()
        # client_id -> (last_commit_seq, last_seen_seq): reconnecting
        # clients restore read-your-writes across the failover
        self.session_tokens: Dict[str, Tuple[int, int]] = {}
        self.sticky: Dict[int, str] = {}         # balancer affinity
        self.master_name: Optional[str] = None
        self.stats = {"prepares": 0, "acks": 0, "bootstrap_entries": 0}

    def apply_prepare(self, shipped: ShippedCommit) -> None:
        """Phase 1 of a shipment: runs before any replica commits."""
        self.certifier_log.append((shipped.seq, shipped.keys))
        self.seq = max(self.seq, shipped.seq)
        self.commits.append(shipped)
        if shipped.txn_id is not None:
            self.ledger.prepare(shipped.txn_id, shipped.seq)
        self.stats["prepares"] += 1

    def apply_ack(self, shipped: ShippedCommit) -> None:
        """Phase 2: the commit is durable; record outcome + tokens."""
        if shipped.txn_id is not None:
            self.ledger.mark_committed(shipped.txn_id, shipped.seq)
        if shipped.client_id is not None \
                and shipped.session_token is not None:
            self.session_tokens[shipped.client_id] = shipped.session_token
        self.stats["acks"] += 1

    def __repr__(self) -> str:
        return (f"StandbyState(seq={self.seq}, "
                f"log={len(self.certifier_log)}, "
                f"commits={len(self.commits)})")
