"""Service-time cost model for simulated execution.

The paper's performance observations are about *shape* — sub-millisecond
OLTP queries suffer most from middleware latency (section 4.4.5), update
application saturates replicas (section 2.1), serial apply lags behind a
parallel master (section 2.2).  The cost model assigns each statement a
nominal service time so the discrete-event simulation reproduces those
shapes; absolute values default to figures typical of 2008-era OLTP
hardware and are fully configurable.
"""

from __future__ import annotations

from ..sqlengine import ast_nodes as ast
from .analysis import StatementInfo, analyze


class CostModel:
    """Nominal service times (seconds) for statement classes.

    Attributes:
        point_read: indexed single-row SELECT.
        scan_read: SELECT with joins/aggregates/subqueries.
        write: single INSERT/UPDATE/DELETE.
        commit_io: local commit (log force).
        middleware_overhead: per-statement middleware processing
            (parse + route) — the latency tax of section 4.4.5.
        interception_overhead: added per-statement by the chosen
            interception design (set by ``core.interception``).
        writeset_apply: applying one writeset row at a replica
            (cheaper than re-executing the statement).
        certification: certifier CPU per commit.
        certify_txn_cpu: incremental certifier CPU per *additional*
            transaction in a group-commit batch (the serial total-order
            point charges ``certification + certify_txn_cpu * (n-1)``
            for a batch of n instead of n full rounds).
        group_commit_txn_io: incremental log-force cost per additional
            transaction sharing one group-committed ``commit_io``.
        io_fraction: share of a write that is disk-bound (interacts with
            silent disk degradation, section 4.1.3).
    """

    def __init__(self,
                 point_read: float = 0.0008,
                 scan_read: float = 0.004,
                 write: float = 0.0012,
                 commit_io: float = 0.0015,
                 middleware_overhead: float = 0.0003,
                 interception_overhead: float = 0.0,
                 writeset_apply: float = 0.0006,
                 certification: float = 0.0002,
                 certify_txn_cpu: float = 0.00005,
                 group_commit_txn_io: float = 0.0002,
                 io_fraction: float = 0.5,
                 apply_io_fraction: float = 0.8):
        self.point_read = point_read
        self.scan_read = scan_read
        self.write = write
        self.commit_io = commit_io
        self.middleware_overhead = middleware_overhead
        self.interception_overhead = interception_overhead
        self.writeset_apply = writeset_apply
        self.certification = certification
        self.certify_txn_cpu = certify_txn_cpu
        self.group_commit_txn_io = group_commit_txn_io
        self.io_fraction = io_fraction
        # Writeset application is random-write dominated; a parallel apply
        # pipeline overlaps this IO, which is where its speedup comes from
        # (section 4.4.2's replay-parallelism discussion).
        self.apply_io_fraction = apply_io_fraction

    # -- per-statement estimates ------------------------------------------

    def statement_cost(self, info: StatementInfo) -> float:
        """Replica-side service time for one statement."""
        statement = info.statement
        if isinstance(statement, ast.SelectStatement):
            return self._select_cost(statement)
        if info.is_procedure_call:
            # procedures bundle several statements; charge a bundle
            return self.write * 3 + self.scan_read
        if info.is_ddl:
            return self.write * 2
        if info.is_write:
            return self.write
        return self.point_read

    def _select_cost(self, select: ast.SelectStatement) -> float:
        heavy = (
            isinstance(select.source, (ast.Join,))
            or select.group_by
            or select.having is not None
            or any(isinstance(expr, ast.FunctionCall)
                   for expr, _ in select.columns)
        )
        return self.scan_read if heavy else self.point_read

    def cost_of_sql_class(self, kind: str) -> float:
        """Costs by symbolic class, for workload generators that do not
        materialize SQL text."""
        table = {
            "point_read": self.point_read,
            "scan_read": self.scan_read,
            "write": self.write,
            "commit": self.commit_io,
            "writeset_apply": self.writeset_apply,
        }
        if kind not in table:
            raise KeyError(f"unknown cost class {kind!r}")
        return table[kind]

    def middleware_cost(self) -> float:
        return self.middleware_overhead + self.interception_overhead

    def apply_cost(self, writeset_size: int) -> float:
        """Applying a writeset of N row changes at a replica."""
        return self.writeset_apply * max(1, writeset_size)

    def replay_cost(self, statement_count: int) -> float:
        """Re-executing N statements during recovery-log replay."""
        return self.write * max(1, statement_count)

    def estimate_sql(self, info_or_statement) -> float:
        if isinstance(info_or_statement, StatementInfo):
            return self.statement_cost(info_or_statement)
        return self.statement_cost(analyze(info_or_statement))


def default_cost_model() -> CostModel:
    return CostModel()
