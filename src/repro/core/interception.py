"""The three query-interception architectures (Figures 5-7, section 4.3.1).

Each design is an adapter that validates the cluster it can legally front
and contributes its characteristic per-statement overhead to the cost
model:

* :class:`EngineInterception` (Fig. 5, Postgres-R style) — coordination
  behind unmodified client/server communication, but requires the *same
  engine, same version* everywhere, and couples the middleware to the
  engine's release cycle (the gap that killed Postgres-R).
* :class:`ProtocolProxyInterception` (Fig. 6) — proxies the DBMS wire
  protocol: clients keep their native driver, but one protocol family only,
  and per-driver protocol quirks make intent inference fragile.
* :class:`DriverInterception` (Fig. 7, C-JDBC/Sequoia style) — the client
  swaps its driver; heterogeneous engines are fine; updating hundreds of
  client machines is the deployment cost (section 4.3.1).
"""

from __future__ import annotations

from typing import Dict, List

from ..sqlengine import UnsupportedFeatureError
from .costmodel import CostModel
from .middleware import ReplicationMiddleware


class InterceptionDesign:
    """Base class: a validated deployment shape + its overhead profile."""

    name = "base"
    requires_client_change = False
    supports_heterogeneous_engines = False
    supports_mixed_versions = False
    coupled_to_engine = False
    per_statement_overhead = 0.0

    def __init__(self, middleware: ReplicationMiddleware):
        self.middleware = middleware
        self.validate()
        self.apply_overhead()

    def validate(self) -> None:
        raise NotImplementedError

    def apply_overhead(self, cost_model: CostModel = None) -> None:
        if cost_model is not None:
            cost_model.interception_overhead = self.per_statement_overhead

    def properties(self) -> Dict[str, object]:
        return {
            "design": self.name,
            "requires_client_change": self.requires_client_change,
            "supports_heterogeneous_engines":
                self.supports_heterogeneous_engines,
            "supports_mixed_versions": self.supports_mixed_versions,
            "coupled_to_engine": self.coupled_to_engine,
            "per_statement_overhead": self.per_statement_overhead,
        }

    # helpers -------------------------------------------------------------

    def _dialect_names(self) -> List[str]:
        return [r.engine.dialect.name for r in self.middleware.replicas]

    def _dialect_versions(self) -> List[str]:
        return [r.engine.dialect.version for r in self.middleware.replicas]


class EngineInterception(InterceptionDesign):
    """Figure 5: replication inside/behind the engine."""

    name = "engine-level"
    requires_client_change = False
    supports_heterogeneous_engines = False
    supports_mixed_versions = False
    coupled_to_engine = True
    # coordination rides on engine internals: cheapest per statement
    per_statement_overhead = 0.00005

    def validate(self) -> None:
        names = set(self._dialect_names())
        versions = set(self._dialect_versions())
        if len(names) > 1:
            raise UnsupportedFeatureError(
                f"engine-level interception cannot span engines {sorted(names)} "
                "(it is compiled against one engine's internals)")
        if len(versions) > 1:
            raise UnsupportedFeatureError(
                f"engine-level interception cannot span versions "
                f"{sorted(versions)} — this is why Postgres-R diverged and "
                "died (section 3.1)")


class ProtocolProxyInterception(InterceptionDesign):
    """Figure 6: a proxy speaking the DBMS native wire protocol."""

    name = "protocol-proxy"
    requires_client_change = False
    supports_heterogeneous_engines = False
    supports_mixed_versions = True
    coupled_to_engine = False
    # full protocol parse/re-encode per statement
    per_statement_overhead = 0.0004

    def validate(self) -> None:
        names = set(self._dialect_names())
        if len(names) > 1:
            raise UnsupportedFeatureError(
                f"a protocol proxy speaks one wire protocol; cannot front "
                f"{sorted(names)} (section 3.1: 'does not support more than "
                "one DB engine at the low level')")


class DriverInterception(InterceptionDesign):
    """Figure 7: the client's driver is replaced (JDBC/ODBC remap)."""

    name = "driver-based"
    requires_client_change = True
    supports_heterogeneous_engines = True
    supports_mixed_versions = True
    coupled_to_engine = False
    # driver remap + middleware protocol hop
    per_statement_overhead = 0.0002

    def validate(self) -> None:
        # heterogeneous clusters are the point of this design
        return

    @staticmethod
    def deployment_cost(client_machines: int,
                        minutes_per_machine: float = 15.0) -> float:
        """Driver rollout cost in minutes — the 500-client showstopper of
        section 4.3.1."""
        return client_machines * minutes_per_machine


DESIGNS = {
    "engine-level": EngineInterception,
    "protocol-proxy": ProtocolProxyInterception,
    "driver-based": DriverInterception,
}


def design_by_name(name: str, middleware: ReplicationMiddleware
                   ) -> InterceptionDesign:
    factory = DESIGNS.get(name.lower())
    if factory is None:
        raise ValueError(f"unknown interception design {name!r}")
    return factory(middleware)
