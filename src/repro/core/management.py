"""Cluster management: adding/removing replicas, software upgrades
(paper sections 4.4.2 and 4.4.3).

Three add-replica strategies from the paper, with their distinct costs:

* ``full_stop`` — "many systems, like MySQL cluster, require the entire
  cluster to be shut down" — total write outage for the whole sync;
* ``donor`` — "Emic Networks m/cluster ... use an active replica, bring it
  offline to transfer its state" — capacity loss of one replica, and a
  total outage if only one replica was left;
* ``recovery_log`` — Sequoia's way: initialize from a checkpointed backup,
  replay the recovery log, enact a global barrier, go online — no donor
  capacity loss.

Rolling upgrades (engine / middleware / driver) keep the service up by
upgrading one component at a time; the driver-upgrade cost model reflects
that "upgrading the driver is orders of magnitude more complex than
upgrading the four nodes" when there are hundreds of clients.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sqlengine.backup import BackupOptions, dump_engine, restore_engine
from .backup import BackupCoordinator, ClusterBackup
from .errors import MiddlewareError, ReplicaUnavailable
from .middleware import ReplicationMiddleware
from .replica import Replica, ReplicaState


class ManagementReport:
    """Cost accounting for one management operation."""

    def __init__(self, operation: str, target: str):
        self.operation = operation
        self.target = target
        self.write_outage = False      # did the whole cluster stop serving?
        self.donor_offline: Optional[str] = None
        self.rows_transferred = 0
        self.entries_replayed = 0
        self.detail: Dict = {}

    def __repr__(self) -> str:
        return (f"ManagementReport({self.operation} {self.target}: "
                f"outage={self.write_outage}, rows={self.rows_transferred}, "
                f"replayed={self.entries_replayed})")


class ClusterManager:
    """Online management operations for one middleware cluster."""

    def __init__(self, middleware: ReplicationMiddleware):
        self.middleware = middleware
        self.backup = BackupCoordinator(middleware)
        self.reports: List[ManagementReport] = []

    # ------------------------------------------------------------------
    # remove
    # ------------------------------------------------------------------

    def remove_replica(self, name: str) -> ManagementReport:
        """Gracefully remove a replica: drain it, checkpoint the recovery
        log at its position, take it OFFLINE."""
        middleware = self.middleware
        replica = middleware.replica_by_name(name)
        report = ManagementReport("remove_replica", name)
        middleware.drain_replica(name)
        middleware.recovery_log.checkpoint(
            f"removed:{name}", seq=replica.applied_seq)
        replica.set_state(ReplicaState.OFFLINE)
        middleware.monitor.record("replica_removed", name,
                                  at_seq=replica.applied_seq)
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # add
    # ------------------------------------------------------------------

    def add_replica(self, replica: Replica,
                    strategy: str = "recovery_log",
                    backup: Optional[ClusterBackup] = None) -> ManagementReport:
        if strategy == "full_stop":
            return self._add_full_stop(replica)
        if strategy == "donor":
            return self._add_donor(replica)
        if strategy == "recovery_log":
            return self._add_recovery_log(replica, backup)
        raise ValueError(f"unknown add-replica strategy {strategy!r}")

    def _register(self, replica: Replica) -> None:
        if replica not in self.middleware.replicas:
            self.middleware.replicas.append(replica)
            replica.on_state_change(self.middleware._replica_state_changed)

    def _add_full_stop(self, replica: Replica) -> ManagementReport:
        """MySQL-cluster style: stop the world, sync offline, restart."""
        middleware = self.middleware
        report = ManagementReport("add_replica_full_stop", replica.name)
        report.write_outage = True
        middleware.monitor.record("cluster_stopped", middleware.name,
                                  reason="add_replica_full_stop")
        # every session is kicked out — long downtime, unhappy customers
        for session in list(middleware.sessions):
            session.close()
        source = self._any_online()
        dump = dump_engine(source.engine, BackupOptions.full_clone())
        restore_engine(replica.engine, dump)
        replica.applied_seq = source.applied_seq
        replica.set_state(ReplicaState.ONLINE)
        self._register(replica)
        report.rows_transferred = dump.size_rows()
        middleware.monitor.record("cluster_started", middleware.name)
        self.reports.append(report)
        return report

    def _add_donor(self, replica: Replica) -> ManagementReport:
        """m/cluster style: a donor goes offline to feed the new replica.

        If the donor was the last online replica the whole system is down
        for the duration — the paper's explicit criticism.
        """
        middleware = self.middleware
        report = ManagementReport("add_replica_donor", replica.name)
        online = middleware.online_replicas()
        donor = online[0]
        report.donor_offline = donor.name
        report.write_outage = len(online) <= 1
        middleware.drain_replica(donor.name)
        donor.set_state(ReplicaState.DONOR)
        middleware.monitor.record("donor_offline", donor.name,
                                  outage=report.write_outage)
        dump = dump_engine(donor.engine, BackupOptions.full_clone())
        restore_engine(replica.engine, dump)
        replica.applied_seq = donor.applied_seq
        report.rows_transferred = dump.size_rows()
        self._register(replica)
        # both catch up on what committed during the transfer
        for catching_up in (donor, replica):
            for entry in middleware.recovery_log.entries_since(
                    catching_up.applied_seq):
                middleware.recovery_log.replay_entry(
                    catching_up.engine, entry)
                catching_up.applied_seq = entry.seq
                report.entries_replayed += 1
        donor.set_state(ReplicaState.ONLINE)
        replica.set_state(ReplicaState.ONLINE)
        middleware.monitor.record("replica_added", replica.name,
                                  strategy="donor")
        self.reports.append(report)
        return report

    def _add_recovery_log(self, replica: Replica,
                          backup: Optional[ClusterBackup]) -> ManagementReport:
        """Sequoia style: restore a checkpointed backup (taken earlier,
        from an offline node or a hot dump) and replay the recovery log —
        no donor capacity loss, no outage."""
        middleware = self.middleware
        report = ManagementReport("add_replica_recovery_log", replica.name)
        if backup is None:
            donor = self._any_online()
            backup = self.backup.hot_backup(donor.name)
        report.rows_transferred = backup.dump.size_rows()
        report.entries_replayed = self.backup.restore_to_replica(
            backup, replica, replay=True)
        self._register(replica)
        replica.set_state(ReplicaState.ONLINE)
        middleware.monitor.record("replica_added", replica.name,
                                  strategy="recovery_log")
        self.reports.append(report)
        return report

    def _any_online(self) -> Replica:
        online = self.middleware.online_replicas()
        if not online:
            raise ReplicaUnavailable("no online replica to copy from")
        return online[0]

    # ------------------------------------------------------------------
    # upgrades
    # ------------------------------------------------------------------

    def rolling_engine_upgrade(self, new_dialect_factory,
                               allow_heterogeneous: bool = True) -> ManagementReport:
        """Upgrade every replica's engine one at a time: remove -> upgrade
        -> re-add via recovery log.  The cluster is temporarily
        heterogeneous (mixed versions, section 4.4.3); middleware designs
        that cannot tolerate that must use full-stop instead."""
        middleware = self.middleware
        report = ManagementReport("rolling_engine_upgrade", middleware.name)
        versions_seen = set()
        for replica in list(middleware.replicas):
            if not replica.is_online:
                continue
            self.remove_replica(replica.name)
            old = replica.engine.dialect
            replica.engine.dialect = new_dialect_factory(old)
            versions_seen.add(replica.engine.dialect.version)
            if not allow_heterogeneous and len(self._online_versions()) > 1:
                raise MiddlewareError(
                    "engine-level integration cannot run a mixed-version "
                    "cluster (section 4.4.3)")
            # re-add: replay what it missed while offline
            for entry in middleware.recovery_log.entries_since(
                    replica.applied_seq):
                middleware.recovery_log.replay_entry(replica.engine, entry)
                replica.applied_seq = entry.seq
                report.entries_replayed += 1
            replica.set_state(ReplicaState.ONLINE)
            middleware.monitor.record("replica_upgraded", replica.name,
                                      version=replica.engine.dialect.version)
        report.detail["versions"] = sorted(versions_seen)
        self.reports.append(report)
        return report

    def _online_versions(self) -> set:
        return {
            r.engine.dialect.version
            for r in self.middleware.online_replicas()
        }

    def full_stop_engine_upgrade(self, new_dialect_factory) -> ManagementReport:
        """The alternative when mixed versions are impossible: stop
        everything, upgrade everything, restart — total outage."""
        middleware = self.middleware
        report = ManagementReport("full_stop_engine_upgrade", middleware.name)
        report.write_outage = True
        middleware.monitor.record("cluster_stopped", middleware.name,
                                  reason="engine_upgrade")
        for session in list(middleware.sessions):
            session.close()
        for replica in middleware.replicas:
            replica.engine.dialect = new_dialect_factory(
                replica.engine.dialect)
        middleware.monitor.record("cluster_started", middleware.name)
        self.reports.append(report)
        return report

    @staticmethod
    def driver_upgrade_cost(client_machines: int,
                            per_client_minutes: float = 15.0,
                            server_nodes: int = 4,
                            per_server_minutes: float = 30.0) -> Dict[str, float]:
        """The section 4.3.1 / 4.4.3 asymmetry in one formula: updating 500
        client machines dwarfs upgrading the 4 database nodes."""
        return {
            "client_minutes": client_machines * per_client_minutes,
            "server_minutes": server_nodes * per_server_minutes,
            "ratio": (client_machines * per_client_minutes)
                     / max(1e-9, server_nodes * per_server_minutes),
        }
