"""Replica wrapper: one backend engine under middleware control.

Tracks the replication state machine (ONLINE / RECOVERING / FAILED /
OFFLINE / DONOR), the apply queue that asynchronous update propagation
feeds, and the applied-sequence watermark used by freshness-aware
consistency protocols and by slave-lag measurements (section 2.2).
"""

from __future__ import annotations

import enum
from collections import deque
from itertools import islice
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..sqlengine import Connection, Engine
from ..cluster.nodes import Node


class ReplicaState(enum.Enum):
    ONLINE = "online"
    OFFLINE = "offline"          # administratively removed
    RECOVERING = "recovering"    # resynchronizing, not yet serving
    FAILED = "failed"            # crashed / declared dead
    DONOR = "donor"              # serving a state transfer (m/cluster style)


class ApplyItem:
    """One unit of pending replication work for this replica."""

    __slots__ = ("seq", "kind", "payload", "tables", "enqueued_at",
                 "trace_ref")

    def __init__(self, seq: int, kind: str, payload: Any,
                 tables: Tuple[str, ...] = (), enqueued_at: float = 0.0,
                 trace_ref: Optional[Tuple[int, int]] = None):
        self.seq = seq
        self.kind = kind          # "statements" | "writeset" | "writeset_batch"
        self.payload = payload
        self.tables = tables
        self.enqueued_at = enqueued_at
        # (trace_id, span_id) of the originating commit's propagate span:
        # the apply side opens a *linked* span into that trace, so one
        # trace shows the cross-node propagation lag (repro.obs).
        self.trace_ref = trace_ref


class Replica:
    """One backend database replica."""

    def __init__(self, name: str, engine: Engine,
                 node: Optional[Node] = None, weight: float = 1.0):
        self.name = name
        self.engine = engine
        self.node = node
        self.weight = weight
        self.state = ReplicaState.ONLINE
        # Highest global update sequence number applied here.
        self.applied_seq = 0
        # Pending asynchronous apply work (deque: the apply pipeline pops
        # strictly from the head, which a plain list makes O(n)).
        self.apply_queue: Deque[ApplyItem] = deque()
        # Admin connection used for applying replicated updates.
        self._apply_connection: Optional[Connection] = None
        # Counters for reports.
        self.stats: Dict[str, float] = {
            "applied_items": 0, "apply_time": 0.0, "served_reads": 0,
            "served_writes": 0, "aborts": 0, "failures": 0,
        }
        self._state_listeners: List[Callable[["Replica", ReplicaState], None]] = []
        if node is not None:
            node.on_crash(lambda _n: self.mark_failed())
            node.on_recover(lambda _n: self._node_recovered())
        # Memory-aware balancing state (Tashkent+-like): tables assumed
        # resident in this replica's buffer pool.
        self.hot_tables: "OrderedSetLike" = OrderedSetLike()

    # -- state machine --------------------------------------------------------

    @property
    def is_online(self) -> bool:
        return self.state is ReplicaState.ONLINE and not self.engine.crashed \
            and (self.node is None or self.node.up)

    @property
    def can_serve(self) -> bool:
        return self.is_online or self.state is ReplicaState.DONOR

    def set_state(self, state: ReplicaState) -> None:
        if state is self.state:
            return
        self.state = state
        for listener in list(self._state_listeners):
            listener(self, state)

    def on_state_change(self, listener) -> None:
        self._state_listeners.append(listener)

    def mark_failed(self) -> None:
        self.stats["failures"] += 1
        self.set_state(ReplicaState.FAILED)
        self._apply_connection = None

    def _node_recovered(self) -> None:
        """The host came back: the replica is *recovering*, not serving —
        it must be failed back (resynchronized) before going ONLINE.
        State listeners fire, so a failover manager can react."""
        if self.state is ReplicaState.FAILED:
            self.set_state(ReplicaState.RECOVERING)

    # -- apply pipeline -------------------------------------------------------

    def apply_connection(self) -> Connection:
        if self._apply_connection is None or self._apply_connection.closed:
            database = None
            names = self.engine.database_names()
            if names:
                database = names[0]
            self._apply_connection = self.engine.connect(
                "admin", "", database=database)
        return self._apply_connection

    def enqueue(self, item: ApplyItem) -> None:
        self.apply_queue.append(item)

    def peek_batch(self, n: int) -> List[ApplyItem]:
        """The first ``n`` queued items without consuming them — the apply
        scheduler peeks, charges simulated cost, then pops, so a racing
        commit-time drain always sees the full queue."""
        return list(islice(self.apply_queue, n))

    def drain(self, n: Optional[int] = None,
              up_to_seq: Optional[int] = None) -> List[ApplyItem]:
        """Pop up to ``n`` items (and/or every item with
        ``seq <= up_to_seq``) strictly from the head of the queue."""
        drained: List[ApplyItem] = []
        while self.apply_queue:
            if n is not None and len(drained) >= n:
                break
            if up_to_seq is not None and self.apply_queue[0].seq > up_to_seq:
                break
            drained.append(self.apply_queue.popleft())
        return drained

    @property
    def lag_items(self) -> int:
        return len(self.apply_queue)

    def lag_behind(self, global_seq: int) -> int:
        return max(0, global_seq - self.applied_seq)

    # -- load proxy -------------------------------------------------------------

    @property
    def load(self) -> float:
        if self.node is not None:
            return self.node.load
        return float(len(self.apply_queue))

    def note_hot_tables(self, tables, capacity: int = 8) -> None:
        """Record recently-touched tables (an LRU 'working set' stand-in
        for Tashkent+'s in-memory-execution awareness)."""
        for table in tables:
            self.hot_tables.touch(table, capacity)

    def hotness(self, tables) -> float:
        if not tables:
            return 0.0
        hits = sum(1 for t in tables if t in self.hot_tables)
        return hits / len(tables)

    def __repr__(self) -> str:
        return (f"Replica({self.name!r}, {self.state.value}, "
                f"applied={self.applied_seq}, queue={len(self.apply_queue)})")


class OrderedSetLike:
    """A tiny LRU set (insertion-ordered dict keys)."""

    def __init__(self):
        self._items: Dict[str, None] = {}

    def touch(self, item: str, capacity: int) -> None:
        if item in self._items:
            del self._items[item]
        self._items[item] = None
        while len(self._items) > capacity:
            oldest = next(iter(self._items))
            del self._items[oldest]

    def __contains__(self, item: str) -> bool:
        return item in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)
