"""Connection pools, multipools and transferable transaction contexts
(paper section 4.3.3).

* :class:`ConnectionPool` — pools middleware sessions.  The failback
  problem is reproduced faithfully: "most database APIs do not provide
  information on the endpoint of a database connection", so after a
  failover the pool cannot tell which pooled sessions still point at the
  recovered replica; only aggressive recycling redistributes load, "but
  this defeats the advantages of a connection pool".
* :class:`MultiPool` — WebLogic-style: a primary pool with failover to a
  secondary pool when the primary's middleware is down.
* :class:`TransactionContext` — the missing industry API the paper calls
  for: pause a transaction, serialize its state, resume it on another
  connection.  Statement-mode transactions can be replayed exactly; the
  context carries the session view so consistency guarantees carry over.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .errors import MiddlewareDown, MiddlewareError
from .middleware import MiddlewareSession, ReplicationMiddleware


class ConnectionPool:
    """A fixed-size pool of middleware sessions."""

    def __init__(self, middleware: ReplicationMiddleware, size: int = 8,
                 user: str = "admin", password: str = "",
                 database: Optional[str] = None,
                 recycle_aggressively: bool = False):
        self.middleware = middleware
        self.size = size
        self.user = user
        self.password = password
        self.database = database
        # Aggressive recycling closes a session on every release so the
        # next acquire re-balances — the failback "fix" that forfeits
        # pooling benefits (section 4.3.3).
        self.recycle_aggressively = recycle_aggressively
        self._idle: List[MiddlewareSession] = []
        self._busy: List[MiddlewareSession] = []
        self.stats = {"opened": 0, "reused": 0, "recycled": 0,
                      "evicted_dead": 0}

    def acquire(self) -> MiddlewareSession:
        while self._idle:
            session = self._idle.pop()
            if session.closed:
                self.stats["evicted_dead"] += 1
                continue
            self._busy.append(session)
            self.stats["reused"] += 1
            return session
        if len(self._busy) >= self.size:
            raise MiddlewareError(f"pool exhausted ({self.size} sessions)")
        session = self.middleware.connect(self.user, self.password,
                                          self.database)
        self._busy.append(session)
        self.stats["opened"] += 1
        return session

    def release(self, session: MiddlewareSession) -> None:
        if session in self._busy:
            self._busy.remove(session)
        if session.closed:
            self.stats["evicted_dead"] += 1
            return
        if self.recycle_aggressively:
            session.close()
            self.stats["recycled"] += 1
            return
        self._idle.append(session)

    def close(self) -> None:
        for session in self._idle + self._busy:
            session.close()
        self._idle.clear()
        self._busy.clear()

    @property
    def idle_count(self) -> int:
        return len(self._idle)


class MultiPool:
    """Failover across pools (WebLogic multipool [5]): try the primary,
    fall back to the secondary when the primary middleware is down."""

    def __init__(self, pools: List[ConnectionPool]):
        if not pools:
            raise ValueError("need at least one pool")
        self.pools = pools
        self.stats = {"primary_hits": 0, "failovers": 0}

    def acquire(self) -> Tuple[MiddlewareSession, ConnectionPool]:
        last_error: Optional[Exception] = None
        for index, pool in enumerate(self.pools):
            if pool.middleware.failed:
                continue
            try:
                session = pool.acquire()
                if index == 0:
                    self.stats["primary_hits"] += 1
                else:
                    self.stats["failovers"] += 1
                return session, pool
            except (MiddlewareDown, MiddlewareError) as exc:
                last_error = exc
        raise MiddlewareDown(
            f"every pool is down ({last_error})")


class TransactionContext:
    """A paused, serialized, transferable transaction (the API the paper's
    industrial agenda asks for — section 5.2 'Transaction abstraction').

    Only statement-mode transactions can be resumed exactly: the context
    carries the ordered statement log; resuming replays it inside a new
    transaction on another session.  (Writeset-mode transactions live
    inside one replica's uncommitted state and cannot be externalized —
    the very asymmetry section 4.3.3 describes.)
    """

    def __init__(self, statements: List[Tuple[str, list]],
                 isolation: Optional[str],
                 last_commit_seq: int, last_seen_seq: int,
                 user: str, database: Optional[str]):
        self.statements = statements
        self.isolation = isolation
        self.last_commit_seq = last_commit_seq
        self.last_seen_seq = last_seen_seq
        self.user = user
        self.database = database

    @classmethod
    def pause(cls, session: MiddlewareSession) -> "TransactionContext":
        """Capture and abort the session's open transaction, returning a
        context that can resume it elsewhere."""
        if not session.in_transaction:
            raise MiddlewareError("no transaction to pause")
        if session.middleware.config.replication != "statement" \
                and session._txn_is_write:
            raise MiddlewareError(
                "writeset-mode transactions cannot be externalized "
                "(section 4.3.3: the transaction lives at one replica)")
        context = cls(
            statements=list(session._txn_statements),
            isolation=getattr(session, "_txn_isolation", None),
            last_commit_seq=session.view.last_commit_seq,
            last_seen_seq=session.view.last_seen_seq,
            user=session.user, database=session.database,
        )
        session.rollback()
        return context

    @classmethod
    def capture_for_retry(cls, statements: List[Tuple[str, list]],
                          isolation: Optional[str],
                          session: MiddlewareSession) -> "TransactionContext":
        """Build a context from an *already dead* transaction's statement
        log, for the resilience layer's automatic replay-on-a-survivor.

        Unlike :meth:`pause`, this accepts writeset-mode transactions:
        the externalization refusal exists because a *live* writeset
        transaction's state cannot leave its replica — but a transaction
        whose replica died before commit left no state anywhere, so
        replaying its logged statements elsewhere is exact.
        """
        return cls(
            statements=[(sql, list(params)) for sql, params in statements],
            isolation=isolation,
            last_commit_seq=session.view.last_commit_seq,
            last_seen_seq=session.view.last_seen_seq,
            user=session.user, database=session.database,
        )

    def resume(self, session: MiddlewareSession) -> None:
        """Replay the paused transaction on ``session`` (left open — the
        caller continues issuing statements and finally commits)."""
        if session.in_transaction:
            raise MiddlewareError("target session already has a transaction")
        session.view.last_commit_seq = max(
            session.view.last_commit_seq, self.last_commit_seq)
        session.view.last_seen_seq = max(
            session.view.last_seen_seq, self.last_seen_seq)
        session.begin(self.isolation)
        for sql, params in self.statements:
            session.execute(sql, params)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "statements": self.statements,
            "isolation": self.isolation,
            "last_commit_seq": self.last_commit_seq,
            "last_seen_seq": self.last_seen_seq,
            "user": self.user,
            "database": self.database,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TransactionContext":
        return cls(
            statements=[(sql, list(params))
                        for sql, params in data["statements"]],
            isolation=data.get("isolation"),
            last_commit_seq=data.get("last_commit_seq", 0),
            last_seen_seq=data.get("last_seen_seq", 0),
            user=data.get("user", "admin"),
            database=data.get("database"),
        )
