"""Data partitioning across replica groups (Figure 2 of the paper).

"Data is logically split into different partitions, each one being
replicated ...  The benefits of this approach are similar to RAID-0 for
disks: updates can be done in parallel to partitioned data segments.  Read
latency can also be improved by exploiting intra-query parallelism."

A :class:`PartitionedCluster` owns N partition groups (each its own
:class:`ReplicationMiddleware`).  Tables registered with a partitioner
route by key; unregistered ("global") tables are broadcast to every group.
Queries whose WHERE clause pins the partition key go to one group; others
scatter-gather, with the basic aggregate merges (COUNT/SUM) done at the
middleware — the distributed-joins limitation of section 5.1 is surfaced
as an explicit error.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..sqlengine import ast_nodes as ast
from ..sqlengine.executor import Result
from ..sqlengine.parser import parse_script
from .analysis import analyze
from .errors import MiddlewareError, UnsupportedStatementError
from .middleware import ReplicationMiddleware


class Partitioner:
    """Maps a partition-key value to a partition index."""

    kind = "base"

    def __init__(self, partitions: int):
        self.partitions = partitions

    def partition_for(self, value: Any) -> int:
        raise NotImplementedError


class HashPartitioner(Partitioner):
    kind = "hash"

    def partition_for(self, value: Any) -> int:
        # stable across runs (no PYTHONHASHSEED dependence for ints/strs)
        if isinstance(value, int):
            return value % self.partitions
        if isinstance(value, str):
            acc = 0
            for ch in value:
                acc = (acc * 131 + ord(ch)) % 1000000007
            return acc % self.partitions
        return abs(hash(value)) % self.partitions


class RangePartitioner(Partitioner):
    """``bounds`` are the inclusive upper bounds of the first N-1
    partitions: bounds=[100, 200] -> [..100], (100..200], (200..]."""

    kind = "range"

    def __init__(self, bounds: Sequence[Any]):
        super().__init__(len(bounds) + 1)
        self.bounds = list(bounds)

    def partition_for(self, value: Any) -> int:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                return index
        return len(self.bounds)


class ListPartitioner(Partitioner):
    """Explicit value lists per partition, e.g. geographic regions."""

    kind = "list"

    def __init__(self, value_lists: Sequence[Sequence[Any]]):
        super().__init__(len(value_lists))
        self._map: Dict[Any, int] = {}
        for index, values in enumerate(value_lists):
            for value in values:
                self._map[value] = index

    def partition_for(self, value: Any) -> int:
        if value not in self._map:
            raise MiddlewareError(
                f"value {value!r} not assigned to any list partition")
        return self._map[value]


class PartitionedTable:
    __slots__ = ("table", "key_column", "partitioner")

    def __init__(self, table: str, key_column: str, partitioner: Partitioner):
        self.table = table.lower()
        self.key_column = key_column.lower()
        self.partitioner = partitioner


class PartitionedCluster:
    """Figure 2: partitions, each replicated by its own middleware."""

    def __init__(self, groups: Sequence[ReplicationMiddleware],
                 name: str = "partitioned"):
        if not groups:
            raise ValueError("need at least one partition group")
        self.name = name
        self.groups: List[ReplicationMiddleware] = list(groups)
        self.tables: Dict[str, PartitionedTable] = {}
        self.stats = {"single_partition": 0, "scatter_gather": 0,
                      "broadcast_writes": 0}

    def register_table(self, table: str, key_column: str,
                       partitioner: Partitioner) -> None:
        if partitioner.partitions != len(self.groups):
            raise ValueError(
                f"partitioner has {partitioner.partitions} partitions but "
                f"cluster has {len(self.groups)} groups")
        self.tables[table.lower()] = PartitionedTable(
            table, key_column, partitioner)

    def connect(self, user: str = "admin", password: str = "",
                database: Optional[str] = None) -> "PartitionedSession":
        sessions = [g.connect(user, password, database) for g in self.groups]
        return PartitionedSession(self, sessions)

    def pump(self) -> int:
        return sum(g.pump() for g in self.groups)

    def check_convergence(self) -> bool:
        return all(g.check_convergence() for g in self.groups)


class PartitionedSession:
    """A client session over the partitioned cluster."""

    def __init__(self, cluster: PartitionedCluster, sessions):
        self.cluster = cluster
        self.sessions = sessions
        self.closed = False

    def execute(self, sql: str, params: Optional[List[Any]] = None) -> Result:
        result = Result()
        for statement in parse_script(sql):
            result = self._execute_one(statement, sql, list(params or []))
        return result

    def close(self) -> None:
        for session in self.sessions:
            session.close()
        self.closed = True

    def __enter__(self) -> "PartitionedSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _execute_one(self, statement: ast.Statement, sql_text: str,
                     params: List[Any]) -> Result:
        info = analyze(statement)
        table, spec = self._partitioned_table_of(info)

        if info.is_ddl or spec is None:
            # global table or DDL: all groups must see it
            if info.is_write or info.is_ddl:
                self.cluster.stats["broadcast_writes"] += 1
                result = Result()
                for session in self.sessions:
                    result = session.execute(sql_text, params)
                return result
            # read of a global table: any one group
            return self.sessions[0].execute(sql_text, params)

        targets = self._route(statement, spec, params)
        if targets is None:
            if info.is_write:
                raise UnsupportedStatementError(
                    f"write to partitioned table {spec.table!r} without a "
                    "partition-key predicate would need cross-partition "
                    "coordination (section 5.1: open problem)")
            self.cluster.stats["scatter_gather"] += 1
            return self._scatter_gather(statement, sql_text, params,
                                        self.sessions)
        if len(targets) == 1:
            self.cluster.stats["single_partition"] += 1
            return self.sessions[targets[0]].execute(sql_text, params)
        if info.is_write:
            raise UnsupportedStatementError(
                "a single write statement may not span partitions")
        self.cluster.stats["scatter_gather"] += 1
        return self._scatter_gather(statement, sql_text, params,
                                    [self.sessions[t] for t in targets])

    def _partitioned_table_of(self, info):
        for table in info.all_tables():
            short = table.split(".")[-1]
            if short in self.cluster.tables:
                return short, self.cluster.tables[short]
        return None, None

    # -- routing -------------------------------------------------------------

    def _route(self, statement: ast.Statement, spec: PartitionedTable,
               params: List[Any]) -> Optional[List[int]]:
        """Partition indices this statement pins, or None for 'all'."""
        if isinstance(statement, ast.InsertStatement):
            return self._route_insert(statement, spec, params)
        where = getattr(statement, "where", None)
        if isinstance(statement, ast.SelectStatement):
            where = statement.where
        values = _key_values_from_where(where, spec.key_column, params)
        if values is None:
            return None
        indices = sorted({
            spec.partitioner.partition_for(value) for value in values})
        return indices

    def _route_insert(self, statement: ast.InsertStatement,
                      spec: PartitionedTable,
                      params: List[Any]) -> Optional[List[int]]:
        if statement.columns is None or statement.rows is None:
            return None
        lowered = [c.lower() for c in statement.columns]
        if spec.key_column not in lowered:
            return None
        key_index = lowered.index(spec.key_column)
        indices = set()
        for row in statement.rows:
            expr = row[key_index]
            value = _literal_value(expr, params)
            if value is None:
                return None
            indices.add(spec.partitioner.partition_for(value))
        return sorted(indices)

    # -- scatter-gather ----------------------------------------------------------

    @staticmethod
    def _scatter_gather(statement: ast.Statement, sql_text: str,
                        params: List[Any], sessions) -> Result:
        """Execute on every target group and merge through the shared
        scatter planner (``repro.shard.merge``) — the same code path the
        shard tier's router uses, so AVG is rewritten to SUM + COUNT and
        LIMIT/OFFSET are re-applied after the cross-partition ORDER BY
        re-sort instead of being (wrongly) trusted per partition."""
        # function-level import: repro.core.__init__ imports this module
        # eagerly, and repro.shard imports repro.core
        from ..shard.merge import plan_scatter
        plan = plan_scatter(statement, sql_text, params)
        results = [
            session.execute_one_parsed(plan.statement, plan.sql_text,
                                       params)
            for session in sessions
        ]
        return plan.merge(results)


# ---------------------------------------------------------------------------
# predicate extraction
# ---------------------------------------------------------------------------

def _literal_value(expr, params: List[Any]):
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Param) and expr.index < len(params):
        return params[expr.index]
    return None


def _key_values_from_where(where, key_column: str,
                           params: List[Any]) -> Optional[List[Any]]:
    """Values the WHERE clause pins ``key_column`` to, or None.

    Recognizes ``key = literal``, ``key IN (literals)`` and conjunctions
    containing either; disjunctions merge both sides' pins.
    """
    if where is None:
        return None
    if isinstance(where, ast.BinaryOp):
        if where.op == "AND":
            left = _key_values_from_where(where.left, key_column, params)
            right = _key_values_from_where(where.right, key_column, params)
            if left is not None and right is not None:
                both = [v for v in left if v in right]
                return both or left
            return left if left is not None else right
        if where.op == "OR":
            left = _key_values_from_where(where.left, key_column, params)
            right = _key_values_from_where(where.right, key_column, params)
            if left is None or right is None:
                return None
            return left + right
        if where.op == "=":
            column, literal = None, None
            if isinstance(where.left, ast.ColumnRef):
                column, literal = where.left, where.right
            elif isinstance(where.right, ast.ColumnRef):
                column, literal = where.right, where.left
            if column is not None and column.name.lower() == key_column:
                value = _literal_value(literal, params)
                if value is not None:
                    return [value]
        return None
    if isinstance(where, ast.InList) and not where.negated \
            and isinstance(where.expr, ast.ColumnRef) \
            and where.expr.name.lower() == key_column and where.items:
        values = [_literal_value(item, params) for item in where.items]
        if all(v is not None for v in values):
            return values
    return None
