"""Autonomic replica provisioning (paper section 4.4.2, citing [9]).

"Autonomic provisioning of database replicas depends to a large extent on
the system's ability to add and remove replicas.  Being able to model and
predict replica synchronization time and its associated resource cost is
key to efficient autonomic middleware-based replicated databases."

Two pieces:

* :class:`SyncTimePredictor` — the model the paper asks for: given a
  backup size, the recovery-log tail, the apply cost and the cluster's
  current update rate, predict how long a new replica needs to reach the
  online state (and whether it can catch up at all — the §4.4.2 race
  between replay rate and update rate).
* :class:`AutonomicProvisioner` — a policy loop that watches load and
  freshness and decides when to add or retire replicas, refusing to start
  a synchronization it predicts will never converge.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .costmodel import CostModel
from .errors import MiddlewareError
from .management import ClusterManager
from .middleware import ReplicationMiddleware
from .replica import Replica


class SyncPrediction:
    """Predicted cost of bringing one replica online."""

    __slots__ = ("feasible", "restore_seconds", "catchup_seconds",
                 "total_seconds", "entries_to_replay")

    def __init__(self, feasible: bool, restore_seconds: float,
                 catchup_seconds: float, entries_to_replay: int):
        self.feasible = feasible
        self.restore_seconds = restore_seconds
        self.catchup_seconds = catchup_seconds
        self.total_seconds = restore_seconds + catchup_seconds
        self.entries_to_replay = entries_to_replay

    def __repr__(self) -> str:
        if not self.feasible:
            return "SyncPrediction(INFEASIBLE: update rate >= replay rate)"
        return (f"SyncPrediction({self.total_seconds:.1f}s = "
                f"{self.restore_seconds:.1f}s restore + "
                f"{self.catchup_seconds:.1f}s catch-up)")


class SyncTimePredictor:
    """The synchronization-time model of the paper's agenda.

    Parameters:
        cost: the cluster's cost model (apply costs).
        restore_rows_per_second: bulk-load rate during restore.
        replay_parallelism: apply workers used during catch-up.
    """

    def __init__(self, cost: Optional[CostModel] = None,
                 restore_rows_per_second: float = 50000.0,
                 replay_parallelism: int = 1):
        self.cost = cost or CostModel()
        self.restore_rows_per_second = restore_rows_per_second
        self.replay_parallelism = max(1, replay_parallelism)

    def replay_rate(self) -> float:
        """Entries per second a recovering replica can apply."""
        io = self.cost.apply_io_fraction
        per_entry = (self.cost.writeset_apply * (1 - io)
                     + self.cost.writeset_apply * io
                     / self.replay_parallelism)
        return 1.0 / per_entry

    def predict(self, backup_rows: int, log_entries_behind: int,
                cluster_update_rate: float) -> SyncPrediction:
        """Predict time-to-online for a replica restored from a backup of
        ``backup_rows`` rows that must then replay ``log_entries_behind``
        entries while the cluster keeps committing at
        ``cluster_update_rate`` transactions/second.

        Catch-up is a pursuit problem: the replica applies at R entries/s
        while the gap grows at U entries/s; it converges only when R > U,
        taking gap / (R - U) seconds.
        """
        restore_seconds = backup_rows / self.restore_rows_per_second
        # the gap grows while the restore itself runs
        gap = log_entries_behind + cluster_update_rate * restore_seconds
        rate = self.replay_rate()
        if rate <= cluster_update_rate:
            return SyncPrediction(False, restore_seconds, float("inf"),
                                  int(gap))
        catchup_seconds = gap / (rate - cluster_update_rate)
        return SyncPrediction(True, restore_seconds, catchup_seconds,
                              int(gap))


class AutonomicDecision:
    __slots__ = ("action", "reason", "prediction")

    def __init__(self, action: str, reason: str,
                 prediction: Optional[SyncPrediction] = None):
        self.action = action        # "add" | "remove" | "hold"
        self.reason = reason
        self.prediction = prediction

    def __repr__(self) -> str:
        return f"AutonomicDecision({self.action}: {self.reason})"


class AutonomicProvisioner:
    """A simple sense-decide-act loop over a middleware cluster.

    Sensors: mean replica load (CPU queue proxy) and apply lag.
    Actuators: :class:`ClusterManager` add/remove (recovery-log strategy).
    Policy: scale out when sustained load exceeds ``high_watermark``
    (provided the sync is predicted feasible), scale in below
    ``low_watermark`` while keeping ``min_replicas``.
    """

    def __init__(self, middleware: ReplicationMiddleware,
                 predictor: Optional[SyncTimePredictor] = None,
                 replica_factory: Optional[Callable[[str], Replica]] = None,
                 high_watermark: float = 4.0,
                 low_watermark: float = 0.5,
                 min_replicas: int = 2,
                 max_replicas: int = 8,
                 max_sync_seconds: float = 3600.0):
        self.middleware = middleware
        self.manager = ClusterManager(middleware)
        self.predictor = predictor or SyncTimePredictor()
        self.replica_factory = replica_factory
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.max_sync_seconds = max_sync_seconds
        self.decisions: List[AutonomicDecision] = []
        self._added = 0

    # -- sensors ------------------------------------------------------------

    def mean_load(self) -> float:
        online = self.middleware.online_replicas()
        if not online:
            return float("inf")
        return sum(r.load for r in online) / len(online)

    def total_rows(self) -> int:
        online = self.middleware.online_replicas()
        if not online:
            return 0
        engine = online[0].engine
        return sum(
            table.version_count()
            for database in engine.databases.values()
            for table in database.tables.values()
        )

    # -- the decision step ------------------------------------------------------

    def evaluate(self, update_rate: float) -> AutonomicDecision:
        """One sense-decide step.  ``update_rate`` is the cluster's current
        write transaction rate (the caller measures it)."""
        load = self.mean_load()
        online = len(self.middleware.online_replicas())
        if load > self.high_watermark and online < self.max_replicas:
            prediction = self.predictor.predict(
                backup_rows=self.total_rows(),
                log_entries_behind=0,
                cluster_update_rate=update_rate)
            if not prediction.feasible:
                decision = AutonomicDecision(
                    "hold",
                    "scale-out wanted but synchronization would never "
                    "catch up at the current update rate (section 4.4.2)",
                    prediction)
            elif prediction.total_seconds > self.max_sync_seconds:
                decision = AutonomicDecision(
                    "hold",
                    f"predicted sync {prediction.total_seconds:.0f}s "
                    f"exceeds budget {self.max_sync_seconds:.0f}s",
                    prediction)
            else:
                decision = AutonomicDecision(
                    "add", f"mean load {load:.1f} > {self.high_watermark}",
                    prediction)
        elif load < self.low_watermark and online > self.min_replicas:
            decision = AutonomicDecision(
                "remove", f"mean load {load:.1f} < {self.low_watermark}")
        else:
            decision = AutonomicDecision(
                "hold", f"mean load {load:.1f} within watermarks")
        self.decisions.append(decision)
        return decision

    # -- actuators -----------------------------------------------------------

    def act(self, decision: AutonomicDecision) -> Optional[str]:
        """Apply a decision; returns the affected replica name (or None)."""
        if decision.action == "add":
            if self.replica_factory is None:
                raise MiddlewareError(
                    "autonomic scale-out needs a replica_factory")
            self._added += 1
            replica = self.replica_factory(f"auto{self._added}")
            self.manager.add_replica(replica, strategy="recovery_log")
            return replica.name
        if decision.action == "remove":
            candidates = self.middleware.online_replicas()
            victim = max(candidates, key=lambda r: r.name)
            if len(candidates) > self.min_replicas:
                self.manager.remove_replica(victim.name)
                return victim.name
        return None

    def step(self, update_rate: float) -> AutonomicDecision:
        decision = self.evaluate(update_rate)
        self.act(decision)
        return decision
