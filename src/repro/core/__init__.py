"""``repro.core`` — the replication middleware (the paper's subject).

Entry point: build :class:`~repro.core.replica.Replica` objects around
engines, configure a :class:`~repro.core.middleware.MiddlewareConfig`, and
create a :class:`~repro.core.middleware.ReplicationMiddleware`.  Sessions
obtained from :meth:`ReplicationMiddleware.connect` speak plain SQL.
"""

from .admission import (
    AdmissionGate, AdmissionRejected, BulkheadLane, TokenBucket, default_gate,
)
from .analysis import StatementInfo, analyze, rewrite_nondeterministic
from .autonomic import (
    AutonomicDecision, AutonomicProvisioner, SyncPrediction,
    SyncTimePredictor,
)
from .backup import BackupCoordinator, ClusterBackup
from .certifier import CertificationOutcome, Certifier, CertifierDown
from .consistency import (
    ClusterView, ConsistencyProtocol, EventualConsistency,
    GeneralizedSnapshotIsolation, OneCopySerializability, PROTOCOLS,
    PrefixConsistentSnapshotIsolation, ReadCommitted,
    ReplicatedSnapshotIsolationPrimaryCopy, SessionView,
    StrongSessionSnapshotIsolation, StrongSnapshotIsolation,
    protocol_by_name,
)
from .costmodel import CostModel, default_cost_model
from .errors import (
    CircuitOpen, ClusterDivergence, MiddlewareDown, MiddlewareError,
    Overloaded, QuorumLost, ReplicaUnavailable, RequestTimeout,
    RetryExhausted, UnsupportedStatementError,
)
from .applysched import ApplyUnit, conflict_groups, lane_makespan
from .failover import FailoverManager, FailoverReport, VirtualIP, promote_and_switch
from .groupcommit import CommitRequest, GroupCommitCoordinator
from .interception import (
    DESIGNS, DriverInterception, EngineInterception, InterceptionDesign,
    ProtocolProxyInterception, design_by_name,
)
from .loadbalancer import (
    BalancingLevel, LeastPendingPolicy, LoadBalancer, MemoryAwarePolicy,
    NoReplicaAvailable, POLICIES, Policy, RandomPolicy, RoundRobinPolicy,
    RoutingContext, WeightedPolicy,
)
from .management import ClusterManager, ManagementReport
from .middleware import MiddlewareConfig, MiddlewareSession, ReplicationMiddleware
from .monitoring import Monitor, MonitorEvent
from .partitioning import (
    HashPartitioner, ListPartitioner, PartitionedCluster, PartitionedSession,
    PartitionedTable, Partitioner, RangePartitioner,
)
from .quorum import QuorumGuard, ReconciliationReport, Reconciler, RowDifference
from .recoverylog import RecoveryLog, RecoveryLogEntry
from .replica import ApplyItem, Replica, ReplicaState
from .resilience import (
    AdmissionController, BreakerState, CircuitBreaker, Deadline,
    ResilienceCoordinator, ResiliencePolicy, RetryPolicy,
)
from .sessions import ConnectionPool, MultiPool, TransactionContext
from .wan import Site, WanSession, WanSystem
from .writesets import (
    ApplyReport, TriggerBasedExtractor, apply_writeset, conflict_keys,
    extract_writeset_engine,
)

__all__ = [
    "AdmissionController", "AdmissionGate", "AdmissionRejected",
    "ApplyItem", "ApplyReport", "ApplyUnit", "BulkheadLane", "TokenBucket",
    "default_gate",
    "AutonomicDecision",
    "AutonomicProvisioner", "SyncPrediction", "SyncTimePredictor", "BackupCoordinator", "BalancingLevel",
    "BreakerState", "CertificationOutcome", "Certifier", "CertifierDown",
    "CircuitBreaker", "CircuitOpen", "ClusterBackup",
    "ClusterDivergence", "ClusterManager", "ClusterView", "CommitRequest",
    "ConnectionPool",
    "ConsistencyProtocol", "CostModel", "DESIGNS", "Deadline",
    "DriverInterception",
    "EngineInterception", "EventualConsistency", "FailoverManager",
    "FailoverReport", "GeneralizedSnapshotIsolation",
    "GroupCommitCoordinator", "HashPartitioner",
    "InterceptionDesign", "LeastPendingPolicy", "ListPartitioner",
    "LoadBalancer", "ManagementReport", "MemoryAwarePolicy",
    "MiddlewareConfig", "MiddlewareDown", "MiddlewareError",
    "MiddlewareSession", "Monitor", "MonitorEvent", "MultiPool",
    "NoReplicaAvailable", "OneCopySerializability", "Overloaded",
    "POLICIES", "PROTOCOLS",
    "PartitionedCluster", "PartitionedSession", "PartitionedTable",
    "Partitioner", "Policy", "PrefixConsistentSnapshotIsolation",
    "ProtocolProxyInterception", "QuorumGuard", "QuorumLost", "RandomPolicy",
    "RangePartitioner", "ReadCommitted", "ReconciliationReport",
    "Reconciler", "RecoveryLog", "RecoveryLogEntry", "Replica",
    "ReplicaState", "ReplicaUnavailable",
    "ReplicatedSnapshotIsolationPrimaryCopy", "ReplicationMiddleware",
    "RequestTimeout", "ResilienceCoordinator", "ResiliencePolicy",
    "RetryExhausted", "RetryPolicy",
    "RoundRobinPolicy", "RoutingContext", "RowDifference", "SessionView",
    "Site", "StatementInfo", "StrongSessionSnapshotIsolation",
    "StrongSnapshotIsolation", "TransactionContext",
    "TriggerBasedExtractor", "UnsupportedStatementError", "VirtualIP",
    "WanSession", "WanSystem", "WeightedPolicy", "analyze", "apply_writeset",
    "conflict_groups", "conflict_keys", "default_cost_model", "design_by_name",
    "extract_writeset_engine", "lane_makespan", "promote_and_switch",
    "protocol_by_name",
    "rewrite_nondeterministic",
]
