"""One-copy serializability via eager statement broadcast.

The original correctness criterion for replicated data (section 3.3) and
C-JDBC's default.  Writes are broadcast in total order and applied at
every online replica *before* the commit is acknowledged, so every replica
is always current and reads may go anywhere.  The price is the eager
write path: every replica executes every update (Gray's scaling ceiling,
benchmark E06) and commit latency includes the total-order round.
"""

from __future__ import annotations

from .base import ClusterView, ConsistencyProtocol, SessionView


class OneCopySerializability(ConsistencyProtocol):
    name = "1SR"
    write_mode = "broadcast"
    first_committer_wins = True

    def read_eligible(self, replica, session: SessionView,
                      cluster: ClusterView) -> bool:
        # Eager broadcast keeps every online replica current.
        return True
