"""Pluggable consistency protocols (paper sections 3.3 / 5.1)."""

from .base import ClusterView, ConsistencyProtocol, SessionView
from .eventual import EventualConsistency
from .gsi import GeneralizedSnapshotIsolation, PrefixConsistentSnapshotIsolation
from .one_sr import OneCopySerializability
from .read_committed import ReadCommitted
from .rsi_pc import ReplicatedSnapshotIsolationPrimaryCopy
from .session import StrongSessionSnapshotIsolation
from .si import StrongSnapshotIsolation

PROTOCOLS = {
    "1sr": OneCopySerializability,
    "strong-si": StrongSnapshotIsolation,
    "gsi": GeneralizedSnapshotIsolation,
    "pcsi": PrefixConsistentSnapshotIsolation,
    "strong-session-si": StrongSessionSnapshotIsolation,
    "rsi-pc": ReplicatedSnapshotIsolationPrimaryCopy,
    "read-committed": ReadCommitted,
    "eventual": EventualConsistency,
}


def protocol_by_name(name: str) -> ConsistencyProtocol:
    factory = PROTOCOLS.get(name.lower())
    if factory is None:
        raise ValueError(
            f"unknown consistency protocol {name!r}; "
            f"choose from {sorted(PROTOCOLS)}")
    return factory()


__all__ = [
    "ClusterView", "ConsistencyProtocol", "EventualConsistency",
    "GeneralizedSnapshotIsolation", "OneCopySerializability", "PROTOCOLS",
    "PrefixConsistentSnapshotIsolation", "ReadCommitted",
    "ReplicatedSnapshotIsolationPrimaryCopy", "SessionView",
    "StrongSessionSnapshotIsolation", "StrongSnapshotIsolation",
    "protocol_by_name",
]
