"""Generalized and prefix-consistent snapshot isolation (Tashkent [14]).

GSI lets a transaction read from *any* committed prefix of the global
commit order — stale but consistent snapshots, so any replica is read-
eligible and no waiting is ever needed.  PCSI strengthens GSI per client:
a session's snapshot must include at least that session's own committed
transactions (read-your-writes), which is the guarantee Tashkent ships.
"""

from __future__ import annotations

from .base import ClusterView, ConsistencyProtocol, SessionView


class GeneralizedSnapshotIsolation(ConsistencyProtocol):
    name = "GSI"
    write_mode = "certify"
    first_committer_wins = True

    def read_eligible(self, replica, session: SessionView,
                      cluster: ClusterView) -> bool:
        return True


class PrefixConsistentSnapshotIsolation(ConsistencyProtocol):
    name = "PCSI"
    write_mode = "certify"
    first_committer_wins = True

    def read_eligible(self, replica, session: SessionView,
                      cluster: ClusterView) -> bool:
        return replica.applied_seq >= session.last_commit_seq

    def min_read_seq(self, session: SessionView, cluster: ClusterView) -> int:
        return session.last_commit_seq
