"""Strong (1-copy) snapshot isolation.

Global strong SI [22]: a transaction's snapshot must include *every*
transaction committed anywhere in the cluster before it started.  Reads
are therefore only eligible on replicas that have applied the full global
prefix — under asynchronous apply this forces waits on lagging replicas,
which is exactly the freshness/throughput tension the GSI family relaxes.
Commits go through first-committer-wins certification.
"""

from __future__ import annotations

from .base import ClusterView, ConsistencyProtocol, SessionView


class StrongSnapshotIsolation(ConsistencyProtocol):
    name = "strong-SI"
    write_mode = "certify"
    first_committer_wins = True

    def read_eligible(self, replica, session: SessionView,
                      cluster: ClusterView) -> bool:
        return replica.applied_seq >= cluster.global_seq

    def min_read_seq(self, session: SessionView, cluster: ClusterView) -> int:
        return cluster.global_seq
