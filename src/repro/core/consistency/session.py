"""Strong session snapshot isolation [22].

Monotonic snapshots per session: every read must see at least everything
the session has already seen (reads *and* writes), while different
sessions may observe different prefixes.  The practical sweet spot the
paper's consistency discussion points at — cheaper than strong SI, no
time-travel for any single client.
"""

from __future__ import annotations

from .base import ClusterView, ConsistencyProtocol, SessionView


class StrongSessionSnapshotIsolation(ConsistencyProtocol):
    name = "strong-session-SI"
    write_mode = "certify"
    first_committer_wins = True

    def read_eligible(self, replica, session: SessionView,
                      cluster: ClusterView) -> bool:
        return replica.applied_seq >= session.last_seen_seq

    def min_read_seq(self, session: SessionView, cluster: ClusterView) -> int:
        return session.last_seen_seq
