"""Eventual consistency [34] — the cloud-era model the paper's agenda
(section 5.1) says "could also require applications to be written
differently".

Updates commit locally and propagate asynchronously with no certification;
apply order still follows the global sequence, so replicas converge when
the system quiesces (last-writer-wins per row).  During partitions each
side keeps accepting writes — divergence is possible and must be
reconciled afterwards (see ``repro.core.quorum``).
"""

from __future__ import annotations

from .base import ClusterView, ConsistencyProtocol, SessionView


class EventualConsistency(ConsistencyProtocol):
    name = "eventual"
    write_mode = "async"
    first_committer_wins = False

    def read_eligible(self, replica, session: SessionView,
                      cluster: ClusterView) -> bool:
        return True
