"""Read committed — "the default setting in all DBMS ... which most
production applications use for performance reasons" (section 4.1.2).

The paper's agenda explicitly calls for research "targeting the very
common read-committed transaction isolation level".  In this protocol the
middleware still orders writesets globally (replicas must converge) but
performs **no first-committer-wins check**: concurrent writers both
commit, the later writeset overwrites — lost updates are possible, exactly
as applications running read-committed already accept.
"""

from __future__ import annotations

from .base import ClusterView, ConsistencyProtocol, SessionView


class ReadCommitted(ConsistencyProtocol):
    name = "read-committed"
    write_mode = "certify"
    first_committer_wins = False

    def read_eligible(self, replica, session: SessionView,
                      cluster: ClusterView) -> bool:
        return True
