"""RSI-PC — replicated snapshot isolation with primary copy (Ganymed [28]).

All update transactions execute on a designated *master* replica; read-only
transactions run on satellite replicas at whatever snapshot the satellite
has (optionally session-monotonic).  This is the protocol behind satellite
databases and legacy scale-out (paper section 2.1): the master stays
authoritative while cheap satellites absorb reads.
"""

from __future__ import annotations

from .base import ClusterView, ConsistencyProtocol, SessionView


class ReplicatedSnapshotIsolationPrimaryCopy(ConsistencyProtocol):
    name = "RSI-PC"
    write_mode = "master"
    first_committer_wins = True

    def __init__(self, session_monotonic: bool = True):
        self.session_monotonic = session_monotonic

    def read_eligible(self, replica, session: SessionView,
                      cluster: ClusterView) -> bool:
        if not self.session_monotonic:
            return True
        return replica.applied_seq >= session.last_commit_seq

    def min_read_seq(self, session: SessionView, cluster: ClusterView) -> int:
        return session.last_commit_seq if self.session_monotonic else 0
