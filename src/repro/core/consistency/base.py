"""Pluggable consistency protocols (paper sections 3.3 and 5.1).

C-JDBC "provides pluggable consistency protocols and uses 1SR by default";
the paper's research agenda asks for exactly this pluggability so new
models can be compared inside one middleware.  Every protocol answers
three questions:

* **write mode** — how update transactions propagate:
  ``broadcast`` (eager statement broadcast, 1SR), ``certify``
  (execute-locally + writeset certification, the SI family), ``master``
  (all updates on a primary, Ganymed's RSI-PC) or ``async``
  (commit locally, propagate lazily, eventual consistency);
* **read eligibility** — which replicas are fresh enough for this
  session's reads;
* **conflict rule** — whether certification aborts on overlap
  (first-committer-wins) or not.
"""

from __future__ import annotations

from typing import Optional


class ClusterView:
    """The cluster facts a protocol may consult."""

    __slots__ = ("global_seq", "master_name")

    def __init__(self, global_seq: int, master_name: Optional[str] = None):
        self.global_seq = global_seq
        self.master_name = master_name


class SessionView:
    """Per-session consistency bookkeeping.

    ``last_commit_seq`` — highest global sequence this session committed;
    ``last_seen_seq`` — highest sequence this session has observed (reads
    included), for monotonic-reads guarantees.
    """

    __slots__ = ("last_commit_seq", "last_seen_seq")

    def __init__(self):
        self.last_commit_seq = 0
        self.last_seen_seq = 0


class ConsistencyProtocol:
    """Base protocol: generalized SI semantics (any prefix is readable)."""

    name = "base"
    write_mode = "certify"            # broadcast | certify | master | async
    first_committer_wins = True

    def read_eligible(self, replica, session: SessionView,
                      cluster: ClusterView) -> bool:
        """May this session read from ``replica`` right now?"""
        return True

    def min_read_seq(self, session: SessionView,
                     cluster: ClusterView) -> int:
        """The freshness watermark a read replica must have applied; the
        middleware may *wait* for a replica to reach it when no replica
        qualifies immediately."""
        return 0

    def note_read(self, session: SessionView, replica_seq: int) -> None:
        session.last_seen_seq = max(session.last_seen_seq, replica_seq)

    def note_commit(self, session: SessionView, seq: int) -> None:
        session.last_commit_seq = max(session.last_commit_seq, seq)
        session.last_seen_seq = max(session.last_seen_seq, seq)

    def describe(self) -> str:
        return f"{self.name} (writes: {self.write_mode})"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"
