"""Middleware-level errors."""

from __future__ import annotations


class MiddlewareError(Exception):
    """Base class for replication-middleware failures."""


class MiddlewareDown(MiddlewareError):
    """The middleware instance itself has failed — with a centralized
    design this is a total outage (paper section 3.2)."""


class UnsupportedStatementError(MiddlewareError):
    """The statement cannot be replicated safely under the configured
    policy (e.g. ``UPDATE t SET x = RAND()`` under statement replication
    with the 'reject' non-determinism policy — section 4.3.2)."""


class ReplicaUnavailable(MiddlewareError):
    """The operation needs a specific replica that cannot serve."""


class ClusterDivergence(MiddlewareError):
    """Replicas no longer agree on committed data; manual reconciliation
    required (sections 4.3.2 / 4.3.4.3)."""


class QuorumLost(MiddlewareError):
    """This partition side does not hold a quorum; updates are refused to
    preserve consistency (CAP discussion, section 4.3.4.3)."""
