"""Middleware-level errors — the client-visible error taxonomy.

The hierarchy below is what a client of the replication middleware can
observe.  The paper's complaint (section 5.1) is that prototypes are only
evaluated on the happy path; a resilient middleware must instead give the
client a *small, actionable* set of failure verdicts:

``MiddlewareError``
    Base class for every middleware failure.

    * ``MiddlewareDown`` — the middleware instance itself died (SPOF,
      section 3.2).  Nothing the client does on this session will work.
    * ``UnsupportedStatementError`` — deterministic refusal: the SQL can
      never replicate safely under the configured policy.  Retrying is
      pointless.
    * ``ClusterDivergence`` / ``QuorumLost`` — cluster-level safety
      refusals; operator intervention required.
    * ``ReplicaUnavailable`` — a *specific* replica the request needed
      cannot serve.  Transient: the resilience layer retries these.

    **Resilience verdicts** (``repro.core.resilience``) — these four are
    what the client actually sees once the resilience layer is engaged;
    each one is final for the request that raised it:

    * ``RequestTimeout`` — the request's deadline (simulated time)
      expired before the cluster produced an answer.  The outcome of any
      in-flight work is *unknown*; read requests may simply be reissued.
    * ``RetryExhausted`` — the retry policy was spent, or the failure was
      classified non-idempotent (an ambiguous commit) so no safe retry
      exists.  ``__cause__`` carries the last underlying error.
    * ``CircuitOpen`` — every candidate replica is currently ejected by
      its circuit breaker; the request was refused *before* touching a
      backend.  Transient: breakers half-open after their recovery time.
    * ``Overloaded`` — admission control shed the request because the
      cluster is saturated (bounded queue).  Back off and retry later;
      under the degraded-mode policy reads are shed last.
"""

from __future__ import annotations


class MiddlewareError(Exception):
    """Base class for replication-middleware failures."""


class MiddlewareDown(MiddlewareError):
    """The middleware instance itself has failed — with a centralized
    design this is a total outage (paper section 3.2).  With an HA
    standby (``repro.ha``) the condition is transient: clients re-resolve
    the virtual IP and replay with exactly-once dedup."""


class FencedOut(MiddlewareDown):
    """This middleware instance was deposed by a fenced promotion: its
    epoch is older than the cluster's.  Raised instead of certifying a
    commit on a stale leader — the split-brain guard (``repro.ha``).
    Subclasses :class:`MiddlewareDown` because the client-side remedy is
    identical: re-resolve the virtual IP and talk to the new leader."""


class UnsupportedStatementError(MiddlewareError):
    """The statement cannot be replicated safely under the configured
    policy (e.g. ``UPDATE t SET x = RAND()`` under statement replication
    with the 'reject' non-determinism policy — section 4.3.2)."""


class ReplicaUnavailable(MiddlewareError):
    """The operation needs a specific replica that cannot serve."""


class ClusterDivergence(MiddlewareError):
    """Replicas no longer agree on committed data; manual reconciliation
    required (sections 4.3.2 / 4.3.4.3)."""


class QuorumLost(MiddlewareError):
    """This partition side does not hold a quorum; updates are refused to
    preserve consistency (CAP discussion, section 4.3.4.3)."""


class RequestTimeout(MiddlewareError):
    """The request's deadline expired before an answer was produced.

    Raised instead of hanging on a slow or degraded replica; the outcome
    of in-flight work is unknown to the client."""


class RetryExhausted(MiddlewareError):
    """The retry policy is spent (or no safe retry exists, e.g. an
    ambiguous commit outcome); ``__cause__`` holds the last error."""


class CircuitOpen(MiddlewareError):
    """Every candidate replica is ejected by its circuit breaker; the
    request was refused before reaching a backend."""


class Overloaded(MiddlewareError):
    """Admission control shed the request: the cluster is saturated and
    the bounded request queue is full."""
