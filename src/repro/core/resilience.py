"""Request resilience: deadlines, retries, circuit breakers, admission
control and degraded-mode serving.

The paper's section 5.1 asks for "performance in the presence of
failures, performance of degraded modes" — which presupposes a middleware
that *has* a degraded mode instead of surfacing every replica hiccup to
the client.  This module is that layer.  It sits between
:class:`~repro.core.middleware.MiddlewareSession` and the dispatch path
and gives every client request:

* a **deadline** in simulated time — :class:`Deadline` raises
  :class:`~repro.core.errors.RequestTimeout` instead of hanging on a slow
  or degraded replica;
* **transparent retry** with exponential backoff and *deterministic*
  jitter (:class:`RetryPolicy`) plus safe-retry classification: autocommit
  statements and statement-logged transactions are replayed on a survivor
  through :class:`~repro.core.sessions.TransactionContext`; a commit whose
  outcome is ambiguous is never silently retried — the client gets
  :class:`~repro.core.errors.RetryExhausted`;
* a per-replica **circuit breaker** (:class:`CircuitBreaker`,
  CLOSED → OPEN → HALF_OPEN) that ejects flapping replicas from
  load-balancer candidacy before a heartbeat detector would fire;
* **admission control** (:class:`AdmissionController`) — a bounded
  in-flight budget with write-first shedding, and a degraded-mode policy
  that serves possibly-stale reads from lagging slaves (bounded-staleness
  knob) when the cluster is saturated or the master is down.

Everything is deterministic: backoff jitter is a hash of (seed, session,
attempt), clocks are injected (the simulation clock in timed runs, a
manual clock in unit tests), and no wall time is ever read.
"""

from __future__ import annotations

import enum
import hashlib
from typing import Any, Callable, Dict, List, Optional

from ..sqlengine import ast_nodes as ast
from ..sqlengine.errors import ConnectionError_
from .errors import (
    CircuitOpen, FencedOut, MiddlewareDown, Overloaded,
    ReplicaUnavailable, RequestTimeout, RetryExhausted,
)
from .loadbalancer import NoReplicaAvailable

Clock = Callable[[], float]


def _zero_clock() -> float:
    return 0.0


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------

class Deadline:
    """A request deadline against an injected clock (simulated time)."""

    __slots__ = ("clock", "budget", "started_at", "expires_at")

    def __init__(self, clock: Clock, budget: float):
        self.clock = clock
        self.budget = budget
        self.started_at = clock()
        self.expires_at = self.started_at + budget

    @property
    def expired(self) -> bool:
        return self.clock() >= self.expires_at

    def remaining(self) -> float:
        return max(0.0, self.expires_at - self.clock())

    def check(self, what: str = "request") -> None:
        if self.expired:
            raise RequestTimeout(
                f"{what} exceeded its {self.budget:.3f}s deadline "
                f"(started at t={self.started_at:.3f})")

    def __repr__(self) -> str:
        return f"Deadline(budget={self.budget}, remaining={self.remaining():.3f})"


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------

class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``backoff(attempt, key)`` is a pure function of (seed, key, attempt):
    two runs with the same seed produce byte-identical schedules, which is
    what lets the chaos harness compare baseline vs resilient runs under
    an identical fault schedule.

    ``retry_commits`` is deliberately off by default: a commit that failed
    with a connection-class error has an *ambiguous* outcome in general
    (the paper's section 4.3.3 asymmetry), so retrying it risks a double
    apply.  Deployments whose engines guarantee failed-commit-means-
    rolled-back may opt in.
    """

    def __init__(self, max_attempts: int = 3, base_backoff: float = 0.05,
                 multiplier: float = 2.0, max_backoff: float = 2.0,
                 jitter: float = 0.25, seed: int = 0,
                 retry_commits: bool = False):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_backoff = base_backoff
        self.multiplier = multiplier
        self.max_backoff = max_backoff
        self.jitter = jitter
        self.seed = seed
        self.retry_commits = retry_commits

    def backoff(self, attempt: int, key: int = 0) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        raw = self.base_backoff * (self.multiplier ** (attempt - 1))
        raw = min(raw, self.max_backoff)
        if self.jitter <= 0:
            return raw
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / float(2 ** 64)
        # jitter in [1 - j, 1 + j], deterministic per (seed, key, attempt)
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * unit)

    def spent(self, attempt: int) -> bool:
        return attempt >= self.max_attempts


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------

class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-replica circuit breaker.

    CLOSED: requests flow; ``failure_threshold`` consecutive failures trip
    it OPEN.  OPEN: the replica is ejected from candidacy until
    ``recovery_time`` has elapsed on the injected clock.  HALF_OPEN: up to
    ``half_open_probes`` trial requests are admitted; one success closes
    the breaker, one failure re-opens it (and restarts the recovery
    clock).  A flapping replica therefore converges to OPEN and stops
    hurting clients even while its node reports "up".
    """

    def __init__(self, name: str, clock: Optional[Clock] = None,
                 failure_threshold: int = 3, recovery_time: float = 5.0,
                 half_open_probes: int = 1):
        self.name = name
        self.clock = clock or _zero_clock
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_probes = half_open_probes
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self._probes_in_flight = 0
        self.stats = {"trips": 0, "rejections": 0, "probes": 0,
                      "closes": 0}
        self._listeners: List[Callable[["CircuitBreaker"], None]] = []

    def on_transition(self,
                      listener: Callable[["CircuitBreaker"], None]) -> None:
        self._listeners.append(listener)

    def _transition(self, state: BreakerState) -> None:
        if state is self.state:
            return
        self.state = state
        for listener in list(self._listeners):
            listener(self)

    def allow(self) -> bool:
        """May a request be routed to this replica right now?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self.clock() - self.opened_at >= self.recovery_time:
                self._transition(BreakerState.HALF_OPEN)
                self._probes_in_flight = 0
            else:
                self.stats["rejections"] += 1
                return False
        # HALF_OPEN: admit a bounded number of trial requests
        if self._probes_in_flight < self.half_open_probes:
            self._probes_in_flight += 1
            self.stats["probes"] += 1
            return True
        self.stats["rejections"] += 1
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self.stats["closes"] += 1
            self._transition(BreakerState.CLOSED)
        self._probes_in_flight = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN \
                or (self.state is BreakerState.CLOSED
                    and self.consecutive_failures >= self.failure_threshold):
            self.opened_at = self.clock()
            self.stats["trips"] += 1
            self._transition(BreakerState.OPEN)
            self._probes_in_flight = 0

    def force_open(self) -> None:
        """Eject immediately (e.g. the failure detector beat us to it)."""
        if self.state is not BreakerState.OPEN:
            self.opened_at = self.clock()
            self.stats["trips"] += 1
            self._transition(BreakerState.OPEN)

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.name!r}, {self.state.value}, "
                f"failures={self.consecutive_failures})")


# ---------------------------------------------------------------------------
# admission control / degraded mode
# ---------------------------------------------------------------------------

class AdmissionController:
    """A bounded in-flight request budget with write-first shedding.

    ``max_inflight`` caps concurrent requests.  Writes are shed once
    utilization crosses ``write_shed_fraction`` (the cheap way to keep a
    saturated cluster serving *something*); reads are shed only at the
    hard cap.  While utilization sits above the write watermark — or the
    caller reports the master down — the controller reports *degraded
    mode*, which lets the routing layer serve bounded-staleness reads from
    lagging slaves instead of queueing behind freshness waits.
    """

    def __init__(self, max_inflight: int = 64,
                 write_shed_fraction: float = 0.75):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self.write_watermark = max(1, int(max_inflight * write_shed_fraction))
        self.inflight = 0
        self.stats = {"admitted": 0, "shed_writes": 0, "shed_reads": 0,
                      "peak_inflight": 0}

    def try_acquire(self, is_write: bool = False) -> bool:
        limit = self.write_watermark if is_write else self.max_inflight
        if self.inflight >= limit:
            key = "shed_writes" if is_write else "shed_reads"
            self.stats[key] += 1
            return False
        self.inflight += 1
        self.stats["admitted"] += 1
        if self.inflight > self.stats["peak_inflight"]:
            self.stats["peak_inflight"] = self.inflight
        return True

    def acquire(self, is_write: bool = False) -> None:
        if not self.try_acquire(is_write):
            kind = "write" if is_write else "read"
            raise Overloaded(
                f"admission control shed the {kind}: {self.inflight}/"
                f"{self.max_inflight} requests in flight")

    def release(self) -> None:
        if self.inflight > 0:
            self.inflight -= 1

    @property
    def saturated(self) -> bool:
        return self.inflight >= self.write_watermark

    @property
    def utilization(self) -> float:
        return self.inflight / self.max_inflight


# ---------------------------------------------------------------------------
# policy + coordinator
# ---------------------------------------------------------------------------

class ResiliencePolicy:
    """Tunable resilience behaviour, attached to a
    :class:`~repro.core.middleware.MiddlewareConfig`.

    Attributes:
        retry: the :class:`RetryPolicy` for transient failures.
        request_timeout: default per-request deadline budget in seconds
            of injected-clock time (``None`` = no implicit deadline).
        breaker_failure_threshold / breaker_recovery_time /
        breaker_half_open_probes: per-replica circuit breaker knobs.
        max_inflight / write_shed_fraction: admission control bounds.
        degraded_reads: allow bounded-staleness reads when degraded.
        max_staleness: the bounded-staleness knob — how many global
            sequence numbers a slave may lag and still serve a degraded
            read.  ``None`` disables stale serving.
    """

    def __init__(self,
                 retry: Optional[RetryPolicy] = None,
                 request_timeout: Optional[float] = None,
                 breaker_failure_threshold: int = 3,
                 breaker_recovery_time: float = 5.0,
                 breaker_half_open_probes: int = 1,
                 max_inflight: int = 64,
                 write_shed_fraction: float = 0.75,
                 degraded_reads: bool = True,
                 max_staleness: Optional[int] = 1000):
        self.retry = retry or RetryPolicy()
        self.request_timeout = request_timeout
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_recovery_time = breaker_recovery_time
        self.breaker_half_open_probes = breaker_half_open_probes
        self.max_inflight = max_inflight
        self.write_shed_fraction = write_shed_fraction
        self.degraded_reads = degraded_reads
        self.max_staleness = max_staleness


class ResilienceCoordinator:
    """The live resilience state for one middleware instance.

    Owns the per-replica breakers and the admission controller, and wraps
    every statement dispatch (:meth:`execute_statement`) in the
    deadline/retry machinery.  State changes are instantaneous (the
    repo-wide simulation convention); the *time cost* of backoffs is
    accumulated in :attr:`pending_backoff` for the timed layer
    (``repro.bench.chaos``) to charge as simulated delay.
    """

    #: transient, retry-eligible failures
    RETRYABLE = (ReplicaUnavailable, NoReplicaAvailable, ConnectionError_,
                 CircuitOpen)

    def __init__(self, middleware, policy: ResiliencePolicy,
                 clock: Optional[Clock] = None):
        self.middleware = middleware
        self.policy = policy
        self.clock: Clock = clock or middleware.monitor.peek
        self.breakers: Dict[str, CircuitBreaker] = {}
        for replica in middleware.replicas:
            self._make_breaker(replica.name)
        self.admission = AdmissionController(
            policy.max_inflight, policy.write_shed_fraction)
        self.pending_backoff = 0.0
        self._replaying = False
        self.stats = {
            "retries": 0, "replays": 0, "timeouts": 0,
            "retry_exhausted": 0, "degraded_reads": 0, "shed": 0,
            "breaker_rejections": 0, "stale_cache_served": 0,
        }

    # -- breakers -----------------------------------------------------------

    def _make_breaker(self, name: str) -> CircuitBreaker:
        breaker = CircuitBreaker(
            name, clock=self.clock,
            failure_threshold=self.policy.breaker_failure_threshold,
            recovery_time=self.policy.breaker_recovery_time,
            half_open_probes=self.policy.breaker_half_open_probes)
        breaker.on_transition(self._breaker_changed)
        self.breakers[name] = breaker
        return breaker

    def breaker(self, name: str) -> CircuitBreaker:
        existing = self.breakers.get(name)
        if existing is None:
            existing = self._make_breaker(name)
        return existing

    def _breaker_changed(self, breaker: CircuitBreaker) -> None:
        self.middleware.monitor.record(
            "breaker_" + breaker.state.value, breaker.name,
            failures=breaker.consecutive_failures)

    def allow_replica(self, name: str) -> bool:
        return self.breaker(name).allow()

    def record_success(self, name: str) -> None:
        self.breaker(name).record_success()

    def record_failure(self, name: str) -> None:
        self.breaker(name).record_failure()

    def record_timeout(self, name: str) -> None:
        """A deadline expired while this replica held the request — the
        slow-replica signal a crash detector never sees."""
        self.breaker(name).record_failure()

    # -- deadlines ----------------------------------------------------------

    def deadline(self, budget: Optional[float] = None) -> Optional[Deadline]:
        budget = budget if budget is not None else self.policy.request_timeout
        if budget is None:
            return None
        return Deadline(self.clock, budget)

    # -- degraded-mode serving ----------------------------------------------

    def degraded(self) -> bool:
        """Is degraded-mode serving active (master saturated or down)?"""
        if self.admission.saturated:
            return True
        try:
            master = self.middleware.master
        except ReplicaUnavailable:
            return True
        return not master.is_online

    def serve_stale(self, lag: int) -> bool:
        """May a read be served from a replica lagging ``lag`` sequence
        numbers behind what the consistency protocol demands?"""
        if not self.policy.degraded_reads \
                or self.policy.max_staleness is None:
            return False
        if lag > self.policy.max_staleness:
            return False
        if not self.degraded():
            return False
        self.stats["degraded_reads"] += 1
        self.middleware.monitor.record("degraded_read",
                                       self.middleware.name, lag=lag)
        return True

    def note_stale_cache_served(self) -> None:
        """A degraded read was answered from the result cache (with an
        explicit staleness label) instead of a lagging replica — or
        instead of an error, when no replica could serve at all."""
        self.stats["stale_cache_served"] += 1

    # -- backoff accounting --------------------------------------------------

    def consume_backoff(self) -> float:
        """Hand the accumulated backoff delay to the timed layer."""
        delay, self.pending_backoff = self.pending_backoff, 0.0
        return delay

    # -- the resilient dispatch path -----------------------------------------

    def execute_statement(self, session, statement: "ast.Statement",
                          sql_text: str, params: List[Any]):
        """Wrap one statement dispatch in deadline + retry machinery."""
        if self._replaying:
            # statements re-issued by a replay run bare: the outer retry
            # loop owns attempt accounting, so nesting would compound it
            return session._dispatch_one(statement, sql_text, params)
        if isinstance(statement, ast.RollbackStatement):
            # a rollback must always succeed from the client's view
            return session._dispatch_one(statement, sql_text, params)
        deadline: Optional[Deadline] = session.deadline
        if deadline is not None:
            deadline.check("statement")
        is_commit = isinstance(statement, ast.CommitStatement)
        retry = self.policy.retry
        attempt = 1
        while True:
            # Snapshot the transaction log before a commit so a safe
            # replay is possible after the dispatch tears the state down.
            snapshot = None
            if is_commit and session.in_transaction and session._txn_is_write:
                snapshot = (list(session._txn_statements),
                            getattr(session, "_txn_isolation", None))
            # the mw.statement span opened by _execute_one — retry /
            # breaker / deadline decisions land on it as span events
            span = getattr(session, "active_span", None)
            try:
                return session._dispatch_one(statement, sql_text, params)
            except RequestTimeout:
                self.stats["timeouts"] += 1
                if span:
                    span.event("deadline_exceeded", attempt=attempt)
                raise
            except MiddlewareDown as exc:
                # The middleware process itself died — or was fenced out
                # by a promotion.  With an HA standby configured this is
                # transient at the *service* level: classify it
                # safe-to-retry-after-failover so outer layers re-resolve
                # the virtual IP and replay with exactly-once dedup
                # (repro.ha) instead of surfacing a total outage.
                if self.middleware.failover_target is not None \
                        or isinstance(exc, FencedOut):
                    exc.retry_after_failover = True
                    self.stats["failover_retries"] = \
                        self.stats.get("failover_retries", 0) + 1
                    if span:
                        span.event(
                            "failover_retry",
                            target=(self.middleware.failover_target
                                    or "promoted-leader"))
                raise
            except self.RETRYABLE as exc:
                if span and isinstance(exc, CircuitOpen):
                    span.event("circuit_open", error=str(exc)[:120])
                mode = self._classify(session, statement, snapshot, exc)
                if mode == "fail":
                    raise
                if mode == "exhaust":
                    self.stats["retry_exhausted"] += 1
                    if span:
                        span.event("retry_exhausted",
                                   reason="ambiguous_commit")
                    error = RetryExhausted(
                        "commit outcome is ambiguous; refusing a non-"
                        "idempotent retry (set RetryPolicy.retry_commits "
                        "to opt in)")
                    # flag for outer (timed) retry layers: this one must
                    # never be retried at any level
                    error.ambiguous = True
                    raise error from exc
                if retry.spent(attempt):
                    self.stats["retry_exhausted"] += 1
                    if span:
                        span.event("retry_exhausted", attempts=attempt)
                    raise RetryExhausted(
                        f"request failed after {attempt} attempts: "
                        f"{exc}") from exc
                backoff = retry.backoff(attempt, key=session.id)
                if deadline is not None and deadline.remaining() <= backoff:
                    self.stats["timeouts"] += 1
                    if span:
                        span.event("deadline_exceeded", attempt=attempt,
                                   backoff=round(backoff, 6))
                    raise RequestTimeout(
                        f"deadline would expire during the {backoff:.3f}s "
                        f"retry backoff (attempt {attempt})") from exc
                self.pending_backoff += backoff
                self.stats["retries"] += 1
                if span:
                    # NOTE: the backoff here is *accumulated*, not yet
                    # charged — the attr is named ``backoff`` (not
                    # ``duration``) so latency breakdowns do not double-
                    # count it against the timed layer's charge
                    span.event("retry", attempt=attempt,
                               error=type(exc).__name__,
                               backoff=round(backoff, 6))
                self.middleware.monitor.record(
                    "retry", self.middleware.name, attempt=attempt,
                    error=type(exc).__name__, backoff=backoff)
                if mode == "replay":
                    self._replay(session, statement, snapshot)
                attempt += 1

    def _classify(self, session, statement, snapshot, exc) -> str:
        """Safe-retry classification: ``retry`` (re-dispatch as-is),
        ``replay`` (re-establish transaction state on a survivor first),
        ``exhaust`` (no safe retry exists) or ``fail`` (surface)."""
        if isinstance(statement, ast.CommitStatement):
            if snapshot is None:
                return "retry"  # read-only commit: harmless to reissue
            if self.policy.retry.retry_commits:
                return "replay"
            return "exhaust"
        if session.in_transaction:
            # mid-transaction statement failure: the transaction's state
            # (or its sole executing replica) is gone — replay the logged
            # statements on a survivor, then re-dispatch this one.
            return "replay"
        # autocommit statement: the implicit transaction rolled back on
        # failure, so re-dispatching starts a fresh, clean attempt
        return "retry"

    def _replay(self, session, statement, snapshot) -> None:
        """Re-establish transaction state on a surviving replica via a
        :class:`~repro.core.sessions.TransactionContext` (section 4.3.3
        made automatic)."""
        from .sessions import TransactionContext

        if snapshot is not None:
            statements, isolation = snapshot
        elif session.in_transaction:
            statements = list(session._txn_statements)
            isolation = getattr(session, "_txn_isolation", None)
        else:
            return
        if session.in_transaction:
            # the old transaction is dead; roll its carcass away silently
            session._abort_everywhere(silent=True)
            session._end_transaction()
        context = TransactionContext.capture_for_retry(
            statements, isolation, session)
        self._replaying = True
        try:
            context.resume(session)
        finally:
            self._replaying = False
        self.stats["replays"] += 1
        session.failover_replays += 1
        span = getattr(session, "active_span", None)
        if span:
            span.event("txn_replayed", statements=len(statements))
        self.middleware.monitor.record(
            "txn_replayed", self.middleware.name,
            statements=len(statements))
