"""Dependency-aware scheduling for batched writeset apply.

Replica apply is the scalability ceiling once reads are offloaded
(paper section 2.2): a serial applier caps sustainable write throughput
at one writeset at a time regardless of how parallel the origin load
was.  The ``(database, table, primary_key)`` conflict footprints that
certification already computes are exactly the dependency metadata
needed to do better: two writesets whose footprints do not overlap
commute, so a replica may apply them concurrently without risking a
different outcome than strict seq order.

This module is pure scheduling logic, shared by the untimed middleware
(correct application order) and the timed cost model (how much the
parallel apply lanes overlap):

- :class:`ApplyUnit` — one certified commit inside a propagation frame.
- :func:`conflict_groups` — partition a seq-ordered run of units into
  dependency groups.  Units in the same group conflict (directly or
  transitively) and must apply serially in seq order; distinct groups
  are pairwise disjoint and may run on concurrent apply lanes.
- :func:`lane_makespan` — longest-processing-time assignment of group
  costs onto ``lanes`` workers, for the simulated parallel-apply cost.

Conflict rules match the certifier exactly: point keys conflict on
equality, a table-level footprint (``pk is None``) conflicts with every
key of that table, and an *opaque* unit (``keys is None`` — e.g. a
statement-replay item whose rows cannot be keyed) is a barrier that
conflicts with everything.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from .writesets import conflict_keys


class ApplyUnit:
    """One certified commit staged into a multi-writeset frame."""

    __slots__ = ("seq", "entries", "tables", "keys", "origin",
                 "enqueued_at", "trace_ref")

    def __init__(self, seq: int, entries: Any, tables: Tuple[str, ...] = (),
                 keys: Optional[FrozenSet] = None,
                 origin: Optional[str] = None, enqueued_at: float = 0.0,
                 trace_ref: Optional[Tuple[int, int]] = None):
        self.seq = seq
        self.entries = entries
        self.tables = tables
        # Conflict footprint: frozenset of (db, table, pk) triples, or
        # None for an opaque unit that must serialize with everything.
        self.keys = keys
        self.origin = origin
        self.enqueued_at = enqueued_at
        self.trace_ref = trace_ref

    def __repr__(self) -> str:
        kind = "opaque" if self.keys is None else f"{len(self.keys)} keys"
        return f"ApplyUnit(seq={self.seq}, {kind})"


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}

    def add(self, item: int) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # anchor on the smaller index so group order follows seq order
            if ra > rb:
                ra, rb = rb, ra
            self._parent[rb] = ra


def conflict_groups(units: Sequence[ApplyUnit]) -> List[List[ApplyUnit]]:
    """Partition seq-ordered ``units`` into dependency groups.

    Within a group, units conflict (possibly transitively) and keep their
    seq order; across groups, footprints are disjoint, so groups can be
    applied on concurrent lanes without changing any row's final value.
    Returns groups ordered by their first unit's position.
    """
    if not units:
        return []
    if any(unit.keys is None for unit in units):
        # An opaque unit conflicts with everything: the whole run
        # collapses into one serial group (the conservative fallback).
        return [list(units)]
    uf = _UnionFind()
    point_owner: Dict[Tuple, int] = {}       # (db, table, pk) -> unit index
    table_lockers: Dict[Tuple, List[int]] = {}  # (db, table) -> indices with pk=None
    table_touchers: Dict[Tuple, List[int]] = {}  # (db, table) -> all indices
    for index, unit in enumerate(units):
        uf.add(index)
        for key in unit.keys:
            database, table, pk = key
            if pk is None:
                # table-granular: conflicts with every earlier toucher
                for other in table_touchers.get((database, table), ()):
                    uf.union(index, other)
                table_lockers.setdefault((database, table), []).append(index)
            else:
                owner = point_owner.get(key)
                if owner is not None:
                    uf.union(index, owner)
                point_owner[key] = index
                for locker in table_lockers.get((database, table), ()):
                    uf.union(index, locker)
            table_touchers.setdefault((database, table), []).append(index)
    grouped: Dict[int, List[ApplyUnit]] = {}
    order: List[int] = []
    for index, unit in enumerate(units):
        root = uf.find(index)
        if root not in grouped:
            grouped[root] = []
            order.append(root)
        grouped[root].append(unit)
    return [grouped[root] for root in order]


def item_units(item) -> List[ApplyUnit]:
    """Normalize one queued :class:`~repro.core.replica.ApplyItem` to its
    apply units: a ``writeset_batch`` frame carries them directly, a plain
    writeset becomes one keyed unit, and a statement-replay item becomes
    one opaque unit (its rows cannot be keyed, so it is a barrier)."""
    if item.kind == "writeset_batch":
        return list(item.payload)
    if item.kind == "writeset":
        return [ApplyUnit(item.seq, item.payload, item.tables,
                          keys=conflict_keys(item.payload),
                          enqueued_at=item.enqueued_at,
                          trace_ref=item.trace_ref)]
    return [ApplyUnit(item.seq, item.payload, item.tables, keys=None,
                      enqueued_at=item.enqueued_at,
                      trace_ref=item.trace_ref)]


def lane_makespan(group_costs: Sequence[float], lanes: int) -> List[float]:
    """Longest-processing-time assignment of ``group_costs`` onto
    ``lanes`` parallel apply lanes; returns per-lane total costs (only
    non-empty lanes).  Groups are indivisible — their units serialize."""
    lanes = max(1, lanes)
    if not group_costs:
        return []
    loads = [0.0] * min(lanes, len(group_costs))
    for cost in sorted(group_costs, reverse=True):
        slot = loads.index(min(loads))
        loads[slot] += cost
    return loads
