"""Admission control for the middleware tier: token buckets, bulkhead
lanes, and queue-depth shedding with labeled rejections.

Overload is where the paper says middleware replication dies in practice
(section 4.4): an *open-loop* arrival process does not slow down because
the middleware is busy, so queues grow without bound, every request
waits behind the backlog, and clients time out on work the servers still
dutifully perform — goodput collapses while utilisation stays at 100%.
The admission layer rejects excess work *at the door*, with a
machine-readable reason, so the work the cluster does accept still
completes within its deadline.

Three mechanisms compose:

* :class:`TokenBucket` — per-class sustained-rate limiting with a burst
  allowance (the classic throttling pattern).
* :class:`BulkheadLane` — a bounded concurrency compartment per request
  class, so a flood of reads cannot starve commits and vice versa.
* queue-depth shedding — when admitted-but-unfinished work exceeds a
  watermark, new arrivals are shed before they join the queue (the
  point past which added queueing only converts work into timeouts).

The composition is :class:`AdmissionGate`.  A successful
:meth:`AdmissionGate.admit` returns a :class:`Ticket`; a rejection
raises :class:`AdmissionRejected` carrying one of the ``REJECT_*``
labels.  The gate can only reject *before* a ticket exists — there is
deliberately no API to shed a ticketed request, so an admitted and
acknowledged commit can never be lost to load shedding mid-pipeline
(the invariant benchmark E28 and the hypothesis suite assert).

This layer is coarser-grained and sits in front of the per-statement
:class:`repro.core.resilience.AdmissionController` (which bounds
statement concurrency inside the middleware); the gate decides whether
a *transaction* enters the system at all.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

# Rejection labels — stable strings, used in metrics and BENCH artifacts.
REJECT_RATE = "rate_limit"
REJECT_BULKHEAD = "bulkhead_full"
REJECT_QUEUE = "queue_depth"
REJECT_UNKNOWN_CLASS = "unknown_class"

# Ticket lifecycle states.
ADMITTED = "admitted"
ACKED = "acked"
DONE = "done"
FAILED = "failed"


class AdmissionRejected(Exception):
    """Raised when the gate sheds an arrival instead of admitting it."""

    def __init__(self, kind: str, reason: str):
        super().__init__(f"{kind} shed: {reason}")
        self.kind = kind
        self.reason = reason


class TokenBucket:
    """Sustained-rate limiter: ``rate`` tokens/second refill up to a
    ``burst`` ceiling.  The caller supplies the current time, so the
    bucket works identically under the simulated clock and wall clock.
    """

    __slots__ = ("rate", "burst", "tokens", "_stamp")

    def __init__(self, rate: float, burst: float, now: float = 0.0):
        if rate <= 0:
            raise ValueError("token rate must be positive")
        self.rate = float(rate)
        self.burst = max(float(burst), 1.0)
        self.tokens = self.burst
        self._stamp = now

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self._stamp = now

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        self._refill(now)
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False

    def available(self, now: float) -> float:
        self._refill(now)
        return self.tokens


class BulkheadLane:
    """A bounded concurrency compartment.  ``capacity`` is the maximum
    number of simultaneously in-flight requests of one class; when the
    lane is full new arrivals bounce instead of queueing behind a class
    that is slow for its own reasons (bulkhead pattern)."""

    __slots__ = ("name", "capacity", "in_flight", "peak_in_flight")

    def __init__(self, name: str, capacity: int):
        if capacity <= 0:
            raise ValueError("bulkhead capacity must be positive")
        self.name = name
        self.capacity = int(capacity)
        self.in_flight = 0
        self.peak_in_flight = 0

    def try_enter(self) -> bool:
        if self.in_flight >= self.capacity:
            return False
        self.in_flight += 1
        if self.in_flight > self.peak_in_flight:
            self.peak_in_flight = self.in_flight
        return True

    def leave(self) -> None:
        if self.in_flight <= 0:
            raise RuntimeError(f"lane {self.name!r}: leave() without enter")
        self.in_flight -= 1


class Ticket:
    """Proof of admission for one request.  Lifecycle::

        admitted --> acked --> done
                 \\-> failed

    ``ack()`` marks the point the middleware acknowledged the commit to
    the client; ``finish()`` releases the lane.  There is no ``shed()``:
    once a ticket exists the gate has no mechanism to revoke it, which
    is what makes "admitted-then-acked commits are never shed" hold by
    construction (and verifiable: the gate counts would diverge).
    """

    __slots__ = ("gate", "kind", "ticket_id", "admitted_at", "state")

    def __init__(self, gate: "AdmissionGate", kind: str, ticket_id: int,
                 admitted_at: float):
        self.gate = gate
        self.kind = kind
        self.ticket_id = ticket_id
        self.admitted_at = admitted_at
        self.state = ADMITTED

    def ack(self) -> None:
        """The request's effect is durable and acknowledged."""
        if self.state not in (ADMITTED, ACKED):
            raise RuntimeError(
                f"ticket {self.ticket_id}: ack() in state {self.state!r}")
        if self.state == ADMITTED:
            self.state = ACKED
            self.gate._note_ack(self)

    def finish(self, ok: bool = True) -> None:
        """Release the lane.  Idempotent-hostile on purpose: finishing a
        finished ticket is a caller bug and raises."""
        if self.state in (DONE, FAILED):
            raise RuntimeError(
                f"ticket {self.ticket_id}: finish() in state {self.state!r}")
        acked = self.state == ACKED
        self.state = DONE if ok else FAILED
        self.gate._note_finish(self, ok=ok, was_acked=acked)


class ClassPolicy:
    """Admission policy for one request class."""

    __slots__ = ("kind", "bucket", "lane")

    def __init__(self, kind: str, rate: float, burst: float,
                 lane_capacity: int, now: float = 0.0):
        self.kind = kind
        self.bucket = TokenBucket(rate, burst, now=now)
        self.lane = BulkheadLane(kind, lane_capacity)


class AdmissionGate:
    """Per-class token-bucket admission + bulkhead lanes + queue-depth
    shedding, with labeled rejections.

    ``clock`` is any zero-argument callable returning seconds — pass
    ``lambda: env.now`` under the simulator.  ``max_pending`` bounds the
    total admitted-but-unfinished population across all classes (the
    queue-depth watermark); ``None`` disables that check.
    """

    def __init__(self, clock: Callable[[], float],
                 max_pending: Optional[int] = None):
        self._clock = clock
        self.max_pending = max_pending
        self.classes: Dict[str, ClassPolicy] = {}
        self.pending = 0
        self.peak_pending = 0
        self._next_ticket = 0
        # Counters, exported into BENCH artifacts — keep keys stable.
        self.admitted: Dict[str, int] = {}
        self.rejected: Dict[str, Dict[str, int]] = {}
        self.acked: Dict[str, int] = {}
        self.finished_ok = 0
        self.finished_failed = 0
        # By construction this stays 0; it exists so tests can assert the
        # invariant from the outside instead of trusting the docstring.
        self.acked_then_shed = 0
        self._acked_ids: set = set()
        self._shed_ids: set = set()

    # -- configuration --------------------------------------------------

    def add_class(self, kind: str, rate: float, burst: Optional[float] = None,
                  lane_capacity: int = 64) -> "AdmissionGate":
        """Register a request class.  Returns self for chaining."""
        if kind in self.classes:
            raise ValueError(f"class {kind!r} already registered")
        burst = rate if burst is None else burst
        self.classes[kind] = ClassPolicy(
            kind, rate, burst, lane_capacity, now=self._clock())
        self.admitted[kind] = 0
        self.acked[kind] = 0
        self.rejected[kind] = {}
        return self

    # -- admission ------------------------------------------------------

    def try_admit(self, kind: str):
        """Returns ``(ticket, None)`` on admission or ``(None, reason)``
        on shed.  All rejection accounting happens here."""
        policy = self.classes.get(kind)
        if policy is None:
            return None, self._reject(kind, REJECT_UNKNOWN_CLASS)
        now = self._clock()
        if (self.max_pending is not None
                and self.pending >= self.max_pending):
            return None, self._reject(kind, REJECT_QUEUE)
        if not policy.bucket.try_take(now):
            return None, self._reject(kind, REJECT_RATE)
        if not policy.lane.try_enter():
            return None, self._reject(kind, REJECT_BULKHEAD)
        self._next_ticket += 1
        ticket = Ticket(self, kind, self._next_ticket, now)
        self.admitted[kind] += 1
        self.pending += 1
        if self.pending > self.peak_pending:
            self.peak_pending = self.pending
        return ticket, None

    def admit(self, kind: str) -> Ticket:
        """Admit or raise :class:`AdmissionRejected`."""
        ticket, reason = self.try_admit(kind)
        if ticket is None:
            raise AdmissionRejected(kind, reason)
        return ticket

    def _reject(self, kind: str, reason: str) -> str:
        per_class = self.rejected.setdefault(kind, {})
        per_class[reason] = per_class.get(reason, 0) + 1
        return reason

    # -- ticket callbacks ----------------------------------------------

    def _note_ack(self, ticket: Ticket) -> None:
        self.acked[ticket.kind] = self.acked.get(ticket.kind, 0) + 1
        self._acked_ids.add(ticket.ticket_id)
        if ticket.ticket_id in self._shed_ids:
            self.acked_then_shed += 1

    def _note_finish(self, ticket: Ticket, ok: bool, was_acked: bool) -> None:
        policy = self.classes[ticket.kind]
        policy.lane.leave()
        self.pending -= 1
        if ok:
            self.finished_ok += 1
        else:
            self.finished_failed += 1
            if was_acked:
                # An acked commit that later "fails" would be lost work;
                # record it where audits can see it.
                self.acked_then_shed += 1

    # -- introspection --------------------------------------------------

    def total_rejected(self, kind: Optional[str] = None) -> int:
        if kind is not None:
            return sum(self.rejected.get(kind, {}).values())
        return sum(sum(reasons.values()) for reasons in self.rejected.values())

    def total_admitted(self) -> int:
        return sum(self.admitted.values())

    def snapshot(self) -> dict:
        """Plain-dict counters for metrics export / BENCH artifacts."""
        return {
            "admitted": dict(self.admitted),
            "acked": dict(self.acked),
            "rejected": {kind: dict(reasons)
                         for kind, reasons in self.rejected.items()},
            "pending": self.pending,
            "peak_pending": self.peak_pending,
            "finished_ok": self.finished_ok,
            "finished_failed": self.finished_failed,
            "acked_then_shed": self.acked_then_shed,
            "lanes": {
                kind: {"in_flight": policy.lane.in_flight,
                       "capacity": policy.lane.capacity,
                       "peak_in_flight": policy.lane.peak_in_flight}
                for kind, policy in self.classes.items()
            },
        }


def default_gate(clock: Callable[[], float],
                 read_rate: float = 2000.0,
                 commit_rate: float = 600.0,
                 read_lane: int = 256,
                 commit_lane: int = 128,
                 max_pending: Optional[int] = 512) -> AdmissionGate:
    """The configuration E28 uses: reads throttled loosely, commits
    tightly, with separate lanes so neither starves the other."""
    gate = AdmissionGate(clock, max_pending=max_pending)
    gate.add_class("read", rate=read_rate, burst=read_rate * 0.25,
                   lane_capacity=read_lane)
    gate.add_class("commit", rate=commit_rate, burst=commit_rate * 0.25,
                   lane_capacity=commit_lane)
    return gate
