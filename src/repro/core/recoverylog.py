"""Sequoia-style recovery log with checkpoints (paper section 4.4.2).

"Sequoia uses a recovery log that records all update statements executed
by the system.  When a node is removed from the cluster, a checkpoint is
inserted ... When the node is re-added, the recovery log is replayed from
the checkpoint on."

The log records every globally-ordered update (statement batch or
writeset).  Replay supports two modes:

* **serial** — one entry after another; under a heavy update stream a
  recovering replica "may never catch up" (the paper's warning);
* **parallel** — entries are grouped into waves of non-overlapping table
  footprints that can be applied concurrently (the parallelism-extraction
  problem the paper calls unsolved; we implement the straightforward
  conflict-graph greedy schedule).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..sqlengine import Engine
from .writesets import apply_writeset


class RecoveryLogEntry:
    __slots__ = ("seq", "kind", "payload", "tables", "user", "database")

    def __init__(self, seq: int, kind: str, payload, tables: Tuple[str, ...],
                 user: str = "admin", database: Optional[str] = None):
        self.seq = seq
        self.kind = kind              # "statements" | "writeset"
        self.payload = payload        # [(sql, params)] | [writeset dicts]
        self.tables = tables
        self.user = user
        self.database = database

    def __repr__(self) -> str:
        return f"RecoveryLogEntry(seq={self.seq}, kind={self.kind})"


class RecoveryLog:
    """Globally-ordered update log + named checkpoints."""

    def __init__(self):
        self.entries: List[RecoveryLogEntry] = []
        self.checkpoints: Dict[str, int] = {}
        self._head = 0

    @property
    def head_seq(self) -> int:
        return self._head

    def append(self, seq: int, kind: str, payload,
               tables: Sequence[str] = (), user: str = "admin",
               database: Optional[str] = None) -> RecoveryLogEntry:
        entry = RecoveryLogEntry(seq, kind, payload, tuple(tables),
                                 user=user, database=database)
        self.entries.append(entry)
        self._head = max(self._head, seq)
        return entry

    def checkpoint(self, name: str, seq: Optional[int] = None) -> int:
        """Insert a named checkpoint at ``seq`` (default: current head).
        A replica removed at this point replays from here on re-add."""
        at = self._head if seq is None else seq
        self.checkpoints[name] = at
        return at

    def entries_since(self, seq: int) -> List[RecoveryLogEntry]:
        return [e for e in self.entries if e.seq > seq]

    def entries_since_checkpoint(self, name: str) -> List[RecoveryLogEntry]:
        if name not in self.checkpoints:
            raise KeyError(f"no checkpoint {name!r}")
        return self.entries_since(self.checkpoints[name])

    def truncate_after(self, seq: int) -> int:
        """Drop entries with sequence > ``seq`` — used when those updates
        physically died with a failed master (1-safe loss, section 2.2).
        Returns how many entries were lost."""
        before = len(self.entries)
        self.entries = [e for e in self.entries if e.seq <= seq]
        return before - len(self.entries)

    def purge_before(self, seq: int) -> int:
        """Log maintenance (section 4.4.4); entries needed by existing
        checkpoints must not be purged — callers pass min(checkpoints)."""
        before = len(self.entries)
        self.entries = [e for e in self.entries if e.seq > seq]
        return before - len(self.entries)

    # -- replay ---------------------------------------------------------------

    def replay_entry(self, engine: Engine, entry: RecoveryLogEntry) -> None:
        """Apply one log entry to ``engine``."""
        if entry.kind == "writeset":
            apply_writeset(engine, entry.payload, compensate_counters=True)
            return
        connection = engine.connect("admin", "", database=entry.database)
        try:
            for sql, params in entry.payload:
                connection.execute(sql, params)
        finally:
            connection.close()

    def replay(self, engine: Engine, from_seq: int) -> int:
        """Serial replay of everything after ``from_seq``.  Returns the
        number of entries applied."""
        entries = self.entries_since(from_seq)
        for entry in entries:
            self.replay_entry(engine, entry)
        return len(entries)

    def plan_parallel_replay(
            self, from_seq: int,
            max_wave: int = 8) -> List[List[RecoveryLogEntry]]:
        """Greedy wave scheduling: each wave holds entries whose table
        footprints are pairwise disjoint, preserving per-table order.

        An entry with an *empty* footprint (tables unknown — e.g. an opaque
        stored-procedure call) conflicts with everything: it closes the
        current wave and runs alone, which is exactly why opaque procedures
        hurt recovery parallelism (section 4.2.1).
        """
        waves: List[List[RecoveryLogEntry]] = []
        current: List[RecoveryLogEntry] = []
        current_tables: set = set()
        for entry in self.entries_since(from_seq):
            footprint = set(entry.tables)
            opaque = not footprint
            overlaps = opaque or bool(footprint & current_tables)
            if current and (overlaps or len(current) >= max_wave):
                waves.append(current)
                current = []
                current_tables = set()
            current.append(entry)
            current_tables |= footprint
            if opaque:
                waves.append(current)
                current = []
                current_tables = set()
        if current:
            waves.append(current)
        return waves

    def parallel_speedup(self, from_seq: int, max_wave: int = 8) -> float:
        """Ideal speedup of the parallel schedule over serial replay
        (entries per wave averaged)."""
        entries = self.entries_since(from_seq)
        if not entries:
            return 1.0
        waves = self.plan_parallel_replay(from_seq, max_wave=max_wave)
        return len(entries) / max(1, len(waves))
