"""Snapshot-isolation certification (first-committer-wins).

Writeset-based replication sends each transaction's writeset to a
certifier that checks it against all writesets committed since the
transaction's snapshot; overlap on any (database, table, primary-key)
means abort (paper section 3.3, Postgres-R/Middle-R lineage).

The certifier is the poster child of the paper's SPOF discussion
(section 3.2): a *centralized* certifier is fast but its failure takes the
whole system down and loses in-flight certification state; a *replicated*
certifier survives but pays a synchronization cost on every commit.  Both
variants are provided; benchmark E09 measures the trade-off.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple


class CertifierDown(Exception):
    """The (centralized) certifier has failed — certification, and with it
    every update transaction, is unavailable (section 3.2)."""


class CertificationOutcome:
    __slots__ = ("ok", "seq", "conflict_seq")

    def __init__(self, ok: bool, seq: Optional[int] = None,
                 conflict_seq: Optional[int] = None):
        self.ok = ok
        self.seq = seq
        self.conflict_seq = conflict_seq

    def __repr__(self) -> str:
        if self.ok:
            return f"CertificationOutcome(ok, seq={self.seq})"
        return f"CertificationOutcome(ABORT, conflicts with seq={self.conflict_seq})"


class Certifier:
    """Global certification log.

    ``keys`` are conflict footprints: frozensets of
    (database, table, primary_key) triples; a ``None`` primary key is a
    table-level footprint that conflicts with everything in that table
    (the conservative fallback when a statement's rows cannot be keyed).
    """

    def __init__(self, replicated: bool = False,
                 first_committer_wins: bool = True):
        self.replicated = replicated
        self.first_committer_wins = first_committer_wins
        self._log: List[Tuple[int, FrozenSet]] = []
        self._seq = 0
        self.failed = False
        self.certified = 0
        self.aborted = 0
        # Group commit: while a batch is open, accepted entries are staged
        # here and folded into the log in one append at end_batch().
        self._batch: Optional[List[Tuple[int, FrozenSet]]] = None
        self.batches = 0
        self.batch_certified = 0
        self.max_batch = 0
        self.pruned_total = 0
        # Extra state copies kept when replicated (survive failover).
        self._standby_log: Optional[List[Tuple[int, FrozenSet]]] = \
            [] if replicated else None

    @property
    def current_seq(self) -> int:
        return self._seq

    @property
    def in_batch(self) -> bool:
        return self._batch is not None

    def begin_batch(self) -> None:
        """Open a group-commit batch: subsequent certifications check
        against the log *plus* the entries already accepted in this batch,
        and their log entries are staged for a single append.  The seq
        counter still advances per accepted transaction, so outcomes are
        identical to per-transaction certification in submission order."""
        if self._batch is not None:
            raise RuntimeError("certifier batch already open")
        self._batch = []

    def end_batch(self) -> List[Tuple[int, FrozenSet]]:
        """Close the batch: one log append (and one standby-copy append
        when replicated — the amortized synchronization round) for every
        transaction accepted since begin_batch()."""
        staged = self._batch
        if staged is None:
            return []
        self._batch = None
        if staged:
            self._log.extend(staged)
            if self._standby_log is not None:
                self._standby_log.extend(staged)
            self.batches += 1
            self.batch_certified += len(staged)
            self.max_batch = max(self.max_batch, len(staged))
        return staged

    def certify(self, start_seq: int, keys: FrozenSet) -> CertificationOutcome:
        """First-committer-wins check; on success assigns and logs the next
        global sequence number."""
        if self.failed:
            raise CertifierDown("certifier is down")
        if self.first_committer_wins:
            conflict = self._find_conflict(start_seq, keys)
            if conflict is not None:
                self.aborted += 1
                return CertificationOutcome(False, conflict_seq=conflict)
        self._seq += 1
        entry = (self._seq, keys)
        if self._batch is not None:
            self._batch.append(entry)
        else:
            self._log.append(entry)
            if self._standby_log is not None:
                self._standby_log.append(entry)
        self.certified += 1
        return CertificationOutcome(True, seq=self._seq)

    def certify_batch(self, requests) -> List[CertificationOutcome]:
        """Certify ``requests`` (iterable of ``(start_seq, keys)``) as one
        group-commit batch.  Outcomes are positionally identical to calling
        :meth:`certify` per request in the same order."""
        self.begin_batch()
        try:
            return [self.certify(start_seq, keys)
                    for start_seq, keys in requests]
        finally:
            self.end_batch()

    @staticmethod
    def _overlaps(logged: FrozenSet, keys: FrozenSet,
                  table_level: Set[Tuple[str, str]]) -> bool:
        if logged & keys:
            return True
        for database, table, pk in logged:
            if (database, table) in table_level:
                return True
            if pk is None and any(
                    k[0] == database and k[1] == table for k in keys):
                return True
        return False

    def _find_conflict(self, start_seq: int, keys: FrozenSet) -> Optional[int]:
        if not keys:
            return None
        table_level = {
            (database, table)
            for database, table, pk in keys if pk is None
        }
        # Entries accepted earlier in an open batch are not in the log yet
        # but must conflict exactly as if they were (newest first; all
        # batch seqs are above any committed start_seq).
        if self._batch:
            for seq, logged in reversed(self._batch):
                if seq <= start_seq:
                    break
                if self._overlaps(logged, keys, table_level):
                    return seq
        for seq, logged in reversed(self._log):
            if seq <= start_seq:
                break
            if self._overlaps(logged, keys, table_level):
                return seq
        return None

    def assign_seq(self, keys: FrozenSet = frozenset()) -> int:
        """Order-only mode (no conflict check) — used by master-slave,
        eventual-consistency and statement-broadcast paths that still need
        a global order.  ``keys`` optionally records the write's derived
        ``(db, table, pk)`` footprint in the log, so downstream consumers
        (cache invalidation, log inspection) see statement-mode commits at
        the same granularity as certified writesets."""
        if self.failed:
            raise CertifierDown("certifier is down")
        self._seq += 1
        entry = (self._seq, keys)
        if self._batch is not None:
            self._batch.append(entry)
        else:
            self._log.append(entry)
            if self._standby_log is not None:
                self._standby_log.append(entry)
        return self._seq

    def rescind(self, seq: int) -> bool:
        """Erase the conflict footprint of a certified-but-aborted entry
        (cross-shard 2PC presumed abort, ``repro.shard.twopc``): the
        entry stays in the log at its seq — numbering and watermarks are
        untouched — but its keys become empty so it can never abort a
        later transaction against a write that never happened.  Returns
        True when the seq was found in any log copy."""
        found = False
        for log in (self._batch, self._log, self._standby_log):
            if log is None:
                continue
            for index in range(len(log) - 1, -1, -1):
                if log[index][0] == seq:
                    log[index] = (seq, frozenset())
                    found = True
                    break
        return found

    def prune(self, up_to_seq: int) -> int:
        before = len(self._log)
        self._log = [(s, k) for s, k in self._log if s > up_to_seq]
        if self._standby_log is not None:
            self._standby_log = [(s, k) for s, k in self._standby_log
                                 if s > up_to_seq]
        pruned = before - len(self._log)
        self.pruned_total += pruned
        return pruned

    def auto_prune(self, floor_seq: int, watermark: int) -> int:
        """Hot-path log bounding: once the log exceeds ``watermark``
        entries, drop everything at or below ``floor_seq``.  The caller
        owns the floor computation — it must be the minimum of every
        online replica's applied watermark, every in-flight transaction's
        snapshot seq, and the standby's shipped seq, or certification
        could miss a conflict."""
        if watermark <= 0 or len(self._log) <= watermark:
            return 0
        return self.prune(floor_seq)

    # -- failure / recovery ------------------------------------------------

    def fail(self) -> None:
        """The certifier process dies.  A centralized certifier loses its
        soft state; a replicated one keeps a standby copy."""
        self.failed = True
        if self._standby_log is None:
            self._log = []

    def recover(self, rebuild_from_replicas: Optional[int] = None) -> None:
        """Bring the certifier back.

        Centralized: the log must be rebuilt by querying every replica for
        its applied sequence (the expensive recovery the paper notes is
        'rarely described and almost never evaluated').  Pass the highest
        applied sequence as ``rebuild_from_replicas``.
        Replicated: the standby copy is promoted instantly.
        """
        if self._standby_log is not None:
            self._log = list(self._standby_log)
            if self._log:
                self._seq = max(self._seq, self._log[-1][0])
        elif rebuild_from_replicas is not None:
            self._seq = max(self._seq, rebuild_from_replicas)
            self._log = []
        self.failed = False

    def log_length(self) -> int:
        return len(self._log)

    # -- state shipping (repro.ha) -----------------------------------------

    def export_log(self) -> List[Tuple[int, FrozenSet]]:
        """A copy of the certification log for state shipping — the
        standby bootstrap (``repro.ha.shipper``) starts from this."""
        if self._batch:
            return list(self._log) + list(self._batch)
        return list(self._log)

    def import_log(self, entries: List[Tuple[int, FrozenSet]],
                   seq: Optional[int] = None) -> None:
        """Hydrate this certifier from shipped state (fenced promotion,
        ``repro.ha.promotion``).  ``seq`` sets the sequence floor so the
        promoted certifier never reuses a number a replica has applied;
        it is clamped to never run backwards."""
        self._log = [(s, frozenset(k)) for s, k in entries]
        tail = self._log[-1][0] if self._log else 0
        self._seq = max(self._seq, tail, seq or 0)
        self.failed = False
