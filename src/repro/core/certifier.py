"""Snapshot-isolation certification (first-committer-wins).

Writeset-based replication sends each transaction's writeset to a
certifier that checks it against all writesets committed since the
transaction's snapshot; overlap on any (database, table, primary-key)
means abort (paper section 3.3, Postgres-R/Middle-R lineage).

The certifier is the poster child of the paper's SPOF discussion
(section 3.2): a *centralized* certifier is fast but its failure takes the
whole system down and loses in-flight certification state; a *replicated*
certifier survives but pays a synchronization cost on every commit.  Both
variants are provided; benchmark E09 measures the trade-off.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple


class CertifierDown(Exception):
    """The (centralized) certifier has failed — certification, and with it
    every update transaction, is unavailable (section 3.2)."""


class CertificationOutcome:
    __slots__ = ("ok", "seq", "conflict_seq")

    def __init__(self, ok: bool, seq: Optional[int] = None,
                 conflict_seq: Optional[int] = None):
        self.ok = ok
        self.seq = seq
        self.conflict_seq = conflict_seq

    def __repr__(self) -> str:
        if self.ok:
            return f"CertificationOutcome(ok, seq={self.seq})"
        return f"CertificationOutcome(ABORT, conflicts with seq={self.conflict_seq})"


class Certifier:
    """Global certification log.

    ``keys`` are conflict footprints: frozensets of
    (database, table, primary_key) triples; a ``None`` primary key is a
    table-level footprint that conflicts with everything in that table
    (the conservative fallback when a statement's rows cannot be keyed).
    """

    def __init__(self, replicated: bool = False,
                 first_committer_wins: bool = True):
        self.replicated = replicated
        self.first_committer_wins = first_committer_wins
        self._log: List[Tuple[int, FrozenSet]] = []
        self._seq = 0
        self.failed = False
        self.certified = 0
        self.aborted = 0
        # Extra state copies kept when replicated (survive failover).
        self._standby_log: Optional[List[Tuple[int, FrozenSet]]] = \
            [] if replicated else None

    @property
    def current_seq(self) -> int:
        return self._seq

    def certify(self, start_seq: int, keys: FrozenSet) -> CertificationOutcome:
        """First-committer-wins check; on success assigns and logs the next
        global sequence number."""
        if self.failed:
            raise CertifierDown("certifier is down")
        if self.first_committer_wins:
            conflict = self._find_conflict(start_seq, keys)
            if conflict is not None:
                self.aborted += 1
                return CertificationOutcome(False, conflict_seq=conflict)
        self._seq += 1
        entry = (self._seq, keys)
        self._log.append(entry)
        if self._standby_log is not None:
            self._standby_log.append(entry)
        self.certified += 1
        return CertificationOutcome(True, seq=self._seq)

    def _find_conflict(self, start_seq: int, keys: FrozenSet) -> Optional[int]:
        if not keys:
            return None
        table_level = {
            (database, table)
            for database, table, pk in keys if pk is None
        }
        for seq, logged in reversed(self._log):
            if seq <= start_seq:
                break
            if logged & keys:
                return seq
            for database, table, pk in logged:
                if (database, table) in table_level:
                    return seq
                if pk is None and any(
                        k[0] == database and k[1] == table for k in keys):
                    return seq
        return None

    def assign_seq(self, keys: FrozenSet = frozenset()) -> int:
        """Order-only mode (no conflict check) — used by master-slave,
        eventual-consistency and statement-broadcast paths that still need
        a global order.  ``keys`` optionally records the write's derived
        ``(db, table, pk)`` footprint in the log, so downstream consumers
        (cache invalidation, log inspection) see statement-mode commits at
        the same granularity as certified writesets."""
        if self.failed:
            raise CertifierDown("certifier is down")
        self._seq += 1
        entry = (self._seq, keys)
        self._log.append(entry)
        if self._standby_log is not None:
            self._standby_log.append(entry)
        return self._seq

    def prune(self, up_to_seq: int) -> int:
        before = len(self._log)
        self._log = [(s, k) for s, k in self._log if s > up_to_seq]
        if self._standby_log is not None:
            self._standby_log = [(s, k) for s, k in self._standby_log
                                 if s > up_to_seq]
        return before - len(self._log)

    # -- failure / recovery ------------------------------------------------

    def fail(self) -> None:
        """The certifier process dies.  A centralized certifier loses its
        soft state; a replicated one keeps a standby copy."""
        self.failed = True
        if self._standby_log is None:
            self._log = []

    def recover(self, rebuild_from_replicas: Optional[int] = None) -> None:
        """Bring the certifier back.

        Centralized: the log must be rebuilt by querying every replica for
        its applied sequence (the expensive recovery the paper notes is
        'rarely described and almost never evaluated').  Pass the highest
        applied sequence as ``rebuild_from_replicas``.
        Replicated: the standby copy is promoted instantly.
        """
        if self._standby_log is not None:
            self._log = list(self._standby_log)
            if self._log:
                self._seq = max(self._seq, self._log[-1][0])
        elif rebuild_from_replicas is not None:
            self._seq = max(self._seq, rebuild_from_replicas)
            self._log = []
        self.failed = False

    def log_length(self) -> int:
        return len(self._log)

    # -- state shipping (repro.ha) -----------------------------------------

    def export_log(self) -> List[Tuple[int, FrozenSet]]:
        """A copy of the certification log for state shipping — the
        standby bootstrap (``repro.ha.shipper``) starts from this."""
        return list(self._log)

    def import_log(self, entries: List[Tuple[int, FrozenSet]],
                   seq: Optional[int] = None) -> None:
        """Hydrate this certifier from shipped state (fenced promotion,
        ``repro.ha.promotion``).  ``seq`` sets the sequence floor so the
        promoted certifier never reuses a number a replica has applied;
        it is clamped to never run backwards."""
        self._log = [(s, frozenset(k)) for s, k in entries]
        tail = self._log[-1][0] if self._log else 0
        self._seq = max(self._seq, tail, seq or 0)
        self.failed = False
