"""Cluster-consistent backup coordination (paper section 4.4.1).

"It is necessary for the replication middleware to collaborate with the
replica and the backup tool, to make sure that the dumped data is
consistent with respect to the entire cluster ... the middleware must be
aware of exactly which transactions are contained in the dump and which
ones must be replayed."

A :class:`ClusterBackup` is an engine dump **tagged with the global
sequence number** it contains, so restore + recovery-log replay is exact.
Cold backup takes the donor offline first (cheap dump, capacity loss);
hot backup dumps a serving replica (no capacity loss; in the timed
benchmarks the donor is slowed while dumping — the Oracle redo-log
amplification effect the paper mentions).
"""

from __future__ import annotations

from typing import Optional

from ..sqlengine.backup import BackupOptions, EngineDump, dump_engine, restore_engine
from .errors import ReplicaUnavailable
from .middleware import ReplicationMiddleware
from .replica import Replica, ReplicaState


class ClusterBackup:
    """An engine dump plus the middleware checkpoint it corresponds to."""

    __slots__ = ("dump", "global_seq", "checkpoint_name", "mode",
                 "source_replica")

    def __init__(self, dump: EngineDump, global_seq: int,
                 checkpoint_name: str, mode: str, source_replica: str):
        self.dump = dump
        self.global_seq = global_seq
        self.checkpoint_name = checkpoint_name
        self.mode = mode                    # "cold" | "hot"
        self.source_replica = source_replica

    def __repr__(self) -> str:
        return (f"ClusterBackup(seq={self.global_seq}, mode={self.mode}, "
                f"rows={self.dump.size_rows()})")


class BackupCoordinator:
    """Middleware-coordinated backup/restore."""

    def __init__(self, middleware: ReplicationMiddleware):
        self.middleware = middleware
        self._checkpoint_counter = 0

    def _next_checkpoint(self, prefix: str) -> str:
        self._checkpoint_counter += 1
        return f"{prefix}-{self._checkpoint_counter}"

    # ------------------------------------------------------------------
    # taking backups
    # ------------------------------------------------------------------

    def hot_backup(self, replica_name: str,
                   options: Optional[BackupOptions] = None) -> ClusterBackup:
        """Dump a replica while it keeps serving.

        The donor must be caught up to the checkpoint, otherwise the dump
        would be missing updates the checkpoint claims it contains.
        """
        middleware = self.middleware
        replica = middleware.replica_by_name(replica_name)
        if not replica.is_online:
            raise ReplicaUnavailable(f"replica {replica_name!r} not online")
        middleware.drain_replica(replica_name)
        checkpoint = self._next_checkpoint(f"hot-{replica_name}")
        seq = middleware.recovery_log.checkpoint(
            checkpoint, seq=replica.applied_seq)
        dump = dump_engine(replica.engine,
                           options or BackupOptions.full_clone())
        middleware.monitor.record("hot_backup", replica_name,
                                  seq=seq, rows=dump.size_rows())
        return ClusterBackup(dump, seq, checkpoint, "hot", replica_name)

    def cold_backup(self, replica_name: str,
                    options: Optional[BackupOptions] = None) -> ClusterBackup:
        """Take the donor offline, dump it, leave it OFFLINE (the caller
        re-adds it through management, replaying what it missed)."""
        middleware = self.middleware
        replica = middleware.replica_by_name(replica_name)
        if not replica.is_online:
            raise ReplicaUnavailable(f"replica {replica_name!r} not online")
        middleware.drain_replica(replica_name)
        replica.set_state(ReplicaState.OFFLINE)
        checkpoint = self._next_checkpoint(f"cold-{replica_name}")
        seq = middleware.recovery_log.checkpoint(
            checkpoint, seq=replica.applied_seq)
        dump = dump_engine(replica.engine,
                           options or BackupOptions.full_clone())
        middleware.monitor.record("cold_backup", replica_name,
                                  seq=seq, rows=dump.size_rows())
        return ClusterBackup(dump, seq, checkpoint, "cold", replica_name)

    # ------------------------------------------------------------------
    # restoring
    # ------------------------------------------------------------------

    def restore_to_replica(self, backup: ClusterBackup,
                           replica: Replica,
                           replay: bool = True) -> int:
        """Load a backup into ``replica`` and (optionally) replay the
        recovery log from the backup's checkpoint to the present.  Returns
        the number of log entries replayed."""
        middleware = self.middleware
        replica.set_state(ReplicaState.RECOVERING)
        restore_engine(replica.engine, backup.dump)
        replica.applied_seq = backup.global_seq
        replayed = 0
        if replay:
            for entry in middleware.recovery_log.entries_since(
                    backup.global_seq):
                middleware.recovery_log.replay_entry(replica.engine, entry)
                replica.applied_seq = entry.seq
                replayed += 1
        middleware.monitor.record("restore", replica.name,
                                  from_seq=backup.global_seq,
                                  replayed=replayed)
        return replayed

    def resume_offline_donor(self, backup: ClusterBackup) -> int:
        """After a cold backup, bring the donor back online by replaying
        what it missed while it was being dumped."""
        middleware = self.middleware
        replica = middleware.replica_by_name(backup.source_replica)
        replayed = 0
        for entry in middleware.recovery_log.entries_since(
                replica.applied_seq):
            middleware.recovery_log.replay_entry(replica.engine, entry)
            replica.applied_seq = entry.seq
            replayed += 1
        replica.set_state(ReplicaState.ONLINE)
        middleware.monitor.record("donor_resumed", replica.name,
                                  replayed=replayed)
        return replayed
