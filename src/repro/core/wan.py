"""WAN replication: multi-way master/slave across sites (Figure 4).

"Replicating data asynchronously between sites ... usually involves both
data partitioning and multi-way master/slave replication (i.e., each site
is master for its local geographical data)."

Each :class:`Site` runs its own middleware cluster and *owns* a set of
region values; updates for a region are routed (over simulated WAN
latency, in the timed benchmarks) to the owning site and shipped
asynchronously to every other site.  Site disasters hand ownership to a
surviving site; the unshipped tail is the lost-transaction window — the
disaster-recovery consistency the paper says customers accept.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..sqlengine.executor import Result
from .analysis import analyze
from ..sqlengine.parser import parse_script
from .errors import MiddlewareError, ReplicaUnavailable
from .middleware import ReplicationMiddleware
from .partitioning import _key_values_from_where, _literal_value
from ..sqlengine import ast_nodes as ast


class Site:
    """One geographic site: a middleware cluster owning some regions."""

    def __init__(self, name: str, middleware: ReplicationMiddleware,
                 regions: Sequence[str]):
        self.name = name
        self.middleware = middleware
        self.regions = {r.lower() for r in regions}
        self.up = True
        # per-remote-site shipping cursor: last local seq shipped there
        self.shipped_to: Dict[str, int] = {}

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"Site({self.name!r}, {state}, regions={sorted(self.regions)})"


class WanSystem:
    """The federation of sites."""

    def __init__(self, sites: Sequence[Site], region_column: str = "region"):
        if not sites:
            raise ValueError("need at least one site")
        self.sites: List[Site] = list(sites)
        self.region_column = region_column.lower()
        for site in self.sites:
            # Sites are assumed synchronized at federation time: only
            # updates committed *after* the system is wired ship across
            # (schema rollout is an administrative operation, not WAN
            # replication traffic).
            baseline = site.middleware.recovery_log.head_seq
            for other in self.sites:
                if other.name != site.name:
                    site.shipped_to.setdefault(other.name, baseline)
        self.stats = {"local_writes": 0, "remote_writes": 0,
                      "shipped_entries": 0, "lost_on_disaster": 0}

    # -- lookup -------------------------------------------------------------

    def site_by_name(self, name: str) -> Site:
        for site in self.sites:
            if site.name == name:
                return site
        raise MiddlewareError(f"no site {name!r}")

    def owner_of(self, region: str) -> Site:
        for site in self.sites:
            if site.up and region.lower() in site.regions:
                return site
        raise ReplicaUnavailable(f"no live site owns region {region!r}")

    def live_sites(self) -> List[Site]:
        return [s for s in self.sites if s.up]

    # -- client API ------------------------------------------------------------

    def connect(self, home_site: str, user: str = "admin",
                password: str = "", database: Optional[str] = None) -> "WanSession":
        return WanSession(self, self.site_by_name(home_site), user,
                          password, database)

    # -- asynchronous shipping -----------------------------------------------------

    def ship_updates(self) -> int:
        """One round of asynchronous cross-site propagation: every site
        ships its recovery-log tail to every other live site.  Returns the
        number of entries shipped."""
        shipped = 0
        for site in self.live_sites():
            log = site.middleware.recovery_log
            for other in self.live_sites():
                if other.name == site.name:
                    continue
                cursor = site.shipped_to.get(other.name, 0)
                for entry in log.entries_since(cursor):
                    for replica in other.middleware.online_replicas():
                        log.replay_entry(replica.engine, entry)
                    site.shipped_to[other.name] = entry.seq
                    shipped += 1
        self.stats["shipped_entries"] += shipped
        return shipped

    def unshipped_backlog(self, site_name: str) -> int:
        """Entries this site has committed but not yet shipped everywhere —
        the disaster-loss window."""
        site = self.site_by_name(site_name)
        head = site.middleware.recovery_log.head_seq
        if not site.shipped_to:
            return 0
        return max(head - cursor for cursor in site.shipped_to.values())

    # -- disasters -----------------------------------------------------------------

    def site_disaster(self, name: str,
                      new_owner: Optional[str] = None) -> Dict[str, Any]:
        """An entire site goes dark (earthquake/flood, section 2.2).

        Ownership of its regions moves to ``new_owner`` (default: first
        surviving site).  Updates committed at the dead site but never
        shipped are lost — the report quantifies the window.
        """
        site = self.site_by_name(name)
        lost = self.unshipped_backlog(name)
        site.up = False
        survivors = self.live_sites()
        if not survivors:
            raise MiddlewareError("all sites are down")
        target = (self.site_by_name(new_owner) if new_owner
                  else survivors[0])
        target.regions |= site.regions
        self.stats["lost_on_disaster"] += lost
        return {
            "site": name, "lost_updates": lost,
            "new_owner": target.name,
            "regions_moved": sorted(site.regions),
        }

    def site_recovered(self, name: str,
                       reclaim_regions: bool = False) -> int:
        """Bring a site back: replay everything it missed from the other
        sites' logs.  Region ownership stays with the takeover site unless
        ``reclaim_regions``."""
        site = self.site_by_name(name)
        site.up = True
        replayed = 0
        for other in self.live_sites():
            if other.name == name:
                continue
            cursor = other.shipped_to.get(name, 0)
            for entry in other.middleware.recovery_log.entries_since(cursor):
                for replica in site.middleware.online_replicas():
                    other.middleware.recovery_log.replay_entry(
                        replica.engine, entry)
                other.shipped_to[name] = entry.seq
                replayed += 1
        if reclaim_regions:
            for other in self.sites:
                if other.name != name:
                    other.regions -= site.regions
        return replayed


class WanSession:
    """A client attached to a home site; updates hop to the owning site."""

    def __init__(self, system: WanSystem, home: Site, user: str,
                 password: str, database: Optional[str]):
        self.system = system
        self.home = home
        self._sessions: Dict[str, Any] = {}
        self.user = user
        self.password = password
        self.database = database

    def _session_for(self, site: Site):
        session = self._sessions.get(site.name)
        if session is None or session.closed:
            session = site.middleware.connect(
                self.user, self.password, self.database)
            self._sessions[site.name] = session
        return session

    def execute(self, sql: str, params: Optional[List[Any]] = None) -> Result:
        result = Result()
        for statement in parse_script(sql):
            result = self._execute_one(statement, sql, list(params or []))
        return result

    def _execute_one(self, statement, sql_text: str,
                     params: List[Any]) -> Result:
        info = analyze(statement)
        system = self.system
        if info.is_read_only:
            # reads are always site-local (geo latency is the whole point)
            if not self.home.up:
                raise ReplicaUnavailable(f"home site {self.home.name} is down")
            return self._session_for(self.home).execute(sql_text, params)
        region = self._region_of(statement, params)
        if region is None:
            # DDL and region-less writes go everywhere (rare, admin path)
            result = Result()
            for site in system.live_sites():
                result = self._session_for(site).execute(sql_text, params)
            return result
        owner = system.owner_of(region)
        if owner.name == self.home.name:
            system.stats["local_writes"] += 1
        else:
            system.stats["remote_writes"] += 1
        return self._session_for(owner).execute(sql_text, params)

    def _region_of(self, statement, params: List[Any]) -> Optional[str]:
        column = self.system.region_column
        if isinstance(statement, ast.InsertStatement) \
                and statement.columns and statement.rows:
            lowered = [c.lower() for c in statement.columns]
            if column in lowered:
                value = _literal_value(
                    statement.rows[0][lowered.index(column)], params)
                return str(value) if value is not None else None
            return None
        where = getattr(statement, "where", None)
        values = _key_values_from_where(where, column, params)
        if values:
            return str(values[0])
        return None

    def close(self) -> None:
        for session in self._sessions.values():
            session.close()
        self._sessions.clear()

    def __enter__(self) -> "WanSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
