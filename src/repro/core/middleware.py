"""The replication middleware — the system the paper is about.

One :class:`ReplicationMiddleware` instance fronts a set of
:class:`~repro.core.replica.Replica` backends (the Figure 7 / C-JDBC
architecture: clients talk to the middleware through a driver-like
session; the middleware holds a connection per replica).

Two replication protocols (section 4.3.2):

* ``statement`` — every update statement is executed at every online
  replica in the same total order; non-deterministic statements are
  rewritten, rejected or knowingly broadcast per policy.
* ``writeset`` — a transaction executes at one replica; at commit its
  writeset is certified (first-committer-wins for SI-class protocols) and
  propagated to the other replicas, synchronously or asynchronously.

Orthogonally, a :class:`~repro.core.consistency.ConsistencyProtocol`
decides where reads may go and whether certification aborts conflicts, and
a :class:`~repro.core.loadbalancer.LoadBalancer` picks among the eligible
replicas.

The middleware instance is deliberately a single stateful component — the
paper's SPOF analysis (section 3.2) applies, and :meth:`fail` exists so
experiments can measure exactly what its death costs.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cache import (
    GATE_BYPASS_PROTOCOL, GATE_HIT, GATE_REJECT, GATE_STALE,
    CertifiedWrite, ConsistencyGate, ResultCache, ResultCacheConfig,
    WritesetInvalidator, cache_key, extract_read_dependencies,
)
from ..sqlengine import ast_nodes as ast
from ..sqlengine import Connection, SQLError
from ..sqlengine.errors import ConnectionError_
from ..sqlengine.executor import Result
from ..sqlengine.locks import LockConflict, LockManager, LockMode
from ..sqlengine.parser import parse_script
from .analysis import (
    StatementInfo, analyze, analyze_cached, rewrite_nondeterministic,
)
from .certifier import Certifier
from .consistency import ClusterView, ConsistencyProtocol, SessionView
from .consistency.gsi import GeneralizedSnapshotIsolation
from .consistency.one_sr import OneCopySerializability
from .errors import (
    ClusterDivergence, FencedOut, MiddlewareDown, ReplicaUnavailable,
    UnsupportedStatementError,
)
from .groupcommit import CommitRequest, GroupCommitCoordinator
from .loadbalancer import (
    LoadBalancer, NoReplicaAvailable, RoutingContext,
)
from ..obs.tracing import Tracer
from .monitoring import Monitor
from .recoverylog import RecoveryLog
from .replica import ApplyItem, Replica, ReplicaState
from .resilience import Deadline, ResilienceCoordinator, ResiliencePolicy
from .writesets import (
    apply_writeset, conflict_keys, extract_writeset_engine,
    statement_footprint,
)


class MiddlewareConfig:
    """Tunable middleware behaviour.

    Attributes:
        replication: ``"statement"`` or ``"writeset"``.
        consistency: a :class:`ConsistencyProtocol`; defaults to 1SR for
            statement replication and GSI for writeset replication.
        balancer: read load balancer.
        propagation: ``"sync"`` (updates applied everywhere before the
            commit returns — 2-safe-like) or ``"async"`` (apply queues —
            1-safe-like, replicas lag).
        nondeterminism: statement-mode policy for unsafe statements:
            ``"rewrite"`` (rewrite what is rewritable, reject the rest),
            ``"reject"`` (refuse any non-deterministic write) or
            ``"broadcast"`` (ship them anyway — divergence, E10).
        compensate_counters: writeset-mode fix-up of auto-increment /
            sequence state at apply time (off = the 4.3.2 divergence gap).
        table_locking: statement-mode middleware-level table locks
            (the coarse-granularity regime of section 4.3.2).
        detect_divergence: compare per-replica rowcounts on broadcast
            writes and raise :class:`ClusterDivergence` on mismatch.
        resilience: a :class:`~repro.core.resilience.ResiliencePolicy`;
            when set, every request gets deadlines, transparent retry,
            per-replica circuit breaking, admission control and
            degraded-mode serving (``None`` = the brittle happy-path
            behaviour the paper complains about).
        result_cache: a :class:`~repro.cache.ResultCacheConfig`; when set,
            autocommit reads are answered from a middleware-resident
            result cache with writeset-driven invalidation, gated by the
            consistency protocol (``None`` = every read hits a replica).
        tracing: per-request span tracing (:mod:`repro.obs`) — on by
            default; spans ride the simulated clock and cost nothing in
            simulated time.
        trace_retention: how many finished traces the tracer retains
            in memory (oldest evicted whole, see docs/OBSERVABILITY.md).
        group_commit_max: maximum writeset commits certified and
            propagated as one group-commit batch (``repro.core.groupcommit``).
        certifier_prune_watermark: once the certification log exceeds
            this many entries, prune everything below the cluster-wide
            safe floor (min of replica watermarks, in-flight snapshot
            seqs and the HA standby's shipped seq).  ``0`` disables
            auto-pruning.
    """

    def __init__(self,
                 replication: str = "statement",
                 consistency: Optional[ConsistencyProtocol] = None,
                 balancer: Optional[LoadBalancer] = None,
                 propagation: str = "sync",
                 nondeterminism: str = "rewrite",
                 compensate_counters: bool = True,
                 table_locking: bool = True,
                 detect_divergence: bool = False,
                 resilience: Optional[ResiliencePolicy] = None,
                 result_cache: Optional[ResultCacheConfig] = None,
                 tracing: bool = True,
                 trace_retention: int = 512,
                 group_commit_max: int = 64,
                 certifier_prune_watermark: int = 50000):
        if replication not in ("statement", "writeset"):
            raise ValueError(f"unknown replication mode {replication!r}")
        if propagation not in ("sync", "async"):
            raise ValueError(f"unknown propagation {propagation!r}")
        if nondeterminism not in ("rewrite", "reject", "broadcast"):
            raise ValueError(f"unknown nondeterminism policy {nondeterminism!r}")
        self.replication = replication
        if consistency is None:
            consistency = (OneCopySerializability()
                           if replication == "statement"
                           else GeneralizedSnapshotIsolation())
        self.consistency = consistency
        self.balancer = balancer or LoadBalancer()
        self.propagation = propagation
        self.nondeterminism = nondeterminism
        self.compensate_counters = compensate_counters
        self.table_locking = table_locking
        self.detect_divergence = detect_divergence
        self.resilience = resilience
        self.result_cache = result_cache
        self.tracing = tracing
        self.trace_retention = trace_retention
        self.group_commit_max = group_commit_max
        self.certifier_prune_watermark = certifier_prune_watermark


class ReplicationMiddleware:
    """The central coordinator."""

    def __init__(self, replicas: Sequence[Replica],
                 config: Optional[MiddlewareConfig] = None,
                 name: str = "mw", monitor: Optional[Monitor] = None):
        if not replicas:
            raise ValueError("a cluster needs at least one replica")
        self.name = name
        self.replicas: List[Replica] = list(replicas)
        self.config = config or MiddlewareConfig()
        self.monitor = monitor or Monitor()
        # Request tracing (repro.obs): spans are timestamped off the
        # monitor's non-advancing clock, so they ride simulated time in
        # timed runs and the logical clock in unit tests.
        self.tracer = Tracer(clock=self.monitor.peek,
                             enabled=self.config.tracing,
                             max_traces=self.config.trace_retention)
        self.certifier = Certifier(
            first_committer_wins=self.config.consistency.first_committer_wins)
        self.recovery_log = RecoveryLog()
        self.failed = False
        self.sessions: List["MiddlewareSession"] = []
        self._session_counter = itertools.count(1)
        # Middleware-level table locks for statement-mode 1SR (4.3.2).
        self._table_locks = LockManager()
        self._lock_txn_counter = itertools.count(1)
        # Designated master for write_mode == "master" protocols.
        self._master_name: Optional[str] = self.replicas[0].name
        self.stats = {
            "reads": 0, "writes": 0, "commits": 0, "aborts": 0,
            "certification_aborts": 0, "freshness_waits": 0,
            "certifier_pruned": 0,
        }
        # Group commit (repro.core.groupcommit): the writeset commit path
        # always runs through the coordinator — a batch of one outside a
        # gather, real multi-commit batches under the timed driver.
        self.group_commit = GroupCommitCoordinator(
            self, max_batch=self.config.group_commit_max)
        # Hook used by the timed driver to wake per-replica apply workers
        # when asynchronous propagation enqueues work.
        self.on_apply_enqueued = None
        # HA hooks (repro.ha).  An attached StateShipper mirrors every
        # commit into a standby before the client ack; the shared fence +
        # this instance's epoch refuse a deposed leader (split-brain
        # guard); the commit ledger records client-transaction outcomes
        # so a post-failover replay is exactly-once.  All are plain
        # attributes set by repro.ha.HAPair — no import cycle.
        self.state_shipper = None
        self.commit_ledger = None
        self.fence = None
        self.epoch = 0
        self.standby_mode = False
        self.failover_target: Optional[str] = None
        # Request-resilience layer (deadlines, retries, breakers,
        # admission control) — engaged only when the config asks for it.
        self.resilience: Optional[ResilienceCoordinator] = None
        if self.config.resilience is not None:
            self.resilience = ResilienceCoordinator(
                self, self.config.resilience)
            self.config.balancer.set_health_filter(
                self.resilience.allow_replica)
        # Certified-write stream: every committed update unit is published
        # as a CertifiedWrite to the registered listeners (the cache
        # invalidator; tests and tools may subscribe too).
        self._certified_listeners: List[Any] = []
        # Result cache (repro.cache): lookup before balancer dispatch,
        # fill after replica reads, invalidation off the certified stream.
        self.result_cache: Optional[ResultCache] = None
        self.cache_invalidator: Optional[WritesetInvalidator] = None
        self.cache_gate: Optional[ConsistencyGate] = None
        if self.config.result_cache is not None:
            self.result_cache = ResultCache(
                self.config.result_cache, clock=self.monitor.peek)
            self.cache_invalidator = WritesetInvalidator(self.result_cache)
            self.cache_invalidator.attach(self)
            self.cache_gate = ConsistencyGate(
                self, self.result_cache, self.cache_invalidator)
        for replica in self.replicas:
            replica.on_state_change(self._replica_state_changed)

    # ------------------------------------------------------------------
    # cluster views
    # ------------------------------------------------------------------

    @property
    def global_seq(self) -> int:
        return self.certifier.current_seq

    def cluster_view(self) -> ClusterView:
        return ClusterView(self.global_seq, self._master_name)

    # ------------------------------------------------------------------
    # certified-write stream (cache invalidation)
    # ------------------------------------------------------------------

    def on_certified(self, listener) -> None:
        """Subscribe ``listener(event: CertifiedWrite)`` to the stream of
        committed update units."""
        self._certified_listeners.append(listener)

    def publish_certified(self, seq: int, keys=frozenset(), tables=(),
                          kind: str = "writeset",
                          database: Optional[str] = None,
                          entries=None) -> None:
        if not self._certified_listeners:
            return
        event = CertifiedWrite(seq, keys=frozenset(keys),
                               tables=frozenset(tables), kind=kind,
                               database=database, entries=entries)
        for listener in list(self._certified_listeners):
            listener(event)

    def cache_snapshot(self) -> Optional[Dict[str, float]]:
        """The result cache's counters + derived rates (hit rate, stale
        fraction, occupancy), recorded into the monitor for dashboards.
        ``None`` when no cache is configured."""
        if self.result_cache is None:
            return None
        snapshot = self.result_cache.snapshot()
        self.monitor.record("cache_snapshot", self.name, **snapshot)
        return snapshot

    def trace_snapshot(self) -> Dict[str, int]:
        """The tracer's counters (spans started/finished/dropped, traces
        retained/evicted), recorded into the monitor for dashboards —
        the obs sibling of :meth:`cache_snapshot`."""
        snapshot = self.tracer.snapshot()
        self.monitor.record("trace_snapshot", self.name, **snapshot)
        return snapshot

    def export_traces(self) -> str:
        """All retained finished spans as JSON lines (one span per
        line); see docs/OBSERVABILITY.md for the format."""
        from ..obs.export import export_tracer
        return export_tracer(self.tracer)

    def explain_request(self, trace_id: int) -> str:
        """EXPLAIN ANALYZE-style per-request report: the retained trace
        rendered as an indented span tree with latencies and events."""
        from ..metrics.breakdown import explain_trace
        return explain_trace(self.tracer.trace(trace_id))

    def replica_by_name(self, name: str) -> Replica:
        for replica in self.replicas:
            if replica.name == name:
                return replica
        raise ReplicaUnavailable(f"no replica named {name!r}")

    def online_replicas(self) -> List[Replica]:
        return [r for r in self.replicas if r.is_online]

    @property
    def master(self) -> Replica:
        return self.replica_by_name(self._master_name)

    def set_master(self, name: str) -> None:
        self.replica_by_name(name)
        self._master_name = name
        self.monitor.record("master_changed", name)

    def _replica_state_changed(self, replica: Replica,
                               state: ReplicaState) -> None:
        self.monitor.record("replica_state", replica.name, state=state.value)
        if state is ReplicaState.FAILED:
            self.config.balancer.forget_replica(replica.name)
            if self.resilience is not None:
                # eject immediately; a replica that merely *recovers* is
                # re-admitted through the breaker's half-open probe
                # discipline, so a flapping node cannot keep taking (and
                # failing) traffic
                self.resilience.breaker(replica.name).force_open()
        elif state is ReplicaState.ONLINE:
            if self.resilience is not None:
                # ONLINE is only reached through failback: the replica was
                # resynchronized and verified against the cluster, which
                # outranks the breaker's own probe evidence — close it
                self.resilience.breaker(replica.name).record_success()

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------

    def connect(self, user: str = "admin", password: str = "",
                database: Optional[str] = None) -> "MiddlewareSession":
        self._check_up()
        session = MiddlewareSession(
            self, next(self._session_counter), user, password, database)
        self.sessions.append(session)
        return session

    def _check_up(self) -> None:
        if self.failed:
            raise MiddlewareDown(f"middleware {self.name!r} is down")
        if self.standby_mode:
            raise MiddlewareDown(
                f"middleware {self.name!r} is a standby; address the "
                "service through its virtual IP")
        self._check_fenced()

    def _check_fenced(self) -> None:
        if self.fence is not None and not self.fence.admits(self.epoch):
            raise FencedOut(
                f"middleware {self.name!r} holds epoch {self.epoch} but "
                f"the cluster advanced to {self.fence.epoch}; this "
                "instance was deposed")

    # -- state shipping (repro.ha) -------------------------------------

    def _ship_prepare(self, session, seq: int, keys, kind: str, payload,
                      tables: Sequence[str]) -> None:
        """Phase 1 of the HA commit shipping: record the client txn as
        PENDING and mirror the update unit to the standby, before the
        commit becomes durable (writeset mode) or at sequencing time
        (statement/DDL mode, where replicas committed first)."""
        txn_id = getattr(session, "client_txn_id", None)
        if self.commit_ledger is not None and txn_id is not None:
            self.commit_ledger.prepare(txn_id, seq)
        if self.state_shipper is not None:
            self.state_shipper.ship_prepare(session, seq, keys, kind,
                                            payload, tables)

    def _ship_ack(self, session, seq: int) -> None:
        """Phase 2: the commit is durable everywhere the propagation
        mode requires — flip the ledger to COMMITTED and ship the
        session token.  Always precedes the client acknowledgement, so
        an acked commit can never be lost by a promotion (RPO = 0)."""
        txn_id = getattr(session, "client_txn_id", None)
        if self.commit_ledger is not None and txn_id is not None:
            self.commit_ledger.mark_committed(txn_id, seq)
        if self.state_shipper is not None:
            self.state_shipper.ship_ack(session, seq)

    # ------------------------------------------------------------------
    # middleware failure (SPOF experiments)
    # ------------------------------------------------------------------

    def fail(self) -> int:
        """Kill the middleware instance.  All in-flight transactions are
        lost (rolled back at the replicas once their connections break) and
        every session dies.  Returns the number of sessions lost."""
        lost = 0
        for session in list(self.sessions):
            if session.in_transaction:
                lost += 1
            session._abort_everywhere(silent=True)
            session.closed = True
        self.sessions.clear()
        self.failed = True
        if not self.certifier.replicated:
            self.certifier.fail()
        self.monitor.record("middleware_failed", self.name,
                            lost_sessions=lost)
        return lost

    def recover(self) -> None:
        """Restart the middleware.  A centralized certifier must rebuild
        its state from the replicas (slow, section 3.2); a replicated one
        resumes from its standby copy."""
        highest = max((r.applied_seq for r in self.replicas), default=0)
        self.certifier.recover(rebuild_from_replicas=highest)
        self.failed = False
        if self.cache_invalidator is not None:
            # the certified stream gapped across the crash: anything cached
            # before it may be stale without us knowing — start over
            self.cache_invalidator.reset(self.global_seq)
        self.monitor.record("middleware_recovered", self.name)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def choose_read_replica(self, session: "MiddlewareSession",
                            info: Optional[StatementInfo]) -> Replica:
        """Pick a read replica honouring pinning, consistency eligibility
        and the balancer; waits (drains) for freshness when required."""
        parent = session.active_span or session.trace_context
        span = self.tracer.child_span("balancer.choose", parent)
        try:
            replica = self._choose_read_replica(session, info, span)
        except Exception as exc:
            span.set_tag("error", type(exc).__name__)
            span.end()
            raise
        span.set_tag("replica", replica.name)
        span.end()
        return replica

    def _choose_read_replica(self, session: "MiddlewareSession",
                             info: Optional[StatementInfo],
                             span) -> Replica:
        if session.pinned_replica is not None:
            replica = self.replica_by_name(session.pinned_replica)
            if not replica.can_serve:
                raise ReplicaUnavailable(
                    f"session pinned to failed replica {replica.name!r} "
                    "(temporary tables are not replicated, section 4.1.4)")
            span.set_tag("why", "pinned")
            return replica
        if session.route_override is not None:
            replica = self.replica_by_name(session.route_override)
            if replica.can_serve:
                span.set_tag("why", "override")
                return replica

        cluster = self.cluster_view()
        protocol = self.config.consistency
        tables = info.sorted_tables() if info else []
        context = RoutingContext(tables=tables, session_id=session.id)
        candidates = [
            r for r in self.online_replicas()
            if protocol.read_eligible(r, session.view, cluster)
        ]
        if candidates:
            chosen = self.config.balancer.choose(candidates, context)
            if span:
                decision = self.config.balancer.last_decision or {}
                span.set_tag("why", "sticky" if decision.get("sticky")
                             else "balanced")
                span.set_tag("policy", decision.get("policy"))
                span.set_tag("candidates", decision.get(
                    "candidates", len(candidates)))
            return chosen

        # Nobody fresh enough: wait for the most caught-up replica.
        online = self.online_replicas()
        if not online:
            raise NoReplicaAvailable("no online replicas")
        best = max(online, key=lambda r: r.applied_seq)
        needed = protocol.min_read_seq(session.view, cluster)
        if self.resilience is not None:
            # Degraded-mode serving: when the cluster is saturated or the
            # master is down, a bounded-staleness read from the least-
            # lagging slave beats queueing behind a freshness wait.
            lag = max(0, needed - best.applied_seq)
            if self.resilience.serve_stale(lag):
                span.set_tag("why", "degraded_stale")
                span.event("degraded_read", lag=lag, replica=best.name)
                return best
        self.stats["freshness_waits"] += 1
        span.set_tag("why", "freshness_wait")
        span.set_tag("waited_for_seq", needed)
        self.drain_replica(best.name, up_to_seq=needed)
        return best

    # ------------------------------------------------------------------
    # update propagation
    # ------------------------------------------------------------------

    def _apply_item(self, replica: Replica, item: ApplyItem) -> None:
        if item.kind == "writeset_batch":
            self._apply_batch_item(replica, item)
            return
        span = None
        if item.trace_ref is not None:
            # cross-node continuation: the commit's trace gains a span on
            # the applying replica, so one timeline shows propagation lag
            trace_id, parent_id = item.trace_ref
            span = self.tracer.start_linked(
                "replica.apply", trace_id, parent_id,
                replica=replica.name, seq=item.seq)
            span.set_tag("propagation_lag", round(
                max(0.0, self.tracer.now() - item.enqueued_at), 9))
        try:
            if item.kind == "writeset":
                report = apply_writeset(
                    replica.engine, item.payload,
                    compensate_counters=self.config.compensate_counters)
                if not report.clean:
                    self.monitor.record("apply_divergence", replica.name,
                                        seq=item.seq,
                                        issues=report.conflicts)
            else:
                connection = replica.apply_connection()
                for sql, params in item.payload:
                    connection.execute(sql, params)
            replica.applied_seq = max(replica.applied_seq, item.seq)
            replica.stats["applied_items"] += 1
        finally:
            if span is not None:
                span.end()

    def _apply_batch_item(self, replica: Replica, item: ApplyItem) -> None:
        """Apply a multi-writeset frame.  One ``replica.apply_batch``
        span covers the whole frame (amortized hot-path observability)
        with a per-transaction event carrying each commit's seq and
        propagation lag; the watermark advances per unit, in seq order,
        so it never advertises a seq with unapplied predecessors."""
        units = item.payload
        span = None
        if item.trace_ref is not None:
            trace_id, parent_id = item.trace_ref
            span = self.tracer.start_linked(
                "replica.apply_batch", trace_id, parent_id,
                replica=replica.name, units=len(units),
                first_seq=units[0].seq, last_seq=units[-1].seq)
        now = self.tracer.now()
        try:
            for unit in units:
                report = apply_writeset(
                    replica.engine, unit.entries,
                    compensate_counters=self.config.compensate_counters)
                if not report.clean:
                    self.monitor.record("apply_divergence", replica.name,
                                        seq=unit.seq,
                                        issues=report.conflicts)
                replica.applied_seq = max(replica.applied_seq, unit.seq)
                replica.stats["applied_items"] += 1
                if span is not None:
                    span.event("txn_applied", seq=unit.seq,
                               propagation_lag=round(
                                   max(0.0, now - unit.enqueued_at), 9))
        finally:
            if span is not None:
                span.end()

    def maybe_prune_certifier(self) -> int:
        """Bound certification-log growth on the hot path: once the log
        exceeds the configured watermark, drop entries below the safe
        floor — the minimum of every online replica's applied watermark,
        every in-flight transaction's snapshot seq (a long-running
        transaction must still see the entries it can conflict with),
        and the HA standby's shipped seq.  Offline replicas resync from
        the recovery log, not the certifier, so they don't hold it."""
        watermark = self.config.certifier_prune_watermark
        if watermark <= 0 or self.certifier.log_length() <= watermark:
            return 0
        floor = self.certifier.current_seq
        for replica in self.replicas:
            if replica.is_online:
                floor = min(floor, replica.applied_seq)
        for session in self.sessions:
            if session.in_transaction:
                floor = min(floor, session._txn_start_seq)
        if self.state_shipper is not None:
            floor = min(floor, self.state_shipper.state.seq)
        pruned = self.certifier.auto_prune(floor, watermark)
        if pruned:
            self.stats["certifier_pruned"] += pruned
            self.monitor.record("certifier_pruned", self.name,
                                pruned=pruned, floor=floor,
                                log_length=self.certifier.log_length())
        return pruned

    def pump(self, max_items: Optional[int] = None) -> int:
        """Drain asynchronous apply queues (round-robin across replicas).
        Returns the number of items applied."""
        applied = 0
        progress = True
        while progress and (max_items is None or applied < max_items):
            progress = False
            for replica in self.replicas:
                if not replica.is_online or not replica.apply_queue:
                    continue
                item = replica.apply_queue.popleft()
                self._apply_item(replica, item)
                applied += 1
                progress = True
                if max_items is not None and applied >= max_items:
                    break
        return applied

    def drain_replica(self, name: str,
                      up_to_seq: Optional[int] = None) -> int:
        """Apply a replica's queued items (optionally only up to a
        sequence watermark).  Models a freshness wait."""
        replica = self.replica_by_name(name)
        applied = 0
        while replica.apply_queue:
            if up_to_seq is not None and replica.applied_seq >= up_to_seq:
                break
            item = replica.apply_queue.popleft()
            self._apply_item(replica, item)
            applied += 1
        return applied

    def drain_all(self) -> int:
        return self.pump()

    # ------------------------------------------------------------------
    # multi-master key safety
    # ------------------------------------------------------------------

    def interleave_auto_increment(self) -> None:
        """Configure every replica to generate auto-increment keys in a
        disjoint congruence class (replica k of n hands out k, k+n, ...),
        the standard industry mitigation for the duplicate-key divergence
        of multi-master writeset replication (section 4.3.2).  Must be
        re-run after adding or removing replicas."""
        step = len(self.replicas)
        for offset, replica in enumerate(self.replicas, start=1):
            for database in replica.engine.databases.values():
                for table in database.tables.values():
                    if not table.temporary:
                        table.set_auto_interleave(step, offset)
        self.monitor.record("auto_increment_interleaved", self.name,
                            step=step)

    # ------------------------------------------------------------------
    # convergence checks
    # ------------------------------------------------------------------

    def content_signatures(self) -> Dict[str, str]:
        return {r.name: r.engine.content_signature() for r in self.replicas}

    def check_convergence(self, online_only: bool = True) -> bool:
        replicas = self.online_replicas() if online_only else self.replicas
        signatures = {r.engine.content_signature() for r in replicas}
        return len(signatures) <= 1

    def assert_convergence(self) -> None:
        if not self.check_convergence():
            raise ClusterDivergence(
                f"replicas diverged: {self.content_signatures()}")


class MiddlewareSession:
    """A client session through the middleware (the 'driver' of Fig. 7)."""

    def __init__(self, middleware: ReplicationMiddleware, session_id: int,
                 user: str, password: str, database: Optional[str]):
        self.middleware = middleware
        self.id = session_id
        self.user = user
        self.password = password
        self.database = database
        self.view = SessionView()
        self.closed = False
        # connection-per-replica caches
        self._read_connections: Dict[str, Connection] = {}
        # explicit transaction state
        self.in_transaction = False
        self._txn_connections: Dict[str, Connection] = {}
        self._txn_statements: List[Tuple[str, list]] = []
        self._txn_tables_written: set = set()
        self._txn_start_seq = 0
        self._txn_is_write = False
        self._txn_lock_id: Optional[int] = None
        self._local_replica: Optional[str] = None  # writeset mode
        # temp-table pinning (section 4.1.4)
        self.pinned_replica: Optional[str] = None
        self._pinned_connection: Optional[Connection] = None
        self.temp_tables: set = set()
        # Statement log of the whole session's current transaction —
        # Sequoia-style transparent failover replays this (section 4.3.3).
        self.failover_replays = 0
        # HA client identity (repro.ha): a stable client id plus the
        # current transaction's client-assigned id.  When set, commits
        # are recorded in the middleware's commit ledger so a replay
        # after middleware failover can be deduplicated (exactly-once).
        self.client_id: Optional[str] = None
        self.client_txn_id: Optional[str] = None
        # Routing overrides used by the timed simulation driver so that the
        # time-charging layer and the state-changing layer agree on the
        # chosen replica (see repro.bench.simdriver).
        self.route_override: Optional[str] = None
        self.write_override: Optional[str] = None
        # Resilience state: an optional request deadline (set per request
        # by the client or driver; an implicit one is created from the
        # policy's request_timeout), and whether an external driver
        # already holds an admission slot for this session.
        self.deadline: Optional[Deadline] = None
        self._admission_held = False
        # Result-cache state.  A session that issued USE/SET through the
        # middleware has connection-local state the cache key cannot see;
        # it stops using the cache for its lifetime.  ``_single_statement``
        # marks requests whose sql text is exactly one statement — only
        # those may be keyed (a multi-statement script's text must never
        # map to just its last result).
        self._cache_ineligible = False
        self._single_statement = False
        # Extra component folded into every cache key (the shard tier
        # sets this to the shard-map version, so a reshard flip orphans
        # entries filled under the old placement).  None = no salt.
        self.cache_salt: Optional[Any] = None
        # statement-mode invalidation footprint of the open transaction
        self._txn_footprints: set = set()
        self._txn_had_opaque = False
        self._txn_had_ddl = False
        # Tracing (repro.obs).  ``active_span`` is the mw.statement span
        # currently executing on this session — explicit parenting, NOT a
        # tracer-global stack, because concurrent simulated requests
        # interleave at yields.  ``trace_context`` is an optional parent
        # installed by a timed driver (the request/timed.statement span)
        # so middleware spans join the request's trace instead of
        # starting roots of their own.  ``_cache_note`` carries the
        # result-cache decision (miss/bypass...) from the pre-parse fast
        # path to the statement span that ends up executing.
        self.active_span = None
        self.trace_context = None
        self._cache_note: Optional[str] = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def execute(self, sql: str, params: Optional[List[Any]] = None) -> Result:
        """Execute one or more ``;``-separated statements.

        With a resilience policy configured this is the guarded client
        entry point: the request passes admission control (may raise
        :class:`~repro.core.errors.Overloaded`), runs under a deadline
        (:class:`~repro.core.errors.RequestTimeout`), and transient
        replica failures are retried per the policy."""
        self._check_open()
        cached = self._cached_fast_path(sql, params)
        if cached is not None:
            return cached
        statements = parse_script(sql)
        self._single_statement = len(statements) == 1
        resilience = self.middleware.resilience
        if resilience is None or resilience._replaying:
            result = Result()
            for statement in statements:
                result = self._execute_one(statement, sql, list(params or []))
            return result

        admitted = False
        if not self._admission_held:
            is_write = any(
                not isinstance(s, (ast.SelectStatement, ast.BeginStatement,
                                   ast.CommitStatement, ast.RollbackStatement))
                for s in statements)
            resilience.admission.acquire(is_write)
            admitted = True
        own_deadline = False
        if self.deadline is None:
            self.deadline = resilience.deadline()
            own_deadline = self.deadline is not None
        try:
            result = Result()
            for statement in statements:
                result = self._execute_one(statement, sql, list(params or []))
            return result
        finally:
            if own_deadline:
                self.deadline = None
            if admitted:
                resilience.admission.release()

    def execute_one_parsed(self, statement: ast.Statement, sql_text: str,
                           params: Optional[List[Any]] = None) -> Result:
        """Execute one pre-parsed statement (timed-driver fast path)."""
        self._check_open()
        cached = self._cached_fast_path(sql_text, params)
        if cached is not None:
            return cached
        self._single_statement = True
        return self._execute_one(statement, sql_text, list(params or []))

    def begin(self, isolation: Optional[str] = None) -> None:
        self.execute("BEGIN" if isolation is None
                     else f"BEGIN ISOLATION LEVEL {isolation}")

    def commit(self) -> None:
        self.execute("COMMIT")

    def rollback(self) -> None:
        self.execute("ROLLBACK")

    def close(self) -> None:
        if self.closed:
            return
        self._abort_everywhere(silent=True)
        for connection in self._read_connections.values():
            try:
                connection.close()
            except SQLError:
                pass
        self._read_connections.clear()
        if self._pinned_connection is not None:
            try:
                self._pinned_connection.close()
            except SQLError:
                pass
            self._pinned_connection = None
        self.middleware.config.balancer.end_connection(self.id)
        if self in self.middleware.sessions:
            self.middleware.sessions.remove(self)
        self.closed = True

    def __enter__(self) -> "MiddlewareSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _execute_one(self, statement: ast.Statement, sql_text: str,
                     params: List[Any]) -> Result:
        tracer = self.middleware.tracer
        if self.active_span:
            # nested execution (e.g. a transaction replay re-issuing
            # statements): stay inside the outer statement's span
            span = tracer.child_span("mw.statement", self.active_span)
        else:
            span = tracer.start_span("mw.statement",
                                     parent=self.trace_context)
        span.set_tag("session", self.id)
        span.set_tag("sql", sql_text[:80])
        if self._cache_note is not None:
            span.set_tag("cache", self._cache_note)
            self._cache_note = None
        previous = self.active_span
        self.active_span = span
        try:
            resilience = self.middleware.resilience
            if resilience is None:
                return self._dispatch_one(statement, sql_text, params)
            return resilience.execute_statement(
                self, statement, sql_text, params)
        except Exception as exc:
            span.set_tag("error", type(exc).__name__)
            raise
        finally:
            self.active_span = previous
            span.end()

    def _dispatch_one(self, statement: ast.Statement, sql_text: str,
                      params: List[Any]) -> Result:
        self.middleware._check_up()
        if isinstance(statement, ast.BeginStatement):
            self._begin_transaction(statement.isolation)
            return Result()
        if isinstance(statement, ast.CommitStatement):
            self._commit_transaction()
            return Result()
        if isinstance(statement, ast.RollbackStatement):
            self._rollback_transaction()
            return Result()

        info = analyze_cached(statement)
        self._track_temp_tables(info)
        if isinstance(statement, (ast.UseStatement, ast.SetStatement)):
            # connection-local state the cache key cannot witness
            self._cache_ineligible = True

        if info.is_read_only and not self._statement_touches_temp(info):
            return self._execute_read(statement, sql_text, params, info)
        return self._execute_write(statement, sql_text, params, info)

    def _track_temp_tables(self, info: StatementInfo) -> None:
        if info.creates_temp_table:
            self.temp_tables |= info.touches_temp_names

    def _statement_touches_temp(self, info: StatementInfo) -> bool:
        if info.creates_temp_table:
            return True
        if not self.temp_tables:
            return False
        return bool(
            {t.split(".")[-1] for t in info.all_tables()} & self.temp_tables)

    # ------------------------------------------------------------------
    # result cache
    # ------------------------------------------------------------------

    def _cache_key(self, sql: str, params) -> Optional[tuple]:
        key = cache_key(self.user, self.database, sql, params)
        if key is None or self.cache_salt is None:
            return key
        return key + (("salt", self.cache_salt),)

    def _cached_fast_path(self, sql: str, params) -> Optional[Result]:
        """Serve an autocommit read from the result cache, before parsing
        and before the balancer sees it (a hit costs no replica load, no
        admission slot and no parse).  ``None`` = proceed normally."""
        middleware = self.middleware
        cache = middleware.result_cache
        if cache is None or self.in_transaction or self._cache_ineligible:
            return None
        key = self._cache_key(sql, params)
        if key is None:
            self._cache_note = "uncacheable"
            return None
        entry = cache.peek(key)
        if entry is None:
            self._cache_note = "miss"
            return None
        if self.temp_tables and (self.temp_tables & entry.table_names()):
            # a session temp table shadows a cached base table (4.1.4)
            self._cache_note = "bypass_temp"
            return None
        middleware._check_up()
        gate = middleware.cache_gate
        decision, lag = gate.decide(self)
        if decision == GATE_BYPASS_PROTOCOL:
            cache.stats["bypass_protocol"] += 1
            self._cache_note = "bypass_protocol"
            return None
        if decision == GATE_REJECT:
            cache.stats["gate_rejections"] += 1
            self._cache_note = "reject"
            return None
        # A hit never reaches _execute_one, so it gets its own statement
        # span (zero-duration: no replica, no simulated cost).
        span = middleware.tracer.start_span(
            "mw.statement", parent=self.trace_context, session=self.id,
            sql=sql[:80],
            cache=("stale" if decision == GATE_STALE else "hit"))
        if lag:
            span.set_tag("cache_lag", lag)
        if decision == GATE_STALE:
            cache.stats["stale_hits"] += 1
            if middleware.resilience is not None:
                middleware.resilience.note_stale_cache_served()
        else:
            cache.stats["hits"] += 1
        middleware.config.balancer.note_cache_hit()
        gate.note_served(self, decision)
        span.end()
        return entry.to_result(stale=(decision == GATE_STALE), lag=lag)

    def _maybe_fill_cache(self, statement: ast.Statement, sql_text: str,
                          params: List[Any], info: StatementInfo,
                          replica: Replica, result: Result) -> None:
        """After an autocommit replica read: remember the result if the
        statement is cacheable and the replica was provably current for
        the statement's dependencies (the fill guard — a lagging replica
        must not launder stale rows into a fresh-looking entry)."""
        middleware = self.middleware
        cache = middleware.result_cache
        if not isinstance(statement, ast.SelectStatement):
            return  # only SELECT results are cached (EXPLAIN/USE/SET...)
        if middleware.config.consistency.write_mode == "broadcast":
            cache.stats["bypass_protocol"] += 1
            return
        key = self._cache_key(sql_text, params)
        if key is None:
            cache.stats["bypass_uncacheable"] += 1
            return
        deps = extract_read_dependencies(
            statement, info, replica.engine, self.database, params)
        if deps is None:
            cache.stats["bypass_uncacheable"] += 1
            return
        cache.stats["misses"] += 1
        invalidator = middleware.cache_invalidator
        conflicts = invalidator.conflicts_since(replica.applied_seq, deps)
        if conflicts is not False:  # True, or None = unknowable window
            cache.stats["fill_rejected"] += 1
            return
        cache.put(key, result, deps, fill_seq=invalidator.applied_seq)

    def _stale_cache_fallback(self, sql_text: str,
                              params: List[Any]) -> Optional[Result]:
        """Degraded-mode last resort: with no replica able to serve the
        read, a labelled bounded-staleness cache hit beats an error."""
        middleware = self.middleware
        cache = middleware.result_cache
        resilience = middleware.resilience
        if cache is None or resilience is None or self.in_transaction \
                or self._cache_ineligible:
            return None
        key = self._cache_key(sql_text, params)
        if key is None:
            return None
        entry = cache.peek(key)
        if entry is None:
            return None
        if self.temp_tables and (self.temp_tables & entry.table_names()):
            return None
        if middleware.config.consistency.write_mode == "broadcast":
            return None
        protocol = middleware.config.consistency
        needed = protocol.min_read_seq(self.view, middleware.cluster_view())
        lag = max(0, needed - middleware.cache_invalidator.applied_seq)
        if lag == 0:
            # actually fresh — the replicas are gone but the entry is fine
            cache.stats["hits"] += 1
            middleware.cache_gate.note_served(self, GATE_HIT)
            if self.active_span:
                self.active_span.set_tag("cache", "fallback_hit")
            return entry.to_result()
        if not resilience.serve_stale(lag):
            return None
        cache.stats["stale_hits"] += 1
        resilience.note_stale_cache_served()
        middleware.cache_gate.note_served(self, GATE_STALE)
        if self.active_span:
            self.active_span.set_tag("cache", "stale_fallback")
            self.active_span.event("degraded_read", lag=lag,
                                   source="result_cache")
        return entry.to_result(stale=True, lag=lag)

    def _explain_cache_decision(self, statement: ast.ExplainStatement,
                                sql_text: str, params: List[Any]) -> str:
        """What the cache would do with the inner statement right now —
        reported by EXPLAIN next to the access path."""
        import re

        middleware = self.middleware
        cache = middleware.result_cache
        if self.in_transaction:
            return "cache bypass (transaction)"
        if self._cache_ineligible:
            return "cache bypass (session)"
        if middleware.config.consistency.write_mode == "broadcast":
            return "cache bypass (protocol)"
        if not isinstance(statement.statement, ast.SelectStatement):
            return "cache bypass (uncacheable)"
        inner_sql = re.sub(r"^\s*EXPLAIN\s+", "", sql_text,
                           flags=re.IGNORECASE)
        key = self._cache_key(inner_sql, params)
        if key is None:
            return "cache bypass (uncacheable)"
        entry = cache.peek(key)
        if entry is not None:
            decision, _lag = middleware.cache_gate.decide(self)
            if decision in (GATE_HIT, GATE_STALE):
                return "cache hit"
            return "cache miss"
        inner_info = analyze(statement.statement)
        replica = next(iter(middleware.online_replicas()), None)
        if replica is not None and extract_read_dependencies(
                statement.statement, inner_info, replica.engine,
                self.database, params) is None:
            return "cache bypass (uncacheable)"
        return "cache miss"

    # ------------------------------------------------------------------
    # traced replica execution
    # ------------------------------------------------------------------

    def _traced_execute(self, replica: Replica, connection: Connection,
                        statement: ast.Statement, sql_text: str,
                        params: List[Any]) -> Result:
        """Run one statement on one replica under a replica.execute span
        (a no-op span outside a traced request)."""
        span = self.middleware.tracer.child_span(
            "replica.execute", self.active_span, replica=replica.name)
        with span:
            return connection.execute_statement(statement, sql_text,
                                                params)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def _execute_read(self, statement: ast.Statement, sql_text: str,
                      params: List[Any], info: StatementInfo) -> Result:
        middleware = self.middleware
        middleware.stats["reads"] += 1
        writeset_like = (middleware.config.replication == "writeset"
                         or middleware.config.consistency.write_mode == "master")
        if self.in_transaction and writeset_like:
            # reads inside a writeset transaction stay on the local replica
            # (master-mode read-only transactions may run on a satellite)
            if self._local_replica is None and not self._txn_is_write:
                replica = middleware.choose_read_replica(self, info)
                connection = self._txn_connection(replica)
                if middleware.config.consistency.write_mode != "master":
                    # the transaction is now anchored here; later writes
                    # must see these reads' snapshot, and certification
                    # must cover everything this snapshot misses
                    self._local_replica = replica.name
                    self._txn_start_seq = min(self._txn_start_seq,
                                              replica.applied_seq)
            else:
                replica = self._ensure_local_replica()
                connection = self._txn_connections[replica.name]
            result = self._traced_execute(replica, connection, statement,
                                          sql_text, params)
        elif self.in_transaction:
            # statement mode: read through a replica holding the txn
            if self._txn_connections:
                replica = self._pick_txn_read_replica(info)
            else:
                replica = middleware.choose_read_replica(self, info)
            connection = self._txn_connection(replica)
            result = self._traced_execute(replica, connection, statement,
                                          sql_text, params)
        else:
            try:
                replica = middleware.choose_read_replica(self, info)
                connection = self._read_connection(replica)
                replays_before = self.failover_replays
                result = self._run_with_failover(
                    replica, connection, statement, sql_text, params, info)
            except (NoReplicaAvailable, ReplicaUnavailable,
                    ConnectionError_):
                # degraded mode prefers a labelled-stale cache hit over an
                # error surfaced to the client
                stale = self._stale_cache_fallback(sql_text, params)
                if stale is not None:
                    return stale
                raise
            if middleware.result_cache is not None \
                    and self._single_statement and not self._cache_ineligible \
                    and self.failover_replays == replays_before:
                self._maybe_fill_cache(
                    statement, sql_text, params, info, replica, result)
        replica.stats["served_reads"] += 1
        replica.note_hot_tables(sorted(info.all_tables()))
        if middleware.resilience is not None:
            middleware.resilience.record_success(replica.name)
        middleware.config.consistency.note_read(self.view, replica.applied_seq)
        if not self.in_transaction:
            # an autocommit statement is its own transaction: transaction-
            # level balancing re-chooses for the next one
            middleware.config.balancer.end_transaction(self.id)
        if middleware.result_cache is not None \
                and isinstance(statement, ast.ExplainStatement) \
                and result.columns:
            result.rows.append((
                "CACHE", "*",
                self._explain_cache_decision(statement, sql_text, params),
                0))
            result.rowcount = len(result.rows)
        return result

    def _pick_txn_read_replica(self, info: StatementInfo) -> Replica:
        for name in self._txn_connections:
            replica = self.middleware.replica_by_name(name)
            if replica.can_serve:
                return replica
        raise ReplicaUnavailable("no live replica holds this transaction")

    def _run_with_failover(self, replica: Replica, connection: Connection,
                           statement: ast.Statement, sql_text: str,
                           params: List[Any],
                           info: StatementInfo) -> Result:
        """Autocommit read with transparent retry on another replica when
        the chosen one dies mid-request (section 4.3.3)."""
        try:
            return self._traced_execute(replica, connection, statement,
                                        sql_text, params)
        except ConnectionError_:
            self._note_replica_failure(replica)
            if self.active_span:
                self.active_span.event("failover_retry",
                                       failed=replica.name)
            retry = self.middleware.choose_read_replica(self, info)
            retry_connection = self._read_connection(retry)
            self.failover_replays += 1
            return self._traced_execute(retry, retry_connection,
                                        statement, sql_text, params)

    def _read_connection(self, replica: Replica) -> Connection:
        connection = self._read_connections.get(replica.name)
        if connection is None or connection.closed or replica.engine.crashed:
            connection = replica.engine.connect(
                self.user, self.password, database=self.database)
            self._read_connections[replica.name] = connection
        return connection

    def _note_replica_failure(self, replica: Replica) -> None:
        replica.mark_failed()
        if self.middleware.resilience is not None:
            self.middleware.resilience.record_failure(replica.name)
        self._read_connections.pop(replica.name, None)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def _execute_write(self, statement: ast.Statement, sql_text: str,
                       params: List[Any], info: StatementInfo) -> Result:
        middleware = self.middleware
        middleware.stats["writes"] += 1
        implicit = not self.in_transaction
        if implicit:
            self._begin_transaction(None)
        try:
            if self._statement_touches_temp(info):
                result = self._execute_on_pinned(statement, sql_text, params)
            elif middleware.config.replication == "statement" \
                    and middleware.config.consistency.write_mode != "master":
                result = self._statement_mode_write(
                    statement, sql_text, params, info)
            else:
                result = self._writeset_mode_write(
                    statement, sql_text, params, info)
        except Exception:
            if implicit:
                self._rollback_transaction()
            raise
        if implicit:
            self._commit_transaction()
        return result

    # -- temp-table pinning ------------------------------------------------

    def _execute_on_pinned(self, statement: ast.Statement, sql_text: str,
                           params: List[Any]) -> Result:
        """Temp-table work sticks to one replica (section 4.1.4).

        The pinned connection is *persistent* — temp tables are
        per-connection state at the engine, so the middleware must hold one
        connection open for the session's whole lifetime.
        """
        middleware = self.middleware
        if self.pinned_replica is None:
            if self._local_replica is not None:
                self.pinned_replica = self._local_replica
            elif self._txn_connections:
                self.pinned_replica = next(iter(self._txn_connections))
            else:
                context = RoutingContext(session_id=self.id)
                self.pinned_replica = middleware.config.balancer.choose(
                    middleware.online_replicas(), context).name
            middleware.monitor.record("session_pinned", self.pinned_replica,
                                      session=self.id)
        replica = middleware.replica_by_name(self.pinned_replica)
        if not replica.can_serve or replica.engine.crashed:
            raise ReplicaUnavailable(
                f"session pinned to failed replica {replica.name!r}; its "
                "temporary tables are unrecoverable (section 4.1.4)")
        connection = self._pinned_connection_for(replica)
        if self.in_transaction and not connection.in_transaction:
            connection.begin(getattr(self, "_txn_isolation", None))
            self._txn_connections[replica.name] = connection
        return self._traced_execute(replica, connection, statement,
                                    sql_text, params)

    def _pinned_connection_for(self, replica: Replica) -> Connection:
        if self._pinned_connection is None or self._pinned_connection.closed:
            self._pinned_connection = replica.engine.connect(
                self.user, self.password, database=self.database)
        return self._pinned_connection

    # -- statement replication ------------------------------------------------

    def _statement_mode_write(self, statement: ast.Statement, sql_text: str,
                              params: List[Any],
                              info: StatementInfo) -> Result:
        middleware = self.middleware
        config = middleware.config

        statement = self._handle_nondeterminism(statement, info)

        if config.table_locking and info.tables_written:
            self._acquire_table_locks(info)

        targets = [
            r for r in middleware.replicas
            if r.is_online or r.name in self._txn_connections
        ]
        live_targets = [r for r in targets if r.is_online]
        if not live_targets:
            raise NoReplicaAvailable("no online replica for the write")

        results: List[Tuple[Replica, Result]] = []
        for replica in live_targets:
            connection = self._txn_connection(replica)
            try:
                result = self._traced_execute(
                    replica, connection, statement, sql_text, params)
                results.append((replica, result))
            except ConnectionError_:
                # Replica died mid-broadcast: statement replication keeps
                # full state on the survivors — transparent failover.
                self._note_replica_failure(replica)
                self._txn_connections.pop(replica.name, None)
            except (SQLError, LockConflict):
                # A deterministic error must strike every replica alike;
                # abort the statement everywhere and surface it.
                raise
        if not results:
            raise NoReplicaAvailable("every replica failed during the write")

        if config.detect_divergence:
            rowcounts = {result.rowcount for _r, result in results}
            if len(rowcounts) > 1:
                middleware.monitor.record(
                    "divergence_detected", self.middleware.name,
                    rowcounts={r.name: res.rowcount for r, res in results})
                raise ClusterDivergence(
                    f"statement affected different row counts per replica: "
                    f"{[(r.name, res.rowcount) for r, res in results]}")

        self._txn_statements.append((sql_text, list(params)))
        self._txn_tables_written |= info.tables_written
        self._txn_is_write = True
        if info.is_ddl:
            self._txn_had_ddl = True
        elif middleware._certified_listeners:
            # derive the invalidation footprint from the statement itself
            # (no writeset exists in this mode) against a surviving replica
            keys, opaque = statement_footprint(
                statement, info, results[0][0].engine, self.database, params)
            if opaque:
                self._txn_had_opaque = True
            else:
                self._txn_footprints |= keys
        for replica, _result in results:
            replica.stats["served_writes"] += 1
        return results[0][1]

    def _handle_nondeterminism(self, statement: ast.Statement,
                               info: StatementInfo) -> ast.Statement:
        config = self.middleware.config
        if info.is_deterministic and info.safe_for_statement_replication:
            return statement
        if config.nondeterminism == "broadcast":
            return statement
        if config.nondeterminism == "reject":
            reasons = (info.nondeterministic_calls
                       or (["LIMIT without ORDER BY"]
                           if info.limit_without_order_in_write else [])
                       or ["opaque stored procedure"])
            raise UnsupportedStatementError(
                f"non-deterministic write ({', '.join(reasons)}) refused "
                "under statement replication")
        # rewrite policy
        if info.is_procedure_call:
            return self._vet_procedure_call(statement)
        if info.rewritable_calls:
            now_value = self.middleware.monitor.now()
            statement, _count = rewrite_nondeterministic(statement, now_value)
        if info.unsafe_calls or info.limit_without_order_in_write:
            reason = (info.unsafe_calls
                      or ["LIMIT without ORDER BY"])
            raise UnsupportedStatementError(
                f"cannot make statement deterministic ({', '.join(map(str, reason))}); "
                "use writeset replication for this workload (section 4.3.2)")
        return statement

    def _vet_procedure_call(self, statement: ast.Statement) -> ast.Statement:
        """Broadcast a stored-procedure call only when static analysis can
        prove it deterministic — the engine-cooperation capability the
        paper's agenda calls for (section 4.2.1); real middleware cannot
        see the body and must reject or risk divergence."""
        from ..sqlengine.procedures import analyze_procedure

        middleware = self.middleware
        replica = next(iter(middleware.online_replicas()), None)
        if replica is None:
            raise NoReplicaAvailable("no online replica")
        database_name = (statement.name.database or self.database)
        try:
            database = replica.engine.database(database_name)
            procedure = database.procedure(statement.name.name)
        except SQLError as exc:
            raise UnsupportedStatementError(
                f"cannot analyze procedure: {exc}")
        analysis = analyze_procedure(procedure)
        if not analysis.deterministic:
            raise UnsupportedStatementError(
                f"stored procedure {procedure.name!r} is non-deterministic; "
                "broadcasting it would diverge the cluster (section 4.2.1)")
        return statement

    def _acquire_table_locks(self, info: StatementInfo) -> None:
        """Middleware-level exclusive locks on written tables, held until
        the transaction ends (coarse table granularity, section 4.3.2)."""
        if self._txn_lock_id is None:
            self._txn_lock_id = next(self.middleware._lock_txn_counter)
        for table in sorted(info.tables_written):
            self.middleware._table_locks.acquire(
                self._txn_lock_id, table, LockMode.EXCLUSIVE)

    # -- writeset replication --------------------------------------------------

    def _writeset_mode_write(self, statement: ast.Statement, sql_text: str,
                             params: List[Any],
                             info: StatementInfo) -> Result:
        middleware = self.middleware
        if info.is_ddl:
            return self._broadcast_ddl(statement, sql_text, params, info)
        replica = self._ensure_local_replica()
        connection = self._txn_connections[replica.name]
        result = self._traced_execute(replica, connection, statement,
                                      sql_text, params)
        self._txn_statements.append((sql_text, list(params)))
        self._txn_tables_written |= info.tables_written
        self._txn_is_write = True
        replica.stats["served_writes"] += 1
        return result

    def _broadcast_ddl(self, statement: ast.Statement, sql_text: str,
                       params: List[Any], info: StatementInfo) -> Result:
        """DDL has no writeset (section 4.3.2: 'database updates that
        cannot be rolled back'); even writeset-mode systems broadcast it as
        statements, outside certification."""
        middleware = self.middleware
        result = Result()
        for replica in middleware.online_replicas():
            connection = self._txn_connection(replica) \
                if replica.name in self._txn_connections \
                else self._read_connection(replica)
            result = self._traced_execute(replica, connection, statement,
                                          sql_text, params)
        span = middleware.tracer.child_span("certify", self.active_span,
                                            kind="ddl")
        seq = middleware.certifier.assign_seq()
        span.set_tag("seq", seq)
        span.end()
        middleware._ship_prepare(
            self, seq, frozenset(), "statements",
            [(sql_text, list(params))], sorted(info.tables_written))
        middleware.recovery_log.append(
            seq, "statements", [(sql_text, list(params))],
            tables=sorted(info.tables_written), user=self.user,
            database=self.database)
        for replica in middleware.online_replicas():
            replica.applied_seq = max(replica.applied_seq, seq)
        middleware._ship_ack(self, seq)
        middleware.publish_certified(
            seq, tables=self._published_tables(info.tables_written),
            kind="ddl", database=self.database)
        return result

    def _ensure_local_replica(self) -> Replica:
        middleware = self.middleware
        if middleware.config.consistency.write_mode == "master":
            replica = middleware.master
            if not replica.is_online:
                raise ReplicaUnavailable(
                    f"master {replica.name!r} is down; promote a new master")
        elif self._local_replica is None and self.write_override is not None:
            replica = middleware.replica_by_name(self.write_override)
            if not replica.is_online:
                raise ReplicaUnavailable(
                    f"write-override replica {replica.name!r} is down")
        elif self._local_replica is not None:
            replica = middleware.replica_by_name(self._local_replica)
            if not replica.is_online:
                # Transaction replication cannot transparently fail over:
                # the transaction lived only here (section 4.3.3).
                raise ReplicaUnavailable(
                    f"replica {replica.name!r} executing this transaction "
                    "died; the transaction must be replayed by the client")
        else:
            context = RoutingContext(session_id=self.id, is_write=True)
            replica = middleware.config.balancer.choose(
                middleware.online_replicas(), context)
        self._local_replica = replica.name
        if replica.name not in self._txn_connections:
            self._txn_connections[replica.name] = \
                self._open_txn_connection(replica)
            # GSI-correct certification: the conflict window starts at the
            # snapshot this transaction actually reads — the local
            # replica's applied watermark, which may trail the global
            # sequence under asynchronous propagation.
            self._txn_start_seq = min(self._txn_start_seq,
                                      replica.applied_seq)
        return replica

    # ------------------------------------------------------------------
    # transaction control
    # ------------------------------------------------------------------

    def _begin_transaction(self, isolation: Optional[str]) -> None:
        if self.in_transaction:
            raise SQLError("transaction already in progress")
        self.in_transaction = True
        self._txn_isolation = isolation
        self._txn_statements = []
        self._txn_tables_written = set()
        self._txn_is_write = False
        self._txn_start_seq = self.middleware.global_seq
        self._txn_connections = {}
        self._local_replica = None
        self._txn_footprints = set()
        self._txn_had_opaque = False
        self._txn_had_ddl = False

    def _txn_connection(self, replica: Replica) -> Connection:
        connection = self._txn_connections.get(replica.name)
        if connection is None:
            connection = self._open_txn_connection(replica)
            self._txn_connections[replica.name] = connection
        return connection

    def _open_txn_connection(self, replica: Replica) -> Connection:
        connection = replica.engine.connect(
            self.user, self.password, database=self.database)
        isolation = self._choose_isolation(replica)
        connection.begin(isolation)
        return connection

    def _choose_isolation(self, replica: Replica) -> Optional[str]:
        requested = getattr(self, "_txn_isolation", None)
        if requested is not None:
            return requested
        if self.middleware.config.replication == "writeset" \
                and self.middleware.config.consistency.name != "read-committed":
            # SI-class protocols want snapshot transactions locally; fall
            # back to the engine default when the dialect lacks SI (the
            # 4.1.2 heterogeneity headache).
            if replica.engine.dialect.supports_snapshot_isolation:
                return "SNAPSHOT"
        return None

    def _commit_transaction(self) -> None:
        if not self.in_transaction:
            return
        middleware = self.middleware
        try:
            if not self._txn_is_write:
                for connection in self._txn_connections.values():
                    connection.commit()
                return
            if middleware.config.replication == "statement" \
                    and middleware.config.consistency.write_mode != "master":
                self._commit_statement_mode()
            else:
                self._commit_writeset_mode()
            middleware.stats["commits"] += 1
        finally:
            self._end_transaction()

    def _commit_statement_mode(self) -> None:
        middleware = self.middleware
        committed = []
        for name, connection in list(self._txn_connections.items()):
            try:
                connection.commit()
                committed.append(name)
            except ConnectionError_:
                self._note_replica_failure(middleware.replica_by_name(name))
        if not committed:
            middleware.stats["aborts"] += 1
            raise NoReplicaAvailable("commit failed on every replica")
        footprints = frozenset(self._txn_footprints)
        span = middleware.tracer.child_span(
            "certify", self.active_span, kind="statements",
            keys=len(footprints))
        seq = middleware.certifier.assign_seq(footprints)
        span.set_tag("seq", seq)
        span.end()
        middleware._ship_prepare(
            self, seq, footprints, "statements",
            list(self._txn_statements),
            sorted(self._txn_tables_written))
        middleware.recovery_log.append(
            seq, "statements", list(self._txn_statements),
            tables=sorted(self._txn_tables_written), user=self.user,
            database=self.database)
        for name in committed:
            replica = middleware.replica_by_name(name)
            replica.applied_seq = max(replica.applied_seq, seq)
        middleware.config.consistency.note_commit(self.view, seq)
        middleware._ship_ack(self, seq)
        if self._txn_had_ddl:
            kind = "ddl"
        elif self._txn_had_opaque:
            kind = "opaque"
        else:
            kind = "statements"
        # empty-footprint commits (e.g. SELECT FOR UPDATE only) still
        # publish: the event advances the invalidator's freshness watermark
        middleware.publish_certified(
            seq, keys=footprints,
            tables=self._published_tables(self._txn_tables_written),
            kind=kind, database=self.database)
        middleware.maybe_prune_certifier()

    def _commit_writeset_mode(self) -> None:
        middleware = self.middleware
        replica = middleware.replica_by_name(self._local_replica)
        if not replica.is_online or replica.engine.crashed:
            # The local replica died before certification: nothing global
            # has happened yet, so this failure is unambiguous — retry
            # layers may safely replay the transaction on a survivor.
            # (A crash *after* certify/commit stays ambiguous, 4.3.3.)
            raise ReplicaUnavailable(
                f"local replica {replica.name!r} died before commit")
        connection = self._txn_connections[replica.name]
        txn = connection.txn
        entries = extract_writeset_engine(txn) if txn is not None else []
        if not entries:
            connection.commit()
            return
        # The whole certify -> ship_prepare -> prefix drain -> commit ->
        # recovery-log -> propagate -> ship_ack -> publish sequence lives
        # in the group-commit coordinator: a batch of one outside a
        # gather (identical to the historical per-transaction pipeline),
        # a shared certifier batch and one frame per replica inside one.
        request = CommitRequest(
            session=self, origin=replica, connection=connection,
            start_seq=self._txn_start_seq, keys=conflict_keys(entries),
            entries=entries, tables=sorted(self._txn_tables_written))
        middleware.group_commit.submit(request)

    def stage_commit_request(self) -> Optional[CommitRequest]:
        """Build this transaction's :class:`CommitRequest` without
        certifying or committing anything — the cross-shard 2PC prepare
        hook (``repro.shard.twopc``): the coordinator certifies each
        participant itself and finishes the winners through
        :meth:`GroupCommitCoordinator.commit_prepared`.  Returns ``None``
        when there is nothing to certify here (read-only, or the writes
        matched zero rows) — the caller commits or rolls back plainly."""
        if not self.in_transaction or not self._txn_is_write:
            return None
        middleware = self.middleware
        replica = middleware.replica_by_name(self._local_replica)
        if not replica.is_online or replica.engine.crashed:
            raise ReplicaUnavailable(
                f"local replica {replica.name!r} died before commit")
        connection = self._txn_connections[replica.name]
        txn = connection.txn
        entries = extract_writeset_engine(txn) if txn is not None else []
        if not entries:
            return None
        return CommitRequest(
            session=self, origin=replica, connection=connection,
            start_seq=self._txn_start_seq, keys=conflict_keys(entries),
            entries=entries, tables=sorted(self._txn_tables_written))

    def _published_tables(self, names) -> set:
        """Raw ``table`` / ``db.table`` strings -> ``(db, table)`` pairs
        against this session's default database."""
        keys = set()
        for name in names:
            name = str(name).lower()
            if "." in name:
                database, _, table = name.partition(".")
                keys.add((database, table))
            elif self.database is not None:
                keys.add((self.database.lower(), name))
        return keys

    def _rollback_transaction(self) -> None:
        if not self.in_transaction:
            return
        # A rollback must always succeed from the client's point of view:
        # if a replica connection is broken, its transaction died with it.
        self._abort_everywhere(silent=True)
        self._end_transaction()
        self.middleware.stats["aborts"] += 1

    def _abort_everywhere(self, silent: bool) -> None:
        for connection in self._txn_connections.values():
            try:
                connection.rollback()
                if connection is not self._pinned_connection:
                    connection.close()
            except SQLError:
                if not silent:
                    raise
        self._txn_connections = {}

    def _end_transaction(self) -> None:
        for connection in self._txn_connections.values():
            if connection is self._pinned_connection:
                continue  # persistent: temp tables live on it (4.1.4)
            try:
                connection.close()
            except SQLError:
                pass
        self._txn_connections = {}
        self.in_transaction = False
        self._txn_is_write = False
        self._local_replica = None
        if self._txn_lock_id is not None:
            self.middleware._table_locks.release_all(self._txn_lock_id)
            self._txn_lock_id = None
        self.middleware.config.balancer.end_transaction(self.id)

    def _check_open(self) -> None:
        if self.closed:
            raise MiddlewareDown("session is closed")
