"""Network partitions, quorums and reconciliation (section 4.3.4.3).

The CAP position of a replicated database is C+A over P: "if the remaining
quorum does not constitute a majority, the system must shut down and make
the customer unhappy".  :class:`QuorumGuard` enforces exactly that.  When
the guard is *disabled* (or two middleware instances each believe they own
the cluster), both partition sides keep committing — split brain — and
:class:`Reconciler` is the ETL-style tool [7] that diffs the divergent
replicas afterwards; "the process remains largely manual" so the tool
produces a report and applies only the policy the operator picked.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set

from ..sqlengine import Engine
from ..sqlengine.mvcc import visible_rows
from .errors import QuorumLost
from .middleware import ReplicationMiddleware


class QuorumGuard:
    """Write gate: refuses updates when fewer than a majority of the full
    membership is reachable."""

    def __init__(self, middleware: ReplicationMiddleware,
                 total_members: Optional[int] = None):
        self.middleware = middleware
        self.total_members = total_members or len(middleware.replicas)
        self.reachable: Set[str] = {r.name for r in middleware.replicas}
        self.enabled = True
        self.refused_writes = 0

    def set_reachable(self, names: Sequence[str]) -> None:
        """Called by the failure detector / partition observer."""
        self.reachable = set(names)

    @property
    def has_quorum(self) -> bool:
        live = [
            r for r in self.middleware.replicas
            if r.name in self.reachable and r.is_online
        ]
        return len(live) * 2 > self.total_members

    def check_write_allowed(self) -> None:
        if self.enabled and not self.has_quorum:
            self.refused_writes += 1
            raise QuorumLost(
                f"only {len(self.reachable)}/{self.total_members} members "
                "reachable — refusing writes to preserve consistency "
                "(the 'unhappy customer' shutdown of section 4.3.4.3)")


class RowDifference:
    __slots__ = ("database", "table", "primary_key", "kind", "left", "right")

    def __init__(self, database: str, table: str, primary_key,
                 kind: str, left: Optional[Dict], right: Optional[Dict]):
        self.database = database
        self.table = table
        self.primary_key = primary_key
        self.kind = kind        # "only_left" | "only_right" | "conflict"
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return (f"RowDifference({self.kind} {self.database}.{self.table} "
                f"pk={self.primary_key})")


class ReconciliationReport:
    def __init__(self):
        self.differences: List[RowDifference] = []

    @property
    def divergent(self) -> bool:
        return bool(self.differences)

    def count(self, kind: str) -> int:
        return sum(1 for d in self.differences if d.kind == kind)

    def __repr__(self) -> str:
        return (f"ReconciliationReport(only_left={self.count('only_left')}, "
                f"only_right={self.count('only_right')}, "
                f"conflicts={self.count('conflict')})")


class Reconciler:
    """Compares two engines row-by-row and applies a merge policy."""

    def compare(self, left: Engine, right: Engine) -> ReconciliationReport:
        report = ReconciliationReport()
        databases = set(left.database_names()) | set(right.database_names())
        for db_name in sorted(databases):
            left_db = left.databases.get(db_name)
            right_db = right.databases.get(db_name)
            tables = set()
            if left_db:
                tables |= set(left_db.tables)
            if right_db:
                tables |= set(right_db.tables)
            for table_name in sorted(tables):
                self._compare_table(report, db_name, table_name,
                                    left, right)
        return report

    def _rows_by_key(self, engine: Engine, db_name: str,
                     table_name: str) -> Dict[Any, Dict]:
        database = engine.databases.get(db_name)
        if database is None or table_name not in database.tables:
            return {}
        table = database.tables[table_name]
        pk_columns = [c.name.lower() for c in table.primary_key_columns]
        snapshot = engine.clock.snapshot()
        rows: Dict[Any, Dict] = {}
        for version in visible_rows(table, snapshot, None):
            if pk_columns:
                key = tuple(version.values.get(c) for c in pk_columns)
            else:
                key = tuple(sorted(
                    (k, repr(v)) for k, v in version.values.items()))
            rows[key] = dict(version.values)
        return rows

    def _compare_table(self, report: ReconciliationReport, db_name: str,
                       table_name: str, left: Engine, right: Engine) -> None:
        left_rows = self._rows_by_key(left, db_name, table_name)
        right_rows = self._rows_by_key(right, db_name, table_name)
        for key in left_rows.keys() | right_rows.keys():
            in_left = key in left_rows
            in_right = key in right_rows
            if in_left and not in_right:
                report.differences.append(RowDifference(
                    db_name, table_name, key, "only_left",
                    left_rows[key], None))
            elif in_right and not in_left:
                report.differences.append(RowDifference(
                    db_name, table_name, key, "only_right",
                    None, right_rows[key]))
            elif left_rows[key] != right_rows[key]:
                report.differences.append(RowDifference(
                    db_name, table_name, key, "conflict",
                    left_rows[key], right_rows[key]))

    def merge(self, left: Engine, right: Engine,
              policy: str = "prefer_left") -> ReconciliationReport:
        """Resolve divergence by copying rows between the engines.

        ``prefer_left`` / ``prefer_right`` pick one side for conflicts and
        union the only-on-one-side rows (application-specific policies are
        exactly what the paper says cannot be automated in general).
        """
        if policy not in ("prefer_left", "prefer_right"):
            raise ValueError(f"unknown merge policy {policy!r}")
        report = self.compare(left, right)
        from .writesets import apply_writeset
        for diff in report.differences:
            winner_row = diff.left if policy == "prefer_left" else diff.right
            loser_engine = right if policy == "prefer_left" else left
            if winner_row is None:
                # winner side does not have the row -> delete on loser
                loser_row = diff.right if policy == "prefer_left" else diff.left
                apply_writeset(loser_engine, [{
                    "database": diff.database, "table": diff.table,
                    "op": "DELETE", "primary_key": diff.primary_key,
                    "old_values": loser_row, "new_values": None,
                }])
            else:
                op = "UPDATE" if (
                    (policy == "prefer_left" and diff.right is not None)
                    or (policy == "prefer_right" and diff.left is not None)
                ) else "INSERT"
                loser_row = diff.right if policy == "prefer_left" else diff.left
                apply_writeset(loser_engine, [{
                    "database": diff.database, "table": diff.table,
                    "op": op, "primary_key": diff.primary_key,
                    "old_values": loser_row, "new_values": winner_row,
                }])
        return report
