"""Event timeline monitoring.

Section 4.4.4: "The vast majority of production systems have a monitoring
infrastructure" and the paper asks what the replication layer should feed
it.  Our answer: every state-changing middleware event lands on a single
timestamped timeline, from which ``repro.metrics.availability`` computes
MTTF/MTTR/nines and benchmarks build their reports.

The monitor is also the system's clock authority: its injected
``time_source`` (``Monitor.peek`` reads it without advancing the logical
fallback) drives the result cache's TTLs, the resilience layer's
deadlines and the request tracer in :mod:`repro.obs` — one clock, so
monitor events, cache decisions and span timestamps are mutually
comparable and seeded runs reproduce all three identically.  The two
views are complementary: the monitor answers *what happened to the
cluster* (aggregate, per-component), a trace answers *what happened to
this request* (section 5.1's degraded-mode question); summary counters
cross over via ``ReplicationMiddleware.trace_snapshot()``, which records
the tracer's totals as a ``trace_snapshot`` monitor event.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional


class MonitorEvent:
    __slots__ = ("time", "kind", "target", "detail")

    def __init__(self, time: float, kind: str, target: str = "",
                 detail: Optional[Dict[str, Any]] = None):
        self.time = time
        self.kind = kind
        self.target = target
        self.detail = detail or {}

    def __repr__(self) -> str:
        return f"MonitorEvent({self.time:.3f}, {self.kind}, {self.target})"


class Monitor:
    """Timestamped event sink.

    ``time_source`` defaults to a logical counter; simulations plug the
    simulated clock in so availability math uses simulated seconds.
    """

    def __init__(self, time_source: Optional[Callable[[], float]] = None):
        self._logical = 0.0
        self.time_source = time_source
        self.events: List[MonitorEvent] = []
        self._listeners: List[Callable[[MonitorEvent], None]] = []

    def now(self) -> float:
        if self.time_source is not None:
            return float(self.time_source())
        self._logical += 1.0
        return self._logical

    def peek(self) -> float:
        """Read the current time without advancing the logical clock —
        the clock the resilience layer (deadlines, breaker recovery
        windows) polls, where ``now()``'s side effect would skew time."""
        if self.time_source is not None:
            return float(self.time_source())
        return self._logical

    def record(self, kind: str, target: str = "",
               **detail: Any) -> MonitorEvent:
        event = MonitorEvent(self.now(), kind, target, detail)
        self.events.append(event)
        for listener in list(self._listeners):
            listener(event)
        return event

    def on_event(self, listener: Callable[[MonitorEvent], None]) -> None:
        self._listeners.append(listener)

    def events_of(self, *kinds: str) -> List[MonitorEvent]:
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def clear(self) -> None:
        self.events.clear()
