"""Writeset extraction and application (transaction replication).

Two extraction paths, mirroring section 4.3.2 of the paper:

* **engine-based** — read the writeset the engine already collected for
  the transaction (the Postgres-R-style integration that requires engine
  cooperation);
* **trigger-based** — install row triggers on every table and collect the
  images they report (the non-intrusive workaround real middleware uses).
  Its documented weaknesses are reproduced: triggers must be re-installed
  whenever the schema changes, tables created after installation are
  silently missed, and interplay with application triggers is fragile.

Application (:func:`apply_writeset`) installs the row images directly at a
replica.  What writesets do **not** carry — sequence positions and
auto-increment counters — is exactly what the paper says they do not
carry; the ``compensate_counters`` flag is the middleware-side fix, and
leaving it off reproduces the duplicate-key divergence of benchmark E10.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..sqlengine import Engine
from ..sqlengine.errors import NameError_
from ..sqlengine.mvcc import visible_version
from ..sqlengine.storage import Table
from ..sqlengine.transactions import Transaction
from ..sqlengine.triggers import Trigger, TriggerEvent


def extract_writeset_engine(txn: Transaction) -> List[Dict]:
    """Engine-integrated extraction: the transaction's own writeset."""
    return [entry.to_dict() for entry in txn.writeset]


def conflict_keys(entries: List[Dict]) -> FrozenSet:
    """The certification footprint of a writeset: (db, table, pk) triples,
    ``pk=None`` meaning whole-table granularity."""
    keys = set()
    for entry in entries:
        keys.add((entry["database"], entry["table"], entry["primary_key"]))
    return frozenset(keys)


def invalidation_keys(entries: List[Dict],
                      engine: Optional[Engine] = None) -> FrozenSet:
    """The *invalidation* footprint of a writeset: :func:`conflict_keys`
    plus, for pk-changing UPDATEs, the key the row moved *to*.  The
    certification footprint only carries the OLD primary key (that is what
    first-committer-wins conflicts on), but a cached read of the new key's
    row is just as dead.  Needs ``engine`` to learn pk column names."""
    keys = set(conflict_keys(entries))
    if engine is None:
        return frozenset(keys)
    for entry in entries:
        if entry["op"] != "UPDATE" or entry["primary_key"] is None \
                or not entry.get("new_values"):
            continue
        try:
            table = engine.database(entry["database"]).table(entry["table"])
        except NameError_:
            continue
        pk_columns = [c.name.lower() for c in table.primary_key_columns]
        if not pk_columns:
            continue
        new_values = entry["new_values"]
        new_pk = tuple(new_values.get(c) for c in pk_columns)
        if new_pk != tuple(entry["primary_key"]):
            keys.add((entry["database"], entry["table"], new_pk))
    return frozenset(keys)


def statement_footprint(statement, info, engine: Engine,
                        default_database: Optional[str],
                        params) -> Tuple[FrozenSet, bool]:
    """Derive a ``(db, table, pk)`` invalidation footprint for one
    statement-mode write, "through simple query parsing" (section 4.3.2).

    Returns ``(keys, opaque)``.  ``opaque=True`` means the statement's
    effects cannot be bounded by analysis — DDL, stored procedures,
    trigger-bearing tables (the trigger body writes rows the parser never
    sees), unknown statement shapes — and the caller must treat the whole
    commit as invalidate-everything.  Otherwise ``keys`` carries point
    keys where the planner proves the written rows (pk-equality WHERE,
    explicit-pk INSERT) and table-level ``pk=None`` keys for the rest.
    """
    from ..sqlengine import ast_nodes as ast
    from ..sqlengine.errors import SQLError
    from ..sqlengine.expressions import EvalContext

    if info.is_ddl or info.is_procedure_call:
        return frozenset(), True
    if not isinstance(statement, (ast.SelectStatement, ast.InsertStatement,
                                  ast.UpdateStatement, ast.DeleteStatement)):
        # unknown write shapes (section 4.3.2's "simple parsing" limit)
        return frozenset(), True
    keys: set = set()
    ctx = EvalContext(None, None, params=list(params or []))
    for name in info.tables_written:
        name = name.lower()
        if "." in name:
            database_name, _, table_name = name.partition(".")
        elif default_database is not None:
            database_name, table_name = default_database.lower(), name
        else:
            return frozenset(), True
        try:
            database = engine.database(database_name)
            table = database.table(table_name)
        except SQLError:
            keys.add((database_name, table_name, None))
            continue
        if any(t.table == table_name for t in database.triggers.values()):
            return frozenset(), True
        point = _statement_point_keys(statement, table, database_name,
                                      table_name, ctx)
        if point is None:
            keys.add((database_name, table_name, None))
        else:
            keys.update(point)
    return frozenset(keys), False


def _statement_point_keys(statement, table: Table, database_name: str,
                          table_name: str, ctx) -> Optional[set]:
    """Point keys for one written table, or ``None`` when the rows cannot
    be proven — the caller then falls back to a table-level key."""
    from ..sqlengine import ast_nodes as ast
    from ..sqlengine.errors import SQLError
    from ..sqlengine.planner import (
        _is_value_expr, evaluate_value, plan_table_access,
    )
    from ..sqlengine.types import coerce

    pk_index = table.primary_key_index
    if pk_index is None:
        return None
    pk_columns = [c.name.lower() for c in table.primary_key_columns]

    if isinstance(statement, (ast.UpdateStatement, ast.DeleteStatement)):
        if statement.table.name.lower() != table_name:
            return None
        binding = statement.table.name.lower()
        try:
            plan = plan_table_access(table, binding, statement.where, ctx)
        except SQLError:
            return None
        if not plan.is_index or plan.index is not pk_index:
            return None
        keys = {(database_name, table_name, key) for key in plan.keys}
        if isinstance(statement, ast.UpdateStatement):
            assigned = {}
            for column, expr in statement.assignments:
                column = column.lower()
                if column in pk_columns:
                    if not _is_value_expr(expr):
                        return None
                    try:
                        assigned[column] = coerce(
                            evaluate_value(expr, ctx),
                            table.column(column).type)
                    except SQLError:
                        return None
            if assigned:
                # the rows move: the destination keys die too
                positions = {c: i for i, c in enumerate(pk_columns)}
                for old in plan.keys:
                    new = list(old)
                    for column, value in assigned.items():
                        new[positions[column]] = value
                    keys.add((database_name, table_name, tuple(new)))
        return keys

    if isinstance(statement, ast.InsertStatement):
        if statement.table.name.lower() != table_name \
                or statement.select is not None or not statement.rows:
            return None
        columns = ([c.lower() for c in statement.columns]
                   if statement.columns
                   else [c.name.lower() for c in table.columns])
        positions = {}
        for pk_column in pk_columns:
            if pk_column not in columns:
                return None  # auto-increment fills it; value unknowable
            positions[pk_column] = columns.index(pk_column)
        if len(statement.rows) > 64:
            return None
        keys = set()
        for row in statement.rows:
            values = []
            for pk_column in pk_columns:
                index = positions[pk_column]
                if index >= len(row) or not _is_value_expr(row[index]):
                    return None
                try:
                    values.append(coerce(evaluate_value(row[index], ctx),
                                         table.column(pk_column).type))
                except SQLError:
                    return None
            keys.add((database_name, table_name, tuple(values)))
        return keys

    return None


class TriggerBasedExtractor:
    """Writeset extraction through per-table triggers.

    Call :meth:`install` once per database — and again after every schema
    change, or new tables go unreplicated (the administrative burden the
    paper describes).
    """

    def __init__(self, engine: Engine, prefix: str = "_ws_extract"):
        self.engine = engine
        self.prefix = prefix
        self._buffer: List[Dict] = []
        self._installed: Dict[str, set] = {}

    def install(self, database_name: str) -> int:
        """Install extraction triggers on every *current* table.  Returns
        the number of tables instrumented."""
        database = self.engine.database(database_name)
        installed = self._installed.setdefault(database_name, set())
        count = 0
        for table_name, table in list(database.tables.items()):
            if table_name in installed or table.temporary:
                continue
            for event in ("INSERT", "UPDATE", "DELETE"):
                trigger = Trigger(
                    f"{self.prefix}_{table_name}_{event.lower()}",
                    "AFTER", event, table_name,
                    callback=self._make_callback(database_name, table),
                )
                database.create_trigger(trigger)
            installed.add(table_name)
            count += 1
        return count

    def uninstrumented_tables(self, database_name: str) -> List[str]:
        """Tables that exist but carry no extraction triggers — writes to
        these are silently lost by trigger-based extraction."""
        database = self.engine.database(database_name)
        installed = self._installed.get(database_name, set())
        return [
            name for name, table in database.tables.items()
            if name not in installed and not table.temporary
        ]

    def _make_callback(self, database_name: str, table: Table):
        def callback(event: TriggerEvent, session) -> None:
            pk_columns = [c.name.lower() for c in table.primary_key_columns]
            image = event.new or event.old or {}
            primary_key = (tuple(image.get(c) for c in pk_columns)
                           if pk_columns else None)
            self._buffer.append({
                "database": database_name,
                "table": event.table.lower(),
                "op": event.event,
                "primary_key": primary_key,
                "old_values": dict(event.old) if event.old else None,
                "new_values": dict(event.new) if event.new else None,
            })
        return callback

    def drain(self) -> List[Dict]:
        entries, self._buffer = self._buffer, []
        return entries


class ApplyReport:
    """Outcome of applying one writeset at one replica."""

    __slots__ = ("applied", "conflicts", "missing_rows")

    def __init__(self):
        self.applied = 0
        self.conflicts: List[str] = []
        self.missing_rows = 0

    @property
    def clean(self) -> bool:
        return not self.conflicts and self.missing_rows == 0


def apply_writeset(engine: Engine, entries: List[Dict],
                   compensate_counters: bool = False) -> ApplyReport:
    """Install ``entries`` into ``engine`` as one atomic committed unit.

    The writeset was already certified, so entries are applied directly to
    storage.  Divergence symptoms (duplicate keys on INSERT, vanished rows
    on UPDATE/DELETE) are recorded in the report rather than raised — a
    replica that hits them has drifted and the middleware must decide what
    to do (usually: take it offline and resynchronize).
    """
    report = ApplyReport()
    ts = engine.clock.tick()
    for entry in entries:
        try:
            database = engine.database(entry["database"])
            table = database.table(entry["table"])
        except NameError_ as exc:
            report.conflicts.append(str(exc))
            continue
        op = entry["op"]
        if op == "INSERT":
            _apply_insert(engine, table, entry, ts, report,
                          compensate_counters)
        elif op == "UPDATE":
            _apply_update(engine, table, entry, ts, report)
        elif op == "DELETE":
            _apply_delete(engine, table, entry, ts, report)
        else:
            report.conflicts.append(f"unknown writeset op {op!r}")
    if compensate_counters:
        _compensate_sequences(engine, entries)
    return report


def _find_target(engine: Engine, table: Table, entry: Dict):
    """Locate the visible row a writeset UPDATE/DELETE refers to.

    This is the replication hot path every replica pays for every entry:
    with a primary key it is one hash probe into the PK index (O(1) per
    entry); only keyless tables fall back to the full old-value scan."""
    from ..sqlengine.mvcc import version_visible

    snapshot = engine.clock.snapshot()
    pk_index = table.primary_key_index
    if pk_index is not None and entry["primary_key"] is not None:
        engine.stats["index_probes"] += 1
        candidates = pk_index.probe(tuple(entry["primary_key"]))
        engine.stats["rows_scanned"] += len(candidates)
        for version in candidates:
            if version_visible(version, snapshot, None):
                return version
        return None
    old_values = entry.get("old_values") or {}
    engine.stats["seq_scans"] += 1
    engine.stats["rows_scanned"] += table.logical_row_count()
    for row_id in list(table._rows.keys()):
        version = visible_version(table, row_id, snapshot, None)
        if version is not None and all(
                version.values.get(k) == v for k, v in old_values.items()):
            return version
    return None


def _apply_insert(engine: Engine, table: Table, entry: Dict, ts: int,
                  report: ApplyReport, compensate_counters: bool) -> None:
    values = dict(entry["new_values"] or {})
    # Duplicate detection: the paper's endless-convergence hazard.
    snapshot = engine.clock.snapshot()
    for columns in table.unique_column_sets():
        key = tuple(values.get(c) for c in columns)
        if any(v is None for v in key):
            continue
        from ..sqlengine.mvcc import version_visible
        for candidate in table.unique_candidates(columns, key):
            if version_visible(candidate, snapshot, None):
                report.conflicts.append(
                    f"duplicate key {key} applying INSERT into "
                    f"{entry['database']}.{entry['table']}")
                return
    version = table.insert_version(values, creator_txn=0)
    version.created_ts = ts
    if compensate_counters:
        for column in table.columns:
            if column.auto_increment:
                value = values.get(column.name.lower())
                if isinstance(value, int):
                    table.bump_auto_value(column.name.lower(), value)
    report.applied += 1


def _apply_update(engine: Engine, table: Table, entry: Dict, ts: int,
                  report: ApplyReport) -> None:
    version = _find_target(engine, table, entry)
    if version is None:
        report.missing_rows += 1
        report.conflicts.append(
            f"row {entry['primary_key']} missing applying UPDATE to "
            f"{entry['database']}.{entry['table']}")
        return
    version.deleter_txn = 0
    version.deleted_ts = ts
    new_version = table.insert_version(
        dict(entry["new_values"] or {}), creator_txn=0, row_id=version.row_id)
    new_version.created_ts = ts
    report.applied += 1


def _apply_delete(engine: Engine, table: Table, entry: Dict, ts: int,
                  report: ApplyReport) -> None:
    version = _find_target(engine, table, entry)
    if version is None:
        report.missing_rows += 1
        report.conflicts.append(
            f"row {entry['primary_key']} missing applying DELETE to "
            f"{entry['database']}.{entry['table']}")
        return
    version.deleter_txn = 0
    version.deleted_ts = ts
    report.applied += 1


def _compensate_sequences(engine: Engine, entries: List[Dict]) -> None:
    """Middleware-side compensation for the 4.2.3 gap: push sequences past
    any values observed in the writeset (heuristic: integer primary keys)."""
    for entry in entries:
        if entry["op"] != "INSERT" or not entry.get("new_values"):
            continue
        try:
            database = engine.database(entry["database"])
        except NameError_:
            continue
        for sequence in database.sequences.values():
            for value in entry["new_values"].values():
                if isinstance(value, int) and value > (sequence.last_value or 0):
                    # conservative: only bump if the value looks like it
                    # came from this sequence's range
                    if sequence.last_value is not None and \
                            value - sequence.last_value <= 1000:
                        sequence.set_value(value)
