"""Group commit for the writeset pipeline.

The certifier is a serial total-order point (paper section 2.2): every
update transaction pays an ordering round, a certification check, a log
append and a propagation enqueue *per transaction*.  The classic fix is
group commit — collect the commit requests that arrive within a short
window and push them through the serial point as one batch:

* one certifier batch (one log append, one standby-sync round when the
  certifier is replicated) certifies the whole group, with intra-batch
  conflicts resolved in arrival order so outcomes are provably identical
  to per-transaction certification (``Certifier.begin_batch``);
* one multi-writeset *frame* per destination replica carries the whole
  group instead of one queue entry per transaction;
* per-commit semantics that correctness depends on are preserved per
  contained transaction: HA state shipping still runs prepare before the
  local commit and ack before the client sees the result, the cache
  invalidation stream still sees one ``CertifiedWrite`` per commit, and
  the recovery log still records every transaction individually.

:class:`GroupCommitCoordinator` runs in two modes.  In *immediate* mode
(the default untimed path) every ``submit`` is a batch of one and the
observable behaviour is exactly the historical per-transaction pipeline.
The timed driver (``bench/simdriver.py``) opens a gather with
:meth:`batch` and submits every member's commit inside it, turning the
simulated gather window into real batches.

Watermark rule: a replica's ``applied_seq`` may only advance once every
lower seq has been applied there.  Frames deliver units in seq order and
queues are FIFO, so pure destinations advance monotonically; an *origin*
replica that committed its own transaction mid-batch gets its frame
applied synchronously at flush (the in-batch analogue of the commit-time
prefix drain), so its watermark never advertises a seq whose
predecessors are missing.  Freshness gates, session tokens and the E12
recovery join all read that watermark and stay correct.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Set

from ..sqlengine import SerializationError
from .applysched import ApplyUnit
from .certifier import CertifierDown
from .replica import ApplyItem
from .writesets import invalidation_keys


class CommitRequest:
    """One transaction's certification + commit request."""

    __slots__ = ("session", "origin", "connection", "start_seq", "keys",
                 "entries", "tables")

    def __init__(self, session, origin, connection, start_seq: int,
                 keys, entries, tables):
        self.session = session
        self.origin = origin
        self.connection = connection
        self.start_seq = start_seq
        self.keys = keys
        self.entries = entries
        self.tables = tables


class GroupCommitCoordinator:
    """Batches writeset commits through the certifier and propagation."""

    def __init__(self, middleware, max_batch: int = 64):
        self.middleware = middleware
        self.max_batch = max_batch
        self._gathering = False
        self._staged: List[ApplyUnit] = []
        self._records: List[tuple] = []  # (session, unit, origin)
        self.stats: Dict[str, int] = {
            "batches": 0, "batched_commits": 0, "max_batch": 0,
            "frames": 0, "frame_units": 0,
        }
        # Optional audit hooks (E27): every certification decision, and
        # the frame layout of the last flush for timed cost charging.
        self.equivalence_log: Optional[List[Dict[str, Any]]] = None
        self.record_flush = False
        self.last_flush: Optional[Dict[str, Any]] = None

    @property
    def gathering(self) -> bool:
        return self._gathering

    @contextmanager
    def batch(self):
        """Gather mode: every ``submit`` inside this context joins one
        certifier batch, and propagation/acks happen once at exit."""
        self._begin()
        try:
            yield self
        finally:
            self._flush()

    def submit(self, request: CommitRequest) -> int:
        """Certify and locally commit one transaction.  Outside a gather
        this is a batch of one — certification, durability, propagation,
        HA ack and cache publish all complete before returning, exactly
        like the historical per-transaction path.  Inside a gather,
        propagation and acks are deferred to the batch flush.

        Raises :class:`SerializationError` on certification conflict and
        :class:`CertifierDown` when the certifier is unavailable; both
        roll the local transaction back."""
        if self._gathering:
            return self._certify_and_commit(request)
        self._begin()
        try:
            return self._certify_and_commit(request)
        finally:
            self._flush()

    def commit_prepared(self, request: CommitRequest, seq: int) -> int:
        """Phase 2 of a cross-shard 2PC commit (``repro.shard.twopc``):
        the transaction was already *prepared* — certified by this
        group's certifier (which assigned ``seq``) and shipped to the HA
        standby — and the coordinator decided commit.  Run the rest of
        this group's ordinary pipeline: prefix drain, local commit,
        recovery-log append, propagation, HA ack, cache publish."""
        middleware = self.middleware
        session = request.session
        origin = request.origin
        middleware.drain_replica(origin.name, up_to_seq=seq - 1)
        commit_span = middleware.tracer.child_span(
            "replica.commit", session.active_span, replica=origin.name)
        with commit_span:
            request.connection.commit()
        origin.applied_seq = max(origin.applied_seq, seq)
        middleware.recovery_log.append(
            seq, "writeset", request.entries, tables=request.tables,
            user=session.user, database=session.database)
        unit = ApplyUnit(seq, request.entries, tuple(request.tables),
                         keys=request.keys, origin=origin.name,
                         enqueued_at=middleware.monitor.peek())
        self._propagate([unit])
        middleware.config.consistency.note_commit(session.view, seq)
        middleware._ship_ack(session, seq)
        middleware.publish_certified(
            seq, keys=invalidation_keys(request.entries, origin.engine),
            tables={(e["database"], e["table"]) for e in request.entries},
            kind="writeset", database=session.database,
            entries=request.entries)
        middleware.maybe_prune_certifier()
        return seq

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _begin(self) -> None:
        self.middleware.certifier.begin_batch()
        self._gathering = True
        self._staged = []
        self._records = []

    def _certify_and_commit(self, request: CommitRequest) -> int:
        middleware = self.middleware
        session = request.session
        origin = request.origin
        span = middleware.tracer.child_span(
            "certify", session.active_span, kind="writeset",
            keys=len(request.keys), start_seq=request.start_seq,
            batch_size=len(self._staged) + 1)
        try:
            outcome = middleware.certifier.certify(request.start_seq,
                                                   request.keys)
        except CertifierDown:
            span.set_tag("error", "CertifierDown")
            span.end()
            request.connection.rollback()
            middleware.stats["aborts"] += 1
            raise
        if self.equivalence_log is not None:
            self.equivalence_log.append({
                "start_seq": request.start_seq, "keys": request.keys,
                "ok": outcome.ok, "seq": outcome.seq,
                "conflict_seq": outcome.conflict_seq,
            })
        span.set_tag("ok", outcome.ok)
        if not outcome.ok:
            span.set_tag("conflict_seq", outcome.conflict_seq)
            span.end()
            request.connection.rollback()
            middleware.stats["aborts"] += 1
            middleware.stats["certification_aborts"] += 1
            origin.stats["aborts"] += 1
            raise SerializationError(
                f"certification failed: conflicts with global seq "
                f"{outcome.conflict_seq} (first-committer-wins)")
        span.set_tag("seq", outcome.seq)
        span.end()
        seq = outcome.seq
        # HA phase 1 (repro.ha): the shipped PENDING entry reaches the
        # standby before the local commit becomes durable — per contained
        # transaction, batching changes nothing here.
        middleware._ship_prepare(session, seq, request.keys, "writeset",
                                 request.entries, request.tables)
        # Prefix discipline: everything certified before this transaction
        # and already propagated must be applied locally first.  Units
        # staged in *this* batch are handled by the flush (the origin's
        # frame applies synchronously there).
        middleware.drain_replica(origin.name, up_to_seq=seq - 1)
        commit_span = middleware.tracer.child_span(
            "replica.commit", session.active_span, replica=origin.name)
        with commit_span:
            request.connection.commit()
        origin.applied_seq = max(origin.applied_seq, seq)
        middleware.recovery_log.append(
            seq, "writeset", request.entries, tables=request.tables,
            user=session.user, database=session.database)
        prop_span = middleware.tracer.child_span(
            "propagate", session.active_span, seq=seq,
            mode=middleware.config.propagation,
            batched=len(self._staged) > 0)
        trace_ref = ((prop_span.trace_id, prop_span.span_id)
                     if prop_span else None)
        prop_span.end()
        unit = ApplyUnit(seq, request.entries, tuple(request.tables),
                         keys=request.keys, origin=origin.name,
                         enqueued_at=middleware.monitor.peek(),
                         trace_ref=trace_ref)
        self._staged.append(unit)
        self._records.append((session, unit, origin))
        middleware.config.consistency.note_commit(session.view, seq)
        return seq

    def _flush(self) -> None:
        middleware = self.middleware
        staged = self._staged
        records = self._records
        self._staged = []
        self._records = []
        self._gathering = False
        middleware.certifier.end_batch()
        if staged:
            self.stats["batches"] += 1
            self.stats["batched_commits"] += len(staged)
            self.stats["max_batch"] = max(self.stats["max_batch"],
                                          len(staged))
            self._propagate(staged)
            for session, unit, origin in records:
                # HA phase 2 + certified stream, per contained commit and
                # in seq order: an acked commit can never be lost by a
                # promotion, and the cache invalidator sees each commit's
                # own keys and seq.
                middleware._ship_ack(session, unit.seq)
                middleware.publish_certified(
                    unit.seq,
                    keys=invalidation_keys(unit.entries, origin.engine),
                    tables={(e["database"], e["table"])
                            for e in unit.entries},
                    kind="writeset", database=session.database,
                    entries=unit.entries)
        middleware.maybe_prune_certifier()

    def _propagate(self, staged: List[ApplyUnit]) -> None:
        """One frame per destination replica for the whole batch.  A
        frame of one keeps the historical plain-writeset item shape."""
        middleware = self.middleware
        origins: Set[str] = {unit.origin for unit in staged}
        frames: Dict[str, List[ApplyUnit]] = {}
        sync_applied: Set[str] = set()
        for replica in middleware.replicas:
            if not replica.is_online:
                continue  # it will resynchronize from the recovery log
            units = [u for u in staged if u.origin != replica.name]
            if not units:
                continue
            frames[replica.name] = units
            item = self._frame_item(units, middleware.monitor.peek())
            # Origins committed mid-batch already advertise their own
            # seq; the watermark rule requires their co-batch prefix to
            # land before anything else observes them (see module doc).
            if middleware.config.propagation == "sync" \
                    or replica.name in origins:
                sync_applied.add(replica.name)
                middleware._apply_item(replica, item)
            else:
                replica.enqueue(item)
                if middleware.on_apply_enqueued is not None:
                    middleware.on_apply_enqueued(replica, item)
        self.stats["frames"] += len(frames)
        self.stats["frame_units"] += sum(len(u) for u in frames.values())
        if self.record_flush:
            self.last_flush = {"frames": frames, "sync": sync_applied}

    @staticmethod
    def _frame_item(units: List[ApplyUnit], now: float) -> ApplyItem:
        if len(units) == 1:
            unit = units[0]
            return ApplyItem(unit.seq, "writeset", unit.entries,
                             unit.tables, enqueued_at=now,
                             trace_ref=unit.trace_ref)
        tables: List[str] = []
        for unit in units:
            for table in unit.tables:
                if table not in tables:
                    tables.append(table)
        return ApplyItem(units[-1].seq, "writeset_batch", list(units),
                         tuple(tables), enqueued_at=now,
                         trace_ref=units[0].trace_ref)
