"""Statement analysis for the replication middleware.

Statement-based replication lives and dies by what the middleware can
learn "through simple query parsing" (paper section 4.3.2).  This module
is that analysis: read/write classification, accessed tables, detection of
the non-determinism hazards the paper enumerates (time macros, RAND,
LIMIT without ORDER BY feeding an update), and rewriting of the rewritable
ones (``NOW()`` -> a constant chosen once by the middleware).

The resulting :class:`StatementInfo` is the routing currency of the
whole request path: the load balancer consumes its table set (section
3.2's memory-aware policies), the certifier derives conflict footprints
from it (section 3.3), the result cache decides cacheability on its
determinism verdict (section 4.1 gaps), and the tracer's
``balancer.choose``/``mw.statement`` spans tag their decisions with what
was parsed here — so a trace shows not just *where* a statement went but
*why* the analysis sent it there.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..sqlengine import ast_nodes as ast
from ..sqlengine.functions import NONDETERMINISTIC_FUNCTIONS

# Functions a middleware can safely replace with a single value computed
# once (same value for every row and replica).
_REWRITABLE = frozenset({
    "NOW", "CURRENT_TIMESTAMP", "CURRENT_TIME", "CURRENT_DATE",
})
# Functions that are per-row non-deterministic: substituting one constant
# changes the semantics ("UPDATE t SET x=rand()", section 4.3.2).
_UNSAFE = frozenset({"RAND", "RANDOM", "UUID"})


class StatementInfo:
    """Everything the middleware needs to route one statement."""

    __slots__ = (
        "statement", "is_write", "is_ddl", "tables_read", "tables_written",
        "nondeterministic_calls", "rewritable_calls", "unsafe_calls",
        "limit_without_order_in_write", "is_procedure_call",
        "creates_temp_table", "touches_temp_names", "databases",
        "_sorted_tables",
    )

    def __init__(self, statement: ast.Statement):
        self.statement = statement
        self.is_write = False
        self.is_ddl = False
        self.tables_read: Set[str] = set()
        self.tables_written: Set[str] = set()
        self.nondeterministic_calls: List[str] = []
        self.rewritable_calls: List[str] = []
        self.unsafe_calls: List[str] = []
        self.limit_without_order_in_write = False
        self.is_procedure_call = False
        self.creates_temp_table = False
        self.touches_temp_names: Set[str] = set()
        self.databases: Set[str] = set()
        self._sorted_tables: Optional[List[str]] = None

    @property
    def is_read_only(self) -> bool:
        return not self.is_write and not self.is_ddl

    @property
    def is_deterministic(self) -> bool:
        return not self.nondeterministic_calls

    @property
    def safe_for_statement_replication(self) -> bool:
        """Deterministic after rewriting — i.e. broadcastable."""
        return (not self.unsafe_calls
                and not self.limit_without_order_in_write
                and not self.is_procedure_call)

    @property
    def spans_multiple_databases(self) -> bool:
        return len(self.databases) > 1

    def all_tables(self) -> Set[str]:
        return self.tables_read | self.tables_written

    def sorted_tables(self) -> List[str]:
        """Sorted table list, cached — infos live in analysis caches and
        are consulted once per routed read, so sorting every time shows
        up in the million-session profile."""
        tables = self._sorted_tables
        if tables is None:
            tables = self._sorted_tables = sorted(self.all_tables())
        return tables


def analyze(statement: ast.Statement) -> StatementInfo:
    """Classify ``statement`` (see :class:`StatementInfo`)."""
    info = StatementInfo(statement)
    if isinstance(statement, ast.SelectStatement):
        _walk_select(statement, info, in_write=False)
        if statement.for_update:
            info.is_write = True
    elif isinstance(statement, ast.InsertStatement):
        info.is_write = True
        _note_table(info, statement.table, write=True)
        for row in statement.rows or []:
            for expr in row:
                _walk_expr(expr, info, in_write=True)
        if statement.select is not None:
            _walk_select(statement.select, info, in_write=True)
    elif isinstance(statement, ast.UpdateStatement):
        info.is_write = True
        _note_table(info, statement.table, write=True)
        for _column, expr in statement.assignments:
            _walk_expr(expr, info, in_write=True)
        _walk_expr(statement.where, info, in_write=True)
    elif isinstance(statement, ast.DeleteStatement):
        info.is_write = True
        _note_table(info, statement.table, write=True)
        _walk_expr(statement.where, info, in_write=True)
    elif isinstance(statement, ast.CallStatement):
        info.is_write = True          # must assume the worst (4.2.1)
        info.is_procedure_call = True
    elif isinstance(statement, ast.CreateTableStatement):
        info.is_ddl = True
        if statement.temporary:
            info.creates_temp_table = True
            info.touches_temp_names.add(statement.table.name.lower())
        else:
            _note_table(info, statement.table, write=True)
    elif isinstance(statement, (ast.CreateDatabaseStatement,
                                ast.CreateSchemaStatement,
                                ast.CreateIndexStatement,
                                ast.CreateSequenceStatement,
                                ast.CreateTriggerStatement,
                                ast.CreateProcedureStatement,
                                ast.CreateUserStatement,
                                ast.DropStatement,
                                ast.AlterTableStatement,
                                ast.GrantStatement,
                                ast.RevokeStatement)):
        info.is_ddl = True
    elif isinstance(statement, ast.ExplainStatement):
        # EXPLAIN never executes its inner statement: it is a read that
        # *references* the inner statement's tables (the planner needs
        # their schema), whatever the inner statement would have done.
        inner = analyze(statement.statement)
        info.tables_read |= inner.tables_read | inner.tables_written
        info.databases |= inner.databases
        info.touches_temp_names |= inner.touches_temp_names
    elif isinstance(statement, (ast.SetStatement, ast.UseStatement,
                                ast.BeginStatement, ast.CommitStatement,
                                ast.RollbackStatement,
                                ast.LockTableStatement)):
        pass
    else:
        info.is_write = True  # unknown statements are treated as writes
    return info


# -- memoized analysis ------------------------------------------------------

#: toggle for A/B benchmarking (the E30 compat arm runs with the memo off)
CACHE_ENABLED = True
_CACHE_CAPACITY = 4096
#: id(statement) -> (statement, info).  Each entry keeps a strong
#: reference to the statement so its id can never be recycled while the
#: memo holds it (AST nodes use __slots__, so the info cannot be stashed
#: on the node).  Cleared wholesale at capacity: statements are
#: parse-cache residents, so the working set re-warms in one pass.
_analysis_cache: dict = {}


def analyze_cached(statement: ast.Statement) -> StatementInfo:
    """:func:`analyze` memoized by statement identity.

    The composed request path walks every statement at the shard router
    *and again* inside the chosen group's middleware; for the
    parse-cached templates a driver replays millions of times, the
    second walk is pure overhead.  Statements whose analysis found
    nondeterministic calls are never memoized — the middleware may
    rewrite those trees in place (``rewrite_nondeterministic``), which
    would invalidate a cached info."""
    if not CACHE_ENABLED:
        return analyze(statement)
    key = id(statement)
    hit = _analysis_cache.get(key)
    if hit is not None and hit[0] is statement:
        return hit[1]
    info = analyze(statement)
    if info.nondeterministic_calls:
        return info
    if len(_analysis_cache) >= _CACHE_CAPACITY:
        _analysis_cache.clear()
    _analysis_cache[key] = (statement, info)
    return info


def _note_table(info: StatementInfo, name: ast.QualifiedName,
                write: bool) -> None:
    table_key = str(name).lower()
    if name.database:
        info.databases.add(name.database.lower())
    if write:
        info.tables_written.add(table_key)
    else:
        info.tables_read.add(table_key)


def _walk_select(select: ast.SelectStatement, info: StatementInfo,
                 in_write: bool) -> None:
    _walk_source(select.source, info, in_write)
    for expr, _alias in select.columns:
        _walk_expr(expr, info, in_write)
    _walk_expr(select.where, info, in_write)
    for expr in select.group_by:
        _walk_expr(expr, info, in_write)
    _walk_expr(select.having, info, in_write)
    for expr, _asc in select.order_by:
        _walk_expr(expr, info, in_write)
    if in_write and select.limit is not None and not select.order_by:
        # SELECT ... LIMIT without ORDER BY feeding a write — replicas may
        # pick different rows (section 4.3.2).
        info.limit_without_order_in_write = True


def _walk_source(source, info: StatementInfo, in_write: bool) -> None:
    if source is None:
        return
    if isinstance(source, ast.TableRef):
        _note_table(info, source.name, write=False)
    elif isinstance(source, ast.Join):
        _walk_source(source.left, info, in_write)
        _walk_source(source.right, info, in_write)
        _walk_expr(source.condition, info, in_write)
    elif isinstance(source, ast.SubquerySource):
        _walk_select(source.select, info, in_write)


def _walk_expr(expr, info: StatementInfo, in_write: bool) -> None:
    if expr is None or isinstance(expr, (ast.Literal, ast.ColumnRef,
                                         ast.Param, ast.Star)):
        return
    if isinstance(expr, ast.FunctionCall):
        if expr.name in NONDETERMINISTIC_FUNCTIONS:
            info.nondeterministic_calls.append(expr.name)
            if expr.name in _REWRITABLE:
                info.rewritable_calls.append(expr.name)
            elif expr.name in _UNSAFE and in_write:
                info.unsafe_calls.append(expr.name)
            elif expr.name == "NEXTVAL":
                # sequence advancement is replica-local state (4.2.3)
                if in_write:
                    info.unsafe_calls.append(expr.name)
        for arg in expr.args:
            _walk_expr(arg, info, in_write)
        return
    if isinstance(expr, ast.BinaryOp):
        _walk_expr(expr.left, info, in_write)
        _walk_expr(expr.right, info, in_write)
        return
    if isinstance(expr, ast.UnaryOp):
        _walk_expr(expr.operand, info, in_write)
        return
    if isinstance(expr, ast.InList):
        _walk_expr(expr.expr, info, in_write)
        for item in expr.items or []:
            _walk_expr(item, info, in_write)
        if expr.subquery is not None:
            _walk_select(expr.subquery, info, in_write)
        return
    if isinstance(expr, ast.Between):
        for sub in (expr.expr, expr.low, expr.high):
            _walk_expr(sub, info, in_write)
        return
    if isinstance(expr, ast.Like):
        _walk_expr(expr.expr, info, in_write)
        _walk_expr(expr.pattern, info, in_write)
        return
    if isinstance(expr, ast.IsNull):
        _walk_expr(expr.expr, info, in_write)
        return
    if isinstance(expr, ast.Case):
        for condition, result in expr.whens:
            _walk_expr(condition, info, in_write)
            _walk_expr(result, info, in_write)
        _walk_expr(expr.default, info, in_write)
        return
    if isinstance(expr, (ast.ScalarSubquery, ast.ExistsSubquery)):
        _walk_select(expr.select, info, in_write)


def rewrite_nondeterministic(statement: ast.Statement,
                             now_value: float) -> Tuple[ast.Statement, int]:
    """Replace rewritable time macros with ``now_value`` in place of the
    function call (the middleware chose the value once, so every replica
    computes identical rows).  Returns (statement, replacements).

    The statement tree is rewritten *in place* on a best-effort basis —
    parse trees are cheap to re-parse, and middleware re-parses per
    transaction anyway.
    """
    count = [0]

    def rewrite(expr):
        if expr is None:
            return None
        if isinstance(expr, ast.FunctionCall):
            if expr.name in _REWRITABLE:
                count[0] += 1
                return ast.Literal(now_value)
            expr.args = [rewrite(arg) for arg in expr.args]
            return expr
        if isinstance(expr, ast.BinaryOp):
            expr.left = rewrite(expr.left)
            expr.right = rewrite(expr.right)
            return expr
        if isinstance(expr, ast.UnaryOp):
            expr.operand = rewrite(expr.operand)
            return expr
        if isinstance(expr, ast.InList):
            expr.expr = rewrite(expr.expr)
            if expr.items:
                expr.items = [rewrite(item) for item in expr.items]
            if expr.subquery is not None:
                rewrite_select(expr.subquery)
            return expr
        if isinstance(expr, ast.Between):
            expr.expr = rewrite(expr.expr)
            expr.low = rewrite(expr.low)
            expr.high = rewrite(expr.high)
            return expr
        if isinstance(expr, ast.Like):
            expr.expr = rewrite(expr.expr)
            expr.pattern = rewrite(expr.pattern)
            return expr
        if isinstance(expr, ast.IsNull):
            expr.expr = rewrite(expr.expr)
            return expr
        if isinstance(expr, ast.Case):
            expr.whens = [(rewrite(c), rewrite(r)) for c, r in expr.whens]
            expr.default = rewrite(expr.default)
            return expr
        if isinstance(expr, (ast.ScalarSubquery, ast.ExistsSubquery)):
            rewrite_select(expr.select)
            return expr
        return expr

    def rewrite_select(select: ast.SelectStatement) -> None:
        select.columns = [(rewrite(e), a) for e, a in select.columns]
        rewrite_source(select.source)
        select.where = rewrite(select.where)
        select.group_by = [rewrite(e) for e in select.group_by]
        select.having = rewrite(select.having)
        select.order_by = [(rewrite(e), asc) for e, asc in select.order_by]

    def rewrite_source(source) -> None:
        if isinstance(source, ast.Join):
            rewrite_source(source.left)
            rewrite_source(source.right)
            source.condition = rewrite(source.condition)
        elif isinstance(source, ast.SubquerySource):
            rewrite_select(source.select)

    if isinstance(statement, ast.SelectStatement):
        rewrite_select(statement)
    elif isinstance(statement, ast.InsertStatement):
        if statement.rows:
            statement.rows = [[rewrite(e) for e in row]
                              for row in statement.rows]
        if statement.select is not None:
            rewrite_select(statement.select)
    elif isinstance(statement, ast.UpdateStatement):
        statement.assignments = [(c, rewrite(e))
                                 for c, e in statement.assignments]
        statement.where = rewrite(statement.where)
    elif isinstance(statement, ast.DeleteStatement):
        statement.where = rewrite(statement.where)
    return statement, count[0]
